#!/usr/bin/env python3
"""Context-aware home appliance control (paper §III-A-2).

An environment module senses illuminance, sound and motion. The middleware:

* learns the room's occupancy concept online (LearningClass on one module,
  snapshots shipped to a JudgingClass on another — the paper's Fig. 9
  train/predict split);
* fuses the judged state with raw illuminance (MergeOperator) and drives a
  ceiling light and an air conditioner through command rules.

The day is compressed to 4 minutes so one run covers dark-empty,
bright-occupied and dark-occupied regimes. The script reports whether the
light is on exactly when the room is dark AND occupied, and the HVAC runs
only while occupied.

Run:  python examples/home_appliance_control.py
"""

from __future__ import annotations

from repro.bench.calibration import pi_cost_model, pi_wlan_config
from repro.core import IFoTCluster, Recipe, TaskSpec
from repro.runtime import SimRuntime
from repro.sensors import EnvironmentSensorModel, EventSchedule, HvacActuator, SwitchActuator

DAY_LENGTH_S = 240.0
OCCUPIED = [(30.0, 60.0), (150.0, 80.0)]  # one daytime, one evening block


def build_recipe() -> Recipe:
    """Sense -> (train | judge) -> fuse -> command rules -> actuators."""
    return Recipe(
        "home-control",
        [
            TaskSpec(
                "env",
                "sensor",
                outputs=["env-raw"],
                params={"device": "environment", "rate_hz": 4},
                capabilities=["sensor:environment"],
            ),
            # Occupancy concept: learn state from sound/motion. The 'state'
            # ground truth rides along during calibration; the judge uses
            # shipped model snapshots and ignores the label at runtime.
            TaskSpec(
                "occupancy-train",
                "train",
                inputs=["env-raw"],
                params={
                    "model": "classifier",
                    "label_key": "state",
                    "publish_model_every": 40,
                    "emit_info": False,
                },
            ),
            TaskSpec(
                "occupancy-judge",
                "predict",
                inputs=["env-raw"],
                outputs=["occupancy"],
                params={
                    "model": "classifier",
                    "label_key": "state",
                    "model_from": "occupancy-train",
                },
            ),
            # Light: on when it is dark and someone is (judged) present.
            TaskSpec(
                "light-rules",
                "command",
                inputs=["occupancy"],
                outputs=["light-cmd"],
                params={
                    "rules": [
                        {
                            "when": {"key": "label", "eq": "empty"},
                            "command": {"on": False},
                        },
                        {
                            "when": {"key": "illuminance_lux", "lt": 150.0},
                            "command": {"on": True},
                        },
                    ],
                    "default": {"on": False},
                },
            ),
            TaskSpec(
                "ceiling-light",
                "actuator",
                inputs=["light-cmd"],
                params={"device": "light"},
                capabilities=["actuator:light"],
            ),
            # HVAC: cool while occupied, off otherwise.
            TaskSpec(
                "hvac-rules",
                "command",
                inputs=["occupancy"],
                outputs=["hvac-cmd"],
                params={
                    "rules": [
                        {
                            "when": {"key": "label", "eq": "occupied"},
                            "command": {"mode": "cool", "setpoint_c": 24.0},
                        }
                    ],
                    "default": {"mode": "off"},
                },
            ),
            TaskSpec(
                "aircon",
                "actuator",
                inputs=["hvac-cmd"],
                params={"device": "hvac"},
                capabilities=["actuator:hvac"],
            ),
        ],
    )


def main(duration_s: float = DAY_LENGTH_S) -> int:
    events = EventSchedule()
    for start, duration in OCCUPIED:
        events.add(start, duration, "occupied")

    runtime = SimRuntime(seed=3, wlan_config=pi_wlan_config(), cost_model=pi_cost_model())
    cluster = IFoTCluster(runtime)

    env_module = cluster.add_module("pi-env")
    env_module.attach_sensor(
        "environment", EnvironmentSensorModel(events, day_length_s=DAY_LENGTH_S)
    )
    cluster.add_module("pi-analysis-1")
    cluster.add_module("pi-analysis-2")
    appliance_module = cluster.add_module("pi-appliances")
    light = SwitchActuator()
    hvac = HvacActuator()
    appliance_module.attach_actuator("light", light)
    appliance_module.attach_actuator("hvac", hvac)

    cluster.settle(2.0)
    app = cluster.submit(build_recipe())
    print(f"deployed: {app.assignment.placements}")

    # Sample device state once a second to score behaviour against truth.
    timeline: list[tuple[float, bool, str]] = []
    from repro.runtime.component import PeriodicTimer

    PeriodicTimer(runtime, 1.0, lambda: timeline.append((runtime.now, light.on, hvac.mode)))
    runtime.run(until=runtime.now + duration_s)

    def occupied_at(t: float) -> bool:
        return any(s <= t < s + d for s, d in OCCUPIED)

    def dark_at(t: float) -> bool:
        from repro.sensors.waveforms import diurnal

        return diurnal(t, day_length=DAY_LENGTH_S, peak=800.0) < 150.0

    # Score only after the first model snapshot could have shipped.
    judged_period = [entry for entry in timeline if entry[0] > 25.0]
    light_correct = sum(
        1
        for t, on, _mode in judged_period
        if on == (occupied_at(t) and dark_at(t))
    )
    hvac_correct = sum(
        1
        for t, _on, mode in judged_period
        if (mode == "cool") == occupied_at(t)
    )
    light_acc = light_correct / len(judged_period)
    hvac_acc = hvac_correct / len(judged_period)
    print(f"light control accuracy: {light_acc:.2%}")
    print(f"hvac control accuracy:  {hvac_acc:.2%}")
    print(f"light toggles: {light.toggle_count}, hvac commands: {len(hvac.command_log)}")

    app.stop()
    return 0 if light_acc > 0.85 and hvac_acc > 0.85 else 1


if __name__ == "__main__":
    raise SystemExit(main())
