#!/usr/bin/env python3
"""Elderly monitoring (paper §III-A-1): detect falls from a worn sensor.

A wearable accelerometer module streams 3-axis readings; an analysis module
computes the acceleration magnitude and scores it with a streaming anomaly
detector; alerts are delivered to a caregiver pager on a third module. The
whole pipeline is one declarative recipe; nothing is stored; every hop is
MQTT — exactly the architecture of the paper's Fig. 5 recipe example
("Anomaly detection" feeding "Alert messaging").

Ground truth: two falls are planted in the event schedule. The script
reports whether both were detected and the sensing-to-alert latency.

Run:  python examples/elderly_monitoring.py
"""

from __future__ import annotations

from repro.bench.calibration import pi_cost_model, pi_wlan_config
from repro.core import IFoTCluster, Recipe, TaskSpec
from repro.runtime import SimRuntime
from repro.sensors import AccelerometerModel, AlertActuator, EventSchedule

FALLS = [(12.0, 1.5), (31.0, 1.5)]  # (start_s, duration_s)


def build_recipe() -> Recipe:
    return Recipe(
        "elderly-monitoring",
        [
            TaskSpec(
                "wearable",
                "sensor",
                outputs=["accel-raw"],
                params={"device": "accel", "rate_hz": 20},
                capabilities=["sensor:accel"],
            ),
            TaskSpec(
                "magnitude",
                "map",
                inputs=["accel-raw"],
                outputs=["accel-mag"],
                params={"fn": "magnitude", "keys": ["ax", "ay", "az"], "out": "mag"},
            ),
            TaskSpec(
                "fall-detector",
                "predict",
                inputs=["accel-mag"],
                outputs=["scored"],
                params={
                    "model": "anomaly",
                    "detector": "zscore",
                    "min_samples": 30,
                    "threshold": 6.0,
                    "train_on_stream": True,
                },
            ),
            TaskSpec(
                "alert-rule",
                "command",
                inputs=["scored"],
                outputs=["alerts"],
                params={
                    "rules": [
                        {
                            "when": {"key": "anomalous", "eq": True},
                            "command": {"message": "possible fall", "severity": "high"},
                        }
                    ]
                },
            ),
            TaskSpec(
                "caregiver-pager",
                "actuator",
                inputs=["alerts"],
                params={"device": "pager"},
                capabilities=["actuator:pager"],
            ),
        ],
    )


def main(duration_s: float = 45.0) -> int:
    events = EventSchedule()
    for start, duration in FALLS:
        events.add(start, duration, "fall", intensity=1.0)

    runtime = SimRuntime(seed=20, wlan_config=pi_wlan_config(), cost_model=pi_cost_model())
    cluster = IFoTCluster(runtime)

    wearable = cluster.add_module("pi-wearable")
    wearable.attach_sensor("accel", AccelerometerModel(events))
    cluster.add_module("pi-analysis")
    pager_module = cluster.add_module("pi-caregiver")
    pager = AlertActuator()
    pager_module.attach_actuator("pager", pager)

    cluster.settle(2.0)
    app = cluster.submit(build_recipe())
    print(f"deployed: {app.assignment.placements}")
    runtime.run(until=runtime.now + duration_s)

    # Score the detection against the planted ground truth (events are on
    # absolute simulation time, as are the actuator's alert timestamps).
    detections = []
    for start, duration in FALLS:
        window_alerts = [
            t for t, _m, _c in pager.alerts
            if start <= t <= start + duration + 2.0
        ]
        if window_alerts:
            latency = window_alerts[0] - start
            detections.append(latency)
            print(f"fall at t={start:5.1f}s detected, alert latency {latency*1000:.0f} ms")
        else:
            print(f"fall at t={start:5.1f}s MISSED")
    false_alarms = [
        t for t, _m, _c in pager.alerts
        if not any(s <= t <= s + d + 2.0 for s, d in FALLS)
    ]
    print(f"alerts total: {len(pager.alerts)}, false alarms: {len(false_alarms)}")

    app.stop()
    return 0 if len(detections) == len(FALLS) else 1


if __name__ == "__main__":
    raise SystemExit(main())
