#!/usr/bin/env python3
"""Quickstart: one neuron module, one recipe, real wall-clock execution.

This is the smallest useful IFoT application: a temperature-like sensor
streams readings, an online anomaly judge scores them, a command operator
turns anomalies into alerts, and an alert actuator receives them — all on
one module, running on the real (asyncio) runtime for about three seconds.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import IFoTCluster, Recipe, TaskSpec
from repro.runtime import AsyncioRuntime
from repro.sensors import AlertActuator, SensorModel


class SpikySensor(SensorModel):
    """A steady signal that occasionally spikes (the anomalies to catch)."""

    def sample(self, t: float, rng: random.Random) -> dict:
        value = rng.gauss(20.0, 0.3)
        if rng.random() < 0.04:
            value += rng.uniform(8.0, 15.0)
        return {"temp_c": value}


def build_recipe() -> Recipe:
    """Sensor -> anomaly judge -> command rules -> actuator, as a recipe."""
    return Recipe(
        "quickstart",
        [
            TaskSpec(
                "sense",
                "sensor",
                outputs=["raw"],
                params={"device": "thermo", "rate_hz": 25},
                capabilities=["sensor:thermo"],
            ),
            TaskSpec(
                "score",
                "predict",
                inputs=["raw"],
                outputs=["scored"],
                params={
                    "model": "anomaly",
                    "detector": "zscore",
                    "min_samples": 15,
                    "threshold": 5.0,
                    "train_on_stream": True,
                },
            ),
            TaskSpec(
                "alerting",
                "command",
                inputs=["scored"],
                outputs=["alerts"],
                params={
                    "rules": [
                        {
                            "when": {"key": "anomalous", "eq": True},
                            "command": {"message": "temperature spike"},
                        }
                    ]
                },
            ),
            TaskSpec(
                "notify",
                "actuator",
                inputs=["alerts"],
                params={"device": "pager"},
                capabilities=["actuator:pager"],
            ),
        ],
    )


def main(duration_s: float = 3.0) -> int:
    runtime = AsyncioRuntime(seed=7)
    cluster = IFoTCluster(runtime)

    module = cluster.add_module("pi-livingroom")
    module.attach_sensor("thermo", SpikySensor())
    pager = AlertActuator()
    module.attach_actuator("pager", pager)

    runtime.run_for(0.2)  # let MQTT sessions and announcements settle
    app = cluster.submit(build_recipe())
    print(f"deployed recipe {app.name!r}: {app.assignment.placements}")

    runtime.run_for(duration_s)

    sensor = app.operator("sense")
    judge = app.operator("score")
    print(f"samples: {sensor.samples_taken}, judged: {judge.records_judged}")
    print(f"alerts raised: {len(pager.alerts)}")
    for t, message, command in pager.alerts[:5]:
        print(f"  t={t:6.2f}s  {message}  (score={command.get('message')})")

    app.stop()
    runtime.run_for(0.2)
    cluster.shutdown()
    runtime.close()
    return 0 if sensor.samples_taken > 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
