#!/usr/bin/env python3
"""Context-aware mobility support (paper §III-A-3).

Three points of interest (a riverside park, a temple and a market) each
host a crowd-sensing module. The middleware:

* estimates each PoI's crowdedness with two **distributed learners joined
  by MIX** — each learner sees only the PoI streams hashed to its shard,
  yet both converge to one shared model (the Jubatus capability the paper
  builds on);
* a navigation module subscribes to the judged streams and ranks PoIs for
  a visitor who wants scenery without crowds — the paper's "navigate users
  to a good PoI taking into account its current conditions".

A crowd surge is planted at the most scenic PoI mid-run; the ranking must
switch away from it while the surge lasts.

Run:  python examples/mobility_support.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.bench.calibration import pi_cost_model, pi_wlan_config
from repro.core import IFoTCluster, Recipe, TaskSpec
from repro.core.flow import FlowRecord, topic_for_stream
from repro.runtime import SimRuntime
from repro.sensors import CrowdSensorModel, EventSchedule

POIS = {
    "riverside": {"popularity": 1.2, "scenic": 0.9},
    "temple": {"popularity": 0.8, "scenic": 0.7},
    "market": {"popularity": 2.0, "scenic": 0.3},
}
SURGE = (60.0, 60.0)  # the riverside gets swamped for a minute
DAY_LENGTH_S = 600.0


def crowd_label(people_count: float) -> str:
    if people_count < 10:
        return "calm"
    if people_count < 25:
        return "busy"
    return "packed"


def build_recipe() -> Recipe:
    tasks = []
    for poi in POIS:
        tasks.append(
            TaskSpec(
                f"sense-{poi}",
                "sensor",
                outputs=[f"crowd-{poi}"],
                params={"device": f"crowd-{poi}", "rate_hz": 2},
                capabilities=[f"sensor:crowd-{poi}"],
            )
        )
    crowd_streams = [f"crowd-{poi}" for poi in POIS]
    # Two data-parallel learners share the stream by sample-id hash and
    # converge through MIX rounds; each also judges its shard.
    tasks.append(
        TaskSpec(
            "crowd-model",
            "predict",
            inputs=crowd_streams,
            outputs=["judged"],
            params={
                "model": "classifier",
                "label_key": "crowd_label",
                # Judges load the snapshots the MIXed learners publish.
                "model_from": "crowd-learn",
            },
            parallelism=2,
        )
    )
    tasks.append(
        TaskSpec(
            "crowd-learn",
            "train",
            inputs=crowd_streams,
            params={
                "model": "classifier",
                "label_key": "crowd_label",
                "mix_group": "crowd",
                "publish_model_every": 20,
                "emit_info": False,
            },
            parallelism=2,
        )
    )
    tasks.append(
        TaskSpec(
            "mix-manager",
            "mix",
            params={
                "group": "crowd",
                "participants": ["crowd-learn#0", "crowd-learn#1"],
                "interval_s": 10.0,
                "timeout_s": 4.0,
            },
        )
    )
    return Recipe("mobility", tasks)


class LabellingCrowdSensor(CrowdSensorModel):
    """Crowd sensor that annotates each sample with its coarse label and
    PoI name (the label is derived from the reading itself — a curated
    training signal, not an oracle)."""

    def __init__(self, poi: str, **kwargs):
        super().__init__(**kwargs)
        self.poi = poi

    def sample(self, t, rng):
        reading = super().sample(t, rng)
        reading["crowd_label"] = crowd_label(reading["people_count"])
        reading["poi"] = self.poi
        return reading


def main(duration_s: float = 180.0) -> int:
    events = EventSchedule()
    events.add(SURGE[0], SURGE[1], "surge", intensity=1.5)

    runtime = SimRuntime(seed=9, wlan_config=pi_wlan_config(), cost_model=pi_cost_model())
    cluster = IFoTCluster(runtime)

    for poi, conf in POIS.items():
        module = cluster.add_module(f"pi-{poi}")
        module.attach_sensor(
            f"crowd-{poi}",
            LabellingCrowdSensor(
                poi,
                events=events if poi == "riverside" else EventSchedule(),
                popularity=conf["popularity"],
                scenic_level=conf["scenic"],
                day_length_s=DAY_LENGTH_S,
            ),
        )
    cluster.add_module("pi-learner-1")
    cluster.add_module("pi-learner-2")
    nav_module = cluster.add_module("pi-navigation")
    cluster.settle(2.0)

    app = cluster.submit(build_recipe())
    print(f"deployed: {app.assignment.placements}")

    # The navigation service: rank PoIs by scenic level minus crowd level.
    latest: dict[str, dict] = {}
    ranking_log: list[tuple[float, str]] = []
    crowd_level = {"calm": 0.0, "busy": 0.5, "packed": 1.0}

    def on_judged(_topic, payload, _packet):
        record = FlowRecord.from_payload(payload)
        if not record.attributes.get("judged"):
            return
        poi = record.datum.string_values.get("poi")
        if poi is None:
            return
        latest[poi] = {
            "crowd": record.attributes["label"],
            "scenic": record.datum.num_values.get("scenic_level", 0.0),
        }
        if len(latest) == len(POIS):
            best = max(
                latest,
                key=lambda p: latest[p]["scenic"] - crowd_level[latest[p]["crowd"]],
            )
            ranking_log.append((runtime.now, best))

    nav_module.client.subscribe(topic_for_stream("mobility", "judged"), on_judged)
    runtime.run(until=runtime.now + duration_s)

    def recommended_during(start: float, end: float) -> dict[str, int]:
        votes: dict[str, int] = defaultdict(int)
        for t, best in ranking_log:
            if start <= t < end:
                votes[best] += 1
        return dict(votes)

    before = recommended_during(30.0, SURGE[0])
    during = recommended_during(SURGE[0] + 15.0, SURGE[0] + SURGE[1])
    after = recommended_during(SURGE[0] + SURGE[1] + 20.0, duration_s)
    top = lambda votes: max(votes, key=votes.get) if votes else "n/a"  # noqa: E731
    print(f"recommendation before surge: {top(before)}  {before}")
    print(f"recommendation during surge: {top(during)}  {during}")
    print(f"recommendation after surge:  {top(after)}  {after}")

    mix_rounds = runtime.tracer.count("mix.round_done")
    mix_applied = runtime.tracer.count("ml.mix_applied")
    print(f"MIX rounds completed: {mix_rounds}, broadcasts applied: {mix_applied}")

    app.stop()
    ok = (
        top(before) == "riverside"
        and top(during) != "riverside"
        and top(after) == "riverside"
        and mix_rounds >= 3
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
