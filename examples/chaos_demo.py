#!/usr/bin/env python3
"""Chaos demo: the paper's Fig. 5 recipe survives a network partition.

The "Start watching" task graph (four sensing tasks, anomaly branches,
camera monitoring, state estimation, alert messaging) runs on a
five-module cluster while ``repro.chaos`` cuts the wrist module off from
the broker for six seconds and then heals the cut. The wrist client's
watchdog detects the dead session, backs off, reconnects and replays its
subscriptions; sensor readings buffered during the outage flush on
reconnect. A fall planted *after* the heal must still raise an alert,
and the run must satisfy the end-to-end chaos invariants (no silent
QoS 1 loss, bounded recovery, directory convergence).

Run:  python examples/chaos_demo.py
"""

from __future__ import annotations

from pathlib import Path

from repro.chaos import FaultPlan, Heal, Injector, Invariants, Partition, RecoveryCheck
from repro.core import IFoTCluster, parse_recipe
from repro.runtime import SimRuntime
from repro.sensors import (
    AccelerometerModel,
    AlertActuator,
    CameraModel,
    EnvironmentSensorModel,
    EventSchedule,
)

RECIPE_PATH = Path(__file__).resolve().parent / "recipes" / "fig5_watching.recipe"

PARTITION_AT = 8.0
HEAL_AT = 14.0
FALL_AT = 24.0
FALL_LEN = 2.0
RUN_UNTIL = 40.0
KEEPALIVE_S = 2.0


def main() -> int:
    events = EventSchedule()
    events.add(FALL_AT, FALL_LEN, "fall", intensity=1.2)
    runtime = SimRuntime(seed=55)
    cluster = IFoTCluster(
        runtime,
        # Short keep-alive + auto-reconnect: the partition must be
        # detected and healed within the demo's window.
        client_keepalive_s=KEEPALIVE_S,
        auto_reconnect=True,
        broker_params={"sweep_interval_s": 2.0},
    )
    wrist = cluster.add_module("pi-wrist")
    wrist.attach_sensor("accel-wrist", AccelerometerModel(events))
    waist = cluster.add_module("pi-waist")
    waist.attach_sensor("accel-waist", AccelerometerModel(events, sway_sigma=0.06))
    room = cluster.add_module("pi-room")
    room.attach_sensor("environment", EnvironmentSensorModel(events))
    room.attach_sensor("camera", CameraModel(events))
    cluster.add_module("pi-analysis")
    pager_module = cluster.add_module("pi-pager")
    pager = AlertActuator()
    pager_module.attach_actuator("pager", pager)
    cluster.settle(2.0)

    app = cluster.submit(parse_recipe(RECIPE_PATH.read_text()))
    cluster.settle(2.0)

    plan = FaultPlan(
        "wrist-partition",
        (
            Partition(
                at=PARTITION_AT, group_a=("pi-wrist",), group_b=("broker-node",)
            ),
            Heal(at=HEAL_AT, group_a=("pi-wrist",), group_b=("broker-node",)),
        ),
    )
    Injector(runtime, cluster=cluster).schedule(plan)
    print(f"running Fig. 5 watching pipeline through: {plan.name}")
    for event in plan:
        print(f"  t={event.at:>5.1f}s  {event.kind}")
    runtime.run(until=RUN_UNTIL)

    report = Invariants(runtime.tracer, cluster).check(
        recovery=(
            RecoveryCheck(
                fault_kind="partition",
                signal_event="mqtt.client.resubscribed",
                bound_s=3.0 * KEEPALIVE_S,
                measure_from="restored",
                source_contains="pi-wrist",
            ),
        )
    )
    print()
    print(report.render())

    in_window = [
        t for t, _m, _c in pager.alerts if FALL_AT <= t <= FALL_AT + FALL_LEN + 3.0
    ]
    print()
    if in_window:
        print(f"fall at t={FALL_AT:g}s alerted at t={in_window[0]:.2f}s")
    else:
        print("FAIL: the post-heal fall raised no alert")
    app.stop()
    return 0 if (report.ok and in_window) else 1


if __name__ == "__main__":
    raise SystemExit(main())
