#!/usr/bin/env python3
"""Resilience demo: a pipeline that survives a module crash.

Builds on the future-work features this reproduction adds on top of the
paper: MQTT last-will crash detection, the stream registry, and automatic
failover. The recipe is written in the textual recipe language; the
monitored module dies mid-run; the management node re-places the orphaned
analysis task on a survivor, and the judge resumes with the model it left
behind (shipped as a retained snapshot by the learner).

Run:  python examples/resilient_pipeline.py
"""

from __future__ import annotations

from repro.core import IFoTCluster, parse_recipe
from repro.runtime import SimRuntime
from repro.sensors import FixedPayloadModel

RECIPE = """
recipe resilient

task sense : sensor
    out raw
    on pi-sense
    needs sensor:sample
    device = sample
    rate_hz = 10

task learn : train
    in raw
    on pi-sense
    model = classifier
    label_key = label
    publish_model_every = 20
    emit_info = false

task judge : predict
    in raw
    out judged
    model = classifier
    label_key = label
    model_from = learn
"""


def judged_in(runtime, start, end):
    return sum(
        1 for r in runtime.tracer.select("ml.judged")
        if start <= r.time < end and r["judged"]
    )


def main() -> int:
    runtime = SimRuntime(seed=42)
    cluster = IFoTCluster(runtime, heartbeat_s=2.0, auto_failover=True)
    sense = cluster.add_module("pi-sense")
    sense.attach_sensor("sample", FixedPayloadModel())
    cluster.add_module("pi-worker-1")
    cluster.add_module("pi-worker-2")
    for module in cluster.modules.values():
        module.client.keepalive_s = 2.0
        module.client.refresh_session()
    cluster.settle(2.0)

    app = cluster.submit(parse_recipe(RECIPE))
    cluster.settle(2.0)
    victim = app.assignment.module_for("judge")
    print(f"deployed; judge runs on {victim}")

    runtime.run(until=runtime.now + 5.0)
    healthy = judged_in(runtime, runtime.now - 5.0, runtime.now)
    print(f"healthy phase: {healthy} records judged")

    print(f"*** crashing {victim} ***")
    kill_time = runtime.now
    cluster.module(victim).node.fail()
    runtime.run(until=runtime.now + 20.0)

    moved = runtime.tracer.select("mgmt.failover_moved")
    if not moved:
        print("no failover happened!")
        return 1
    recovery_s = moved[0].time - kill_time
    new_host = moved[0]["to_module"]
    print(f"failover: judge -> {new_host} after {recovery_s:.2f}s of detection")

    runtime.run(until=runtime.now + 5.0)
    resumed = judged_in(runtime, moved[0].time + 1.0, runtime.now)
    print(f"recovered phase: {resumed} records judged on {new_host}")

    operator = cluster.module(new_host).operators["resilient/judge"]
    print(f"model snapshots loaded on the new host: {operator.model_loads}")
    app.stop()
    return 0 if healthy > 20 and resumed > 20 and operator.model_loads >= 1 else 1


if __name__ == "__main__":
    raise SystemExit(main())
