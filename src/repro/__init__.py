"""IFoT middleware reproduction (ICDCSW 2016).

Public entry points:

* :mod:`repro.core` — the middleware (clusters, recipes, the four
  mechanisms);
* :mod:`repro.runtime` — simulated and real runtimes;
* :mod:`repro.mqtt` / :mod:`repro.ml` / :mod:`repro.sensors` — the
  substrates;
* :mod:`repro.bench` — the paper's testbed and experiment harness;
* ``python -m repro`` — command-line interface.
"""

__version__ = "1.0.0"
