"""Static analysis for the reproduction: determinism linter + recipe checker.

Two engines share one diagnostics currency
(:class:`repro.util.validate.Diagnostic`):

* the **determinism linter** (:mod:`repro.lint.engine`) — an AST rules
  engine that guards the repository's same-seed-same-trace contract: no
  wall-clock reads, no global RNG, no order-dependent set iteration, no
  identity/hash ordering, no blocking I/O in simulated code paths;
* the **recipe static checker** (:mod:`repro.lint.recipe_check`) — verifies
  a task graph *before* ``RecipeSplit``/``TaskAssignment`` deploy it
  (paper §IV-C): DAG-ness, stream wiring, QoS coherence, operator port
  shapes, and static rate feasibility against the per-node CPU
  service-time model.

Run both from the command line via ``repro lint``; the deployment path
(:mod:`repro.core.management`) runs the recipe checker automatically.

A third engine, the **interprocedural dataflow analyzer**
(:mod:`repro.lint.dataflow`), reasons across files and across the task
graph: state-declaration soundness for the schedule sanitizer
(SAN020/SAN021), recipe payload-schema and at-least-once semantics
checks (RCP200–RCP212), and the cost-model drift gate (RCP230/RCP231)
that replays benchmark baselines against the calibrated cost model.
``repro lint --dataflow`` / ``--calibrate`` run it.

A fourth engine, the **latency-bound analyzer**
(:mod:`repro.lint.latency`), runs a network-calculus-style abstract
interpretation over the task graph: token-bucket arrival curves composed
with calibrated CPU/WLAN service curves yield a worst-case end-to-end
latency bound per flow and a backlog bound per shared resource, checked
against deadlines declared on recipe sinks (RCP240–RCP242) and validated
against committed trace/bench observations by the soundness gate
(RCP243/RCP244). ``repro lint --deadline`` / ``--validate`` run it.

Every implemented rule across the four engines (plus the sanitizer's
SAN-series) is registered in :mod:`repro.lint.catalog`; ``repro lint
--catalog``, the README table and SARIF rule metadata all render from
that single registry.
"""

from repro.lint.catalog import (
    CatalogEntry,
    catalog_descriptions,
    render_catalog_markdown,
    render_catalog_text,
    unified_catalog,
)
from repro.lint.dataflow import (
    DATAFLOW_RULES,
    StreamSchema,
    analyze_state_soundness,
    check_cost_drift,
    check_recipe_payloads,
    propagate_schemas,
)
from repro.lint.engine import LintRun, lint_paths, lint_source
from repro.lint.latency import (
    LATENCY_RULES,
    FlowBound,
    LatencyAnalysis,
    LatencyContext,
    ResourceBound,
    analyze_latency,
    check_bound_soundness,
    check_deadlines,
    flows_from_bench,
    flows_from_trace,
)
from repro.lint.recipe_check import (
    check_rate_feasibility,
    check_recipe,
    check_recipe_dict,
)
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.rules import RULE_CATALOG, LintRule, rule_catalog

__all__ = [
    "LintRun",
    "lint_paths",
    "lint_source",
    "check_recipe",
    "check_recipe_dict",
    "check_rate_feasibility",
    "check_recipe_payloads",
    "check_cost_drift",
    "analyze_state_soundness",
    "propagate_schemas",
    "StreamSchema",
    "DATAFLOW_RULES",
    "LATENCY_RULES",
    "LatencyContext",
    "LatencyAnalysis",
    "FlowBound",
    "ResourceBound",
    "analyze_latency",
    "check_deadlines",
    "check_bound_soundness",
    "flows_from_bench",
    "flows_from_trace",
    "render_json",
    "render_sarif",
    "render_text",
    "LintRule",
    "RULE_CATALOG",
    "rule_catalog",
    "CatalogEntry",
    "unified_catalog",
    "catalog_descriptions",
    "render_catalog_text",
    "render_catalog_markdown",
]
