"""Static analysis for the reproduction: determinism linter + recipe checker.

Two engines share one diagnostics currency
(:class:`repro.util.validate.Diagnostic`):

* the **determinism linter** (:mod:`repro.lint.engine`) — an AST rules
  engine that guards the repository's same-seed-same-trace contract: no
  wall-clock reads, no global RNG, no order-dependent set iteration, no
  identity/hash ordering, no blocking I/O in simulated code paths;
* the **recipe static checker** (:mod:`repro.lint.recipe_check`) — verifies
  a task graph *before* ``RecipeSplit``/``TaskAssignment`` deploy it
  (paper §IV-C): DAG-ness, stream wiring, QoS coherence, operator port
  shapes, and static rate feasibility against the per-node CPU
  service-time model.

Run both from the command line via ``repro lint``; the deployment path
(:mod:`repro.core.management`) runs the recipe checker automatically.
"""

from repro.lint.engine import LintRun, lint_paths, lint_source
from repro.lint.recipe_check import (
    check_rate_feasibility,
    check_recipe,
    check_recipe_dict,
)
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULE_CATALOG, LintRule, rule_catalog

__all__ = [
    "LintRun",
    "lint_paths",
    "lint_source",
    "check_recipe",
    "check_recipe_dict",
    "check_rate_feasibility",
    "render_json",
    "render_text",
    "LintRule",
    "RULE_CATALOG",
    "rule_catalog",
]
