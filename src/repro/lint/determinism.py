"""Determinism rules: the static side of the same-seed-same-trace contract.

Every rule here guards a way Python code silently breaks reproducibility:

``DET001``  wall-clock reads (``time.time``, ``datetime.now``, ...)
``DET002``  global / unseeded RNG instead of ``repro.util.rng`` streams
``DET003``  order-dependent iteration over sets
``DET004``  ``id()`` / hash-based ordering (address- and salt-dependent)
``DET005``  blocking I/O (sleep, sockets, subprocesses, file writes)
``DET006``  float-unsafe folds (``sum``, ``fsum``, …) over unordered iterables

The rules are syntactic and intentionally err on the side of reporting:
a legitimate site (the wall-clock runtime, the CLI's export paths) carries
an annotated ``# repro: lint-ok[RULE]`` suppression instead of weakening
the rule.
"""

from __future__ import annotations

import ast

from repro.lint.rules import FileContext, LintRule, register_rule
from repro.util.validate import Severity

__all__ = ["DETERMINISM_RULES"]


def _snippet(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        text = f"<{type(node).__name__}>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


# ---------------------------------------------------------------------------
# DET001 — wall clock
# ---------------------------------------------------------------------------

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_rule
class WallClockRule(LintRule):
    """Flags reads of the host's clock inside simulated code."""

    rule_id = "DET001"
    severity = Severity.ERROR
    description = "wall-clock read — virtual time must come from runtime.now"
    hint = "use the runtime clock (runtime.now / node.runtime.now)"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.resolve(node.func)
        if dotted in _WALL_CLOCK:
            self.report(node, f"wall-clock call {_snippet(node.func)}()")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET002 — global / unseeded randomness
# ---------------------------------------------------------------------------

_GLOBAL_RANDOM_FNS = {
    f"random.{name}"
    for name in (
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
        "expovariate", "triangular", "betavariate", "paretovariate",
        "vonmisesvariate", "weibullvariate", "getrandbits", "randbytes",
        "seed", "getstate", "setstate", "binomialvariate",
    )
}

_NUMPY_GLOBAL_FNS = {
    f"numpy.random.{name}"
    for name in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "choice", "shuffle", "permutation", "normal", "uniform",
        "standard_normal", "poisson", "beta", "binomial", "exponential",
        "gamma", "bytes",
    )
}

_ENTROPY_SOURCES = {"os.urandom", "uuid.uuid4", "random.SystemRandom"}


@register_rule
class GlobalRngRule(LintRule):
    """Flags the process-global RNG and OS entropy sources."""

    rule_id = "DET002"
    severity = Severity.ERROR
    description = "global or OS-entropy RNG — draws are not seed-derived"
    hint = "draw from a named stream: runtime.rng.stream('<consumer>')"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.resolve(node.func)
        if dotted is not None and (
            dotted in _GLOBAL_RANDOM_FNS
            or dotted in _NUMPY_GLOBAL_FNS
            or dotted in _ENTROPY_SOURCES
            or dotted.startswith("secrets.")
        ):
            self.report(node, f"non-deterministic RNG call {_snippet(node.func)}()")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET003 — order-dependent set iteration
# ---------------------------------------------------------------------------

#: Builtins whose output order follows their argument's iteration order.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "zip", "reversed", "iter"}

_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference", "copy"}


class SetTaintRule(LintRule):
    """Shared machinery for rules that track set-valued expressions.

    Local names assigned set-valued expressions are tracked per scope;
    re-assigning through an ordering call (``sorted(...)``) clears the
    taint. Subclasses implement the sinks.
    """

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._scopes: list[set[str]] = [set()]

    # -- set-typed expression inference ---------------------------------

    def _is_set_name(self, name: str) -> bool:
        return any(name in scope for scope in reversed(self._scopes))

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._is_set_name(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self._is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body) or self._is_set_expr(node.orelse)
        return False

    # -- scope and assignment tracking -----------------------------------

    def _enter_scope(self, node: ast.AST) -> None:
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _enter_scope
    visit_AsyncFunctionDef = _enter_scope
    visit_ClassDef = _enter_scope
    visit_Lambda = _enter_scope

    def _bind(self, target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            if is_set:
                self._scopes[-1].add(target.id)
            else:
                for scope in self._scopes:
                    scope.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            self._bind(target, is_set)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        annotation = _snippet(node.annotation, limit=200)
        looks_set = annotation.partition("[")[0] in ("set", "frozenset", "Set", "FrozenSet")
        is_set = looks_set or (node.value is not None and self._is_set_expr(node.value))
        self._bind(node.target, is_set)


@register_rule
class SetIterationRule(SetTaintRule):
    """Flags iteration over sets where element order escapes.

    Set iteration order depends on the string-hash salt (PYTHONHASHSEED),
    so any set ordering that reaches scheduling, serialization or output
    differs between processes. Order-insensitive consumers (``sorted``,
    ``len``, ``min``/``max``, membership, another set) are fine and not
    flagged; building a list/tuple, enumerating, joining, or looping is
    flagged.
    """

    rule_id = "DET003"
    severity = Severity.ERROR
    description = "iteration over a set — order is hash-salt-dependent"
    hint = "sort first: iterate sorted(the_set)"

    # -- order-sensitive sinks -------------------------------------------

    def _check_iter(self, node: ast.AST, iterable: ast.expr) -> None:
        if self._is_set_expr(iterable):
            self.report(node, f"iterating over set {_snippet(iterable)!r}")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        # Building a list/dict from a set leaks set order into an ordered
        # container. A set built from a set stays unordered — not flagged.
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
            for arg in node.args:
                if self._is_set_expr(arg):
                    self.report(
                        node,
                        f"{func.id}() over set {_snippet(arg)!r} "
                        "freezes hash-salt order",
                    )
        elif isinstance(func, ast.Attribute):
            if func.attr == "join" and node.args and self._is_set_expr(node.args[0]):
                self.report(
                    node, f"join over set {_snippet(node.args[0])!r}"
                )
            elif (
                func.attr == "pop"
                and not node.args
                and self._is_set_expr(func.value)
            ):
                self.report(
                    node,
                    f"set.pop() on {_snippet(func.value)!r} removes an "
                    "arbitrary (salt-ordered) element",
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET006 — accumulation over unordered iterables
# ---------------------------------------------------------------------------

#: Callables that fold an iterable into one value, left to right. Over
#: floats the result depends on the operand order (non-associativity), so
#: feeding them an unordered iterable makes the fold salt-dependent.
_ACCUMULATORS = {
    "sum",
    "math.fsum",
    "math.prod",
    "functools.reduce",
    "statistics.mean",
    "statistics.fmean",
    "statistics.geometric_mean",
    "statistics.harmonic_mean",
}

_DICT_VIEW_METHODS = {"keys", "values", "items"}


@register_rule
class AccumulationOrderRule(SetTaintRule):
    """Flags float-unsafe folds (``sum``, ``fsum``, ``reduce``, …) over
    unordered iterables.

    Floating-point addition and multiplication are not associative, so a
    fold's result depends on operand order. Folding a *set* (or a
    comprehension drawing from one) is salt-dependent — an error. Folding
    a *dict view* is insertion-ordered, which is deterministic only as
    long as every insertion path is; since that is invisible at the fold
    site, it is reported as a warning.
    """

    rule_id = "DET006"
    severity = Severity.ERROR
    description = "accumulation over an unordered iterable — float folds are order-dependent"
    hint = "fold a deterministic order: sum(sorted(xs)) or sum(xs_list)"

    def _fold_name(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ACCUMULATORS:
            return func.id
        dotted = self.resolve(func)
        if dotted in _ACCUMULATORS:
            return dotted
        return None

    def _iterable_argument(self, name: str, node: ast.Call) -> "ast.expr | None":
        index = 1 if name.endswith("reduce") else 0
        return node.args[index] if len(node.args) > index else None

    def visit_Call(self, node: ast.Call) -> None:
        name = self._fold_name(node)
        arg = self._iterable_argument(name, node) if name is not None else None
        if arg is not None:
            self._check_fold(node, name, arg)  # type: ignore[arg-type]
        self.generic_visit(node)

    def _check_fold(self, node: ast.Call, name: str, arg: ast.expr) -> None:
        if self._is_set_expr(arg):
            self.report(node, f"{name}() over set {_snippet(arg)!r}")
            return
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in arg.generators:
                if self._is_set_expr(gen.iter):
                    self.report(
                        node,
                        f"{name}() over a comprehension drawing from set "
                        f"{_snippet(gen.iter)!r}",
                    )
                    return
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr in _DICT_VIEW_METHODS
            and not arg.args
        ):
            self.report(
                node,
                f"{name}() over dict view {_snippet(arg)!r} — deterministic "
                "only if every insertion into the dict is",
                severity=Severity.WARNING,
            )


# ---------------------------------------------------------------------------
# DET004 — identity / hash ordering
# ---------------------------------------------------------------------------

_KEYED_SORTS = {"sorted", "min", "max"}


@register_rule
class HashOrderRule(LintRule):
    """Flags ordering by ``id()`` or ``hash()`` and bare ``id()`` use."""

    rule_id = "DET004"
    severity = Severity.WARNING
    description = "id()/hash()-dependent value — differs across processes"
    hint = "order by a stable field (name, sequence number) instead"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _KEYED_SORTS or name == "sort":
            for kw in node.keywords:
                if (
                    kw.arg == "key"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in ("id", "hash")
                ):
                    self.report(
                        node,
                        f"{name}(key={kw.value.id}) orders by "
                        f"{'object address' if kw.value.id == 'id' else 'salted hash'}",
                        severity=Severity.ERROR,
                    )
        if isinstance(func, ast.Name) and func.id == "id" and len(node.args) == 1:
            self.report(node, f"id({_snippet(node.args[0])}) is address-dependent")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET005 — blocking I/O
# ---------------------------------------------------------------------------

_BLOCKING_PREFIXES = ("socket.", "subprocess.", "requests.", "urllib.", "http.client.")
_BLOCKING_CALLS = {"time.sleep", "os.system", "os.popen", "input"}
_WRITE_METHODS = {"write_text", "write_bytes"}


@register_rule
class BlockingIoRule(LintRule):
    """Flags blocking syscalls and file writes.

    Simulated components must advance only virtual time; a real ``sleep``
    or socket round-trip inside a sim process stalls the host without
    advancing the clock, and file writes from operators make runs
    environment-dependent. Export layers (CLI, bench reporting) suppress
    per line.
    """

    rule_id = "DET005"
    severity = Severity.ERROR
    description = "blocking I/O — stalls the sim / escapes the sandbox of a run"
    hint = "simulated code must not block; schedule with runtime timers"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.resolve(node.func)
        if dotted is not None and (
            dotted in _BLOCKING_CALLS
            or dotted.startswith(_BLOCKING_PREFIXES)
        ):
            self.report(node, f"blocking call {_snippet(node.func)}()")
        elif isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = self._open_mode(node)
            if mode is not None and any(ch in mode for ch in "wax+"):
                self.report(
                    node,
                    f"file opened for writing (mode {mode!r})",
                    severity=Severity.WARNING,
                )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_METHODS
        ):
            self.report(
                node,
                f"file write {_snippet(node.func)}()",
                severity=Severity.WARNING,
            )
        self.generic_visit(node)

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        mode: ast.expr | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None


DETERMINISM_RULES = (
    WallClockRule,
    GlobalRngRule,
    SetIterationRule,
    HashOrderRule,
    BlockingIoRule,
    AccumulationOrderRule,
)
