"""Static rate propagation and CPU feasibility (paper §IV-C pre-check).

A recipe declares its ingest rates (``rate_hz`` on sensor tasks); every
operator transforms rates in a statically known way (a ``map`` passes its
input rate through, an align ``window`` emits at the slowest source's
rate, a ``throttle`` caps at ``1/interval_s`` ...). Propagating rates down
the task graph gives each task's processing demand in records/second;
multiplying by the per-record service time of the operator's CPU
operation (the same :class:`~repro.runtime.costs.CostModel` the simulator
charges) gives CPU-seconds-per-second — utilization. A task or module
whose utilization exceeds its capacity is *statically unschedulable*: the
deployment would saturate exactly as the paper's testbed does past the
20–40 Hz knee (§V-B), so the checker can say so before a single record
flows.

The model is conservative and simple on purpose: ``filter``/``delta`` are
assumed to pass everything (worst case), per-byte cost terms use a fixed
assumed record size, and warm-up surcharges are ignored (steady state).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recipe import Recipe, TaskSpec
from repro.runtime.costs import CostModel, OpCost

__all__ = [
    "TaskRates",
    "propagate_rates",
    "task_utilization",
    "default_cost_model",
    "DEFAULT_RECORD_BYTES",
]

#: Assumed on-wire record size for per-byte cost terms (a three-value
#: sensor datum serializes to roughly this).
DEFAULT_RECORD_BYTES = 256

#: CPU operation charged per record, by operator name (mirrors each
#: operator class's ``cost_op``). Unknown operators fall back to the
#: generic stream-processing cost.
COST_OP_BY_OPERATOR: dict[str, str] = {
    "sensor": "sensor.sample",
    "actuator": "actuator.apply",
    "train": "ml.train",
    "predict": "ml.predict",
    "mix": "ml.mix",
}
_DEFAULT_COST_OP = "flow.process"


def default_cost_model() -> CostModel:
    """Pi-class service times (the paper's calibrated model).

    Falls back to a small built-in table if the calibration module is
    unavailable, so the checker never needs the bench package to work.
    """
    try:
        from repro.bench.calibration import pi_cost_model
    except Exception:  # pragma: no cover - calibration ships with the repo
        model = CostModel()
        model.define("sensor.sample", OpCost(base_s=2.5e-3))
        model.define("actuator.apply", OpCost(base_s=2.0e-3))
        model.define("flow.process", OpCost(base_s=1.6e-3))
        model.define("ml.train", OpCost(base_s=28.0e-3))
        model.define("ml.predict", OpCost(base_s=18.0e-3))
        model.define("ml.mix", OpCost(base_s=8.0e-3))
        return model
    return pi_cost_model()


@dataclass(frozen=True)
class TaskRates:
    """Statically derived rates for one task."""

    ingest_hz: float  # records/second arriving at the task
    emit_hz: float  # records/second published per output stream


def _emit_rate(task: TaskSpec, ingest_hz: float) -> float:
    operator = task.operator
    params = task.params
    if operator == "sensor":
        return float(params.get("rate_hz", 1.0))
    if operator == "window":
        mode = str(params.get("mode", "align"))
        if mode == "align":
            return ingest_hz  # one emission per complete source round
        if mode == "count":
            count = max(1, int(params.get("count", 1)))
            return ingest_hz / count
        interval = float(params.get("interval_s", 0.0))
        return min(ingest_hz, 1.0 / interval) if interval > 0 else ingest_hz
    if operator == "throttle":
        interval = float(params.get("interval_s", 0.0))
        return min(ingest_hz, 1.0 / interval) if interval > 0 else ingest_hz
    if operator == "train":
        return 0.0 if not task.outputs else ingest_hz
    # merge emits per arrival; map/filter/stat/predict/... at most pass
    # through. Worst case: everything passes.
    return ingest_hz


def propagate_rates(recipe: Recipe) -> dict[str, TaskRates]:
    """Derive per-task ingest/emit rates from declared sensor rates.

    External inputs (``app:stream`` references) contribute 0 Hz — their
    rate is unknowable from this recipe alone.
    """
    stream_rates: dict[str, float] = {}
    result: dict[str, TaskRates] = {}
    for task_id in recipe.topological_order:
        task = recipe.tasks[task_id]
        if task.operator == "window" and str(task.params.get("mode", "align")) == "align":
            # An align round completes when the slowest source reports:
            # the window ingests every stream but emits at the slowest
            # source's rate.
            in_rates = [
                stream_rates.get(stream, 0.0)
                for stream in task.inputs
                if ":" not in stream
            ]
            ingest = sum(in_rates)
            positive = [rate for rate in in_rates if rate > 0]
            emit = min(positive) if positive else 0.0
        else:
            ingest = sum(
                stream_rates.get(stream, 0.0)
                for stream in task.inputs
                if ":" not in stream
            )
            emit = _emit_rate(task, ingest)
        if task.operator == "sensor":
            ingest = float(task.params.get("rate_hz", 1.0))
        result[task_id] = TaskRates(ingest_hz=ingest, emit_hz=emit)
        for stream in task.outputs:
            stream_rates[stream] = emit
    return result


def task_utilization(
    task: TaskSpec,
    rates: TaskRates,
    cost_model: CostModel,
    record_bytes: int = DEFAULT_RECORD_BYTES,
) -> float:
    """CPU-seconds per second this task demands of one unit-capacity core.

    Sharded tasks report the *per-shard* utilization (each shard sees
    ``1/parallelism`` of the samples).
    """
    op = COST_OP_BY_OPERATOR.get(task.operator, _DEFAULT_COST_OP)
    # Steady state: read the cost past the warm-up window.
    entry = cost_model.ops.get(op)
    if entry is None:
        service_s = 0.0
    else:
        service_s = (
            entry.cost(record_bytes, invocation_index=entry.warmup_ops)
            * cost_model.scale
        )
    demand_hz = rates.ingest_hz if task.inputs else rates.emit_hz
    return (demand_hz / max(1, task.parallelism)) * service_s
