"""Cross-file call graph for the state-soundness pass (SAN020/SAN021).

The dynamic schedule sanitizer (:mod:`repro.san`) only sees races on
*declared* ``tracked_state`` cells. To make that opt-in contract sound,
the static pass here answers two questions about every method in the
analyzed file set:

* **Is it schedule-reachable?** Roots are callables handed to the
  scheduling primitives (kernel ``schedule``/``schedule_at``/
  ``schedule_epilogue``, ``runtime.call_later``, ``Component.after``/
  ``every``, ``node.execute``, MQTT ``subscribe``/``subscribe_many``,
  handler-dispatch dict literals) plus the operator lifecycle methods the
  middleware machinery invokes directly (``on_record``, ``pause``, the
  migration API). Reachability propagates caller → callee.
* **Is it covered by a cell?** A method that touches a declared cell
  (``.note_write()`` / ``.note_read()`` / ``.value``) is *covered*: the
  sanitizer observes an access on the same event, so every mutation on
  that event is attributed to the cell. Coverage propagates along call
  edges in both directions (callers and callees share the event).

Both propagations are name-based and intentionally over-approximate
(``self.m(...)`` resolves across the class family, other receivers
resolve globally when the name is rare): over-approximating *coverage*
under-reports, which keeps precision over recall — a reported mutation
really is invisible to the sanitizer under every resolution we tried.

``__init__``/``__post_init__``/``configure`` are construction-time:
mutations there are exempt and reachability never propagates through
them (callbacks they *register* still become roots).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.rules import ImportMap

__all__ = [
    "CallGraph",
    "ClassInfo",
    "MethodInfo",
    "Mutation",
    "build_callgraph",
]

#: Call-site names whose callable arguments run later on the schedule.
SCHEDULING_CALLS = {
    "schedule",
    "schedule_at",
    "schedule_epilogue",
    "call_later",
    "after",
    "every",
    "execute",
    "subscribe",
    "subscribe_many",
    "PeriodicTimer",
}

#: Methods the middleware machinery invokes on live components without a
#: visible registration call site (operator lifecycle + migration API).
LIFECYCLE_ROOTS = {
    "on_record",
    "pause",
    "resume",
    "export_state",
    "import_state",
    "take_handoff_buffer",
    "begin_handoff_tracking",
    "absorb_handoff",
    "on_stop",
}

#: Method calls that mutate the receiver container in place.
MUTATOR_CALLS = {
    "append",
    "appendleft",
    "add",
    "extend",
    "update",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "clear",
    "setdefault",
    "sort",
    "reverse",
    "push",
}

#: Constructors whose assignment declares a sanitizer state cell.
_CELL_FACTORIES = {"tracked_state", "StateCell"}

#: Cell attribute accesses the dynamic sanitizer observes.
_CELL_ACCESSORS = {"note_read", "note_write", "value"}

#: Construction/configuration-time methods (see module docstring).
INIT_METHODS = {"__init__", "__post_init__", "configure"}

#: A global (receiver-unknown) call edge only resolves when the method
#: name is defined at most this many times in the file set — edges to
#: ubiquitous names (``get``, ``stop``, ...) would smear coverage and
#: reachability into noise.
_GLOBAL_EDGE_FANOUT_CAP = 4


@dataclass(frozen=True)
class Mutation:
    """One instance-attribute mutation site (``self.<attr> ...``)."""

    attr: str
    line: int
    col: int
    desc: str


@dataclass
class MethodInfo:
    """One method or module-level function, with its scan results."""

    name: str
    qualname: str
    file: str
    line: int
    cls: "ClassInfo | None" = None
    mutations: list[Mutation] = field(default_factory=list)
    #: ``self.m(...)`` call names (family-resolved).
    self_calls: set[str] = field(default_factory=set)
    #: bare ``f(...)`` / ``obj.m(...)`` call names (globally resolved).
    other_calls: set[str] = field(default_factory=set)
    #: ``self.X`` attribute loads (method refs resolve to call edges).
    self_refs: set[str] = field(default_factory=set)
    #: ``self.X`` refs handed to a scheduling call or a dispatch dict —
    #: these become schedule roots wherever the registration happens.
    sched_refs: set[str] = field(default_factory=set)
    #: bare names handed to a scheduling call (module-level callbacks).
    sched_names: set[str] = field(default_factory=set)
    #: ``(X, Y)`` for every ``self.X.Y`` access (cell-coverage evidence).
    attr_pairs: set[tuple[str, str]] = field(default_factory=set)
    #: ``self.X = tracked_state(...)`` declarations in this method.
    cell_decls: set[str] = field(default_factory=set)

    @property
    def key(self) -> str:
        return f"{self.file}::{self.qualname}"


@dataclass
class ClassInfo:
    """One class definition with its methods and cell declarations."""

    name: str
    qualname: str
    file: str
    line: int
    bases: tuple[str, ...]
    methods: dict[str, MethodInfo] = field(default_factory=dict)
    own_cells: set[str] = field(default_factory=set)


def _last_component(expr: ast.expr, imports: ImportMap) -> str | None:
    dotted = imports.resolve(expr)
    if dotted is None:
        if isinstance(expr, ast.Attribute):
            return expr.attr
        return None
    return dotted.rsplit(".", 1)[-1]


class _MethodScanner(ast.NodeVisitor):
    """Single walk of one method body filling its :class:`MethodInfo`."""

    def __init__(self, info: MethodInfo, imports: ImportMap) -> None:
        self.info = info
        self.imports = imports

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _self_attr(node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    @classmethod
    def _root_self_attr(cls, node: ast.AST) -> str | None:
        """The ``X`` in any ``self.X[...].y...`` access chain."""
        current = node
        while isinstance(current, (ast.Attribute, ast.Subscript)):
            attr = cls._self_attr(current)
            if attr is not None:
                return attr
            current = current.value
        return None

    def _mutate(self, node: ast.AST, attr: str, desc: str) -> None:
        self.info.mutations.append(
            Mutation(
                attr=attr,
                line=getattr(node, "lineno", self.info.line),
                col=getattr(node, "col_offset", 0),
                desc=desc,
            )
        )

    def _record_target(self, target: ast.expr, op: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, op)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, op)
            return
        direct = self._self_attr(target)
        if direct is not None:
            self._mutate(target, direct, f"self.{direct} {op} ...")
            return
        root = self._root_self_attr(target)
        if root is not None:
            kind = "item write" if isinstance(target, ast.Subscript) else "field write"
            self._mutate(target, root, f"{kind} through self.{root}")

    def _collect_callback_refs(self, nodes: Iterable[ast.expr]) -> None:
        for arg in nodes:
            for sub in ast.walk(arg):
                attr = self._self_attr(sub)
                if attr is not None:
                    self.info.sched_refs.add(attr)
                elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    self.info.sched_names.add(sub.id)

    # -- visitors --------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # nested classes are out of scope

    def visit_Assign(self, node: ast.Assign) -> None:
        factory = None
        if isinstance(node.value, ast.Call):
            factory = _last_component(node.value.func, self.imports)
        for target in node.targets:
            attr = self._self_attr(target)
            if attr is not None and factory in _CELL_FACTORIES:
                self.info.cell_decls.add(attr)
            else:
                self._record_target(target, "=")
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            factory = None
            if isinstance(node.value, ast.Call):
                factory = _last_component(node.value.func, self.imports)
            attr = self._self_attr(node.target)
            if attr is not None and factory in _CELL_FACTORIES:
                self.info.cell_decls.add(attr)
            else:
                self._record_target(node.target, "=")
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, "+=")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            root = self._root_self_attr(target)
            if root is not None:
                self._mutate(target, root, f"del through self.{root}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            is_super_call = (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            )
            if (
                isinstance(func.value, ast.Name) and func.value.id == "self"
            ) or is_super_call:
                self.info.self_calls.add(func.attr)
            else:
                self.info.other_calls.add(func.attr)
                if func.attr in MUTATOR_CALLS:
                    root = self._root_self_attr(func.value)
                    if root is not None:
                        self._mutate(
                            node, root, f"self.{root}.{func.attr}(...)"
                        )
            if func.attr in SCHEDULING_CALLS:
                self._collect_callback_refs(
                    list(node.args) + [kw.value for kw in node.keywords]
                )
        elif isinstance(func, ast.Name):
            self.info.other_calls.add(func.id)
            if func.id in SCHEDULING_CALLS:
                self._collect_callback_refs(
                    list(node.args) + [kw.value for kw in node.keywords]
                )
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        # Handler-dispatch dicts: {PacketType.X: self._handle_x, ...}
        self._collect_callback_refs(v for v in node.values if v is not None)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if attr is not None and isinstance(node.ctx, ast.Load):
            self.info.self_refs.add(attr)
        parent = self._self_attr(node.value)
        if parent is not None:
            self.info.attr_pairs.add((parent, node.attr))
        self.generic_visit(node)


class CallGraph:
    """The indexed file set plus reachability/coverage computations."""

    def __init__(self) -> None:
        #: class name -> definitions carrying it (collisions merge family).
        self.classes: dict[str, list[ClassInfo]] = {}
        #: bare method/function name -> every definition.
        self.by_name: dict[str, list[MethodInfo]] = {}
        self.methods: list[MethodInfo] = []
        self.sources: dict[str, str] = {}
        self._ancestors: dict[str, set[str]] = {}
        self._descendants: dict[str, set[str]] = {}

    # -- indexing --------------------------------------------------------

    def index_source(self, source: str, filename: str) -> None:
        tree = ast.parse(source, filename=filename)
        imports = ImportMap(tree)
        self.sources[filename] = source
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_callable(node, filename, imports, cls=None)
            elif isinstance(node, ast.ClassDef):
                bases = tuple(
                    base
                    for base in (
                        _last_component(b, imports) for b in node.bases
                    )
                    if base is not None
                )
                info = ClassInfo(
                    name=node.name,
                    qualname=node.name,
                    file=filename,
                    line=node.lineno,
                    bases=bases,
                )
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = self._index_callable(
                            child, filename, imports, cls=info
                        )
                        info.methods[method.name] = method
                        info.own_cells |= method.cell_decls
                self.classes.setdefault(node.name, []).append(info)

    def _index_callable(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        filename: str,
        imports: ImportMap,
        cls: ClassInfo | None,
    ) -> MethodInfo:
        qualname = f"{cls.name}.{node.name}" if cls is not None else node.name
        info = MethodInfo(
            name=node.name,
            qualname=qualname,
            file=filename,
            line=node.lineno,
            cls=cls,
        )
        scanner = _MethodScanner(info, imports)
        for statement in node.body:
            scanner.visit(statement)
        self.methods.append(info)
        self.by_name.setdefault(node.name, []).append(info)
        return info

    def finish(self) -> None:
        """Compute the class hierarchy closures (call after indexing)."""
        parents: dict[str, set[str]] = {
            name: {base for info in infos for base in info.bases}
            for name, infos in self.classes.items()
        }
        for name in parents:
            seen: set[str] = set()
            stack = list(parents[name])
            while stack:
                base = stack.pop()
                if base in seen:
                    continue
                seen.add(base)
                stack.extend(parents.get(base, ()))
            self._ancestors[name] = seen
        self._descendants = {name: set() for name in parents}
        for name, ancestors in self._ancestors.items():
            for base in ancestors:
                if base in self._descendants:
                    self._descendants[base].add(name)
        # Property setters: `self.x = ...` where `x` is a family method
        # name runs that method (the setter), it does not rebind an
        # attribute — reroute the mutation into a call edge so coverage
        # flows through the setter's body.
        for method in self.methods:
            if method.cls is None or not method.mutations:
                continue
            kept = []
            for mutation in method.mutations:
                if self._family_methods(method.cls, mutation.attr):
                    method.self_calls.add(mutation.attr)
                else:
                    kept.append(mutation)
            method.mutations = kept

    # -- hierarchy queries -----------------------------------------------

    def ancestors(self, class_name: str) -> set[str]:
        return self._ancestors.get(class_name, set())

    def family_cells(self, cls: ClassInfo) -> set[str]:
        """Cell attributes declared by ``cls`` or any ancestor."""
        cells = set(cls.own_cells)
        for base in self.ancestors(cls.name):
            for info in self.classes.get(base, ()):
                cells |= info.own_cells
        return cells

    def _family_methods(self, cls: ClassInfo, name: str) -> list[MethodInfo]:
        related = {cls.name} | self.ancestors(cls.name) | self._descendants.get(
            cls.name, set()
        )
        return [
            method
            for class_name in sorted(related)
            for info in self.classes.get(class_name, ())
            for method in (info.methods.get(name),)
            if method is not None
        ]

    def _global_methods(self, name: str) -> list[MethodInfo]:
        candidates = self.by_name.get(name, [])
        if (
            len(candidates) > _GLOBAL_EDGE_FANOUT_CAP
            or name in MUTATOR_CALLS
            or (name.startswith("__") and name.endswith("__"))
        ):
            return []
        return candidates

    def edges_of(self, method: MethodInfo) -> list[MethodInfo]:
        """Call targets of ``method`` (family + capped global resolution)."""
        targets: dict[str, MethodInfo] = {}
        if method.cls is not None:
            for name in method.self_calls | method.self_refs:
                for target in self._family_methods(method.cls, name):
                    targets[target.key] = target
        for name in method.other_calls:
            for target in self._global_methods(name):
                targets[target.key] = target
        for name in method.sched_names:
            for target in self.by_name.get(name, []):
                if target.cls is None and target.file == method.file:
                    targets[target.key] = target
        return list(targets.values())

    # -- analyses --------------------------------------------------------

    def roots(self) -> list[MethodInfo]:
        """Schedule roots: registered callbacks + lifecycle methods."""
        found: dict[str, MethodInfo] = {}
        for method in self.methods:
            if method.cls is not None:
                for name in method.sched_refs:
                    for target in self._family_methods(method.cls, name):
                        found[target.key] = target
            for name in method.sched_names:
                for target in self.by_name.get(name, []):
                    if target.cls is None and target.file == method.file:
                        found[target.key] = target
        for infos in self.classes.values():
            for info in infos:
                lineage = {info.name} | self.ancestors(info.name)
                if "Component" not in lineage:
                    continue
                for name, method in info.methods.items():
                    if name in LIFECYCLE_ROOTS:
                        found[method.key] = method
        return list(found.values())

    def _propagate(self, seeds: Iterable[MethodInfo]) -> set[str]:
        reached: set[str] = set()
        stack = list(seeds)
        while stack:
            method = stack.pop()
            if method.key in reached:
                continue
            reached.add(method.key)
            if method.name in INIT_METHODS:
                continue  # construction-time: no propagation through it
            stack.extend(self.edges_of(method))
        return reached

    def reachable(self) -> set[str]:
        """Keys of every method reachable from a schedule root."""
        return self._propagate(self.roots())

    def covered(self) -> set[str]:
        """Keys of every method whose mutations a cell access covers.

        Coverage is *instance-scoped*: it propagates in both directions
        along family edges only (``self.m()`` / ``super().m()`` within
        the class hierarchy). When a method of the same instance whose
        call tree this method shares touches a declared cell, the events
        running them are observable to the dynamic sanitizer through that
        cell; a cell access on some *other* object does not vouch for
        this one's state. Construction-time methods never relay coverage.
        """
        seeds = []
        for method in self.methods:
            if method.cls is None:
                continue
            cells = self.family_cells(method.cls)
            if any(
                attr in cells and accessor in _CELL_ACCESSORS
                for attr, accessor in method.attr_pairs
            ):
                seeds.append(method)
        forward: dict[str, list[MethodInfo]] = {}
        backward: dict[str, list[MethodInfo]] = {}
        for method in self.methods:
            if method.cls is None:
                continue
            for name in method.self_calls | method.self_refs:
                for target in self._family_methods(method.cls, name):
                    forward.setdefault(method.key, []).append(target)
                    backward.setdefault(target.key, []).append(method)
        reached: set[str] = set()
        stack = list(seeds)
        while stack:
            method = stack.pop()
            if method.key in reached:
                continue
            reached.add(method.key)
            if method.name in INIT_METHODS:
                continue
            stack.extend(forward.get(method.key, ()))
            stack.extend(backward.get(method.key, ()))
        return reached


def build_callgraph(paths: Iterable[str | Path]) -> CallGraph:
    """Index every ``*.py`` under ``paths`` into one :class:`CallGraph`.

    Unparseable files are skipped (the per-file lint engine reports them
    as LINT000); everything else is indexed in sorted path order.
    """
    graph = CallGraph()
    files: set[Path] = set()
    for path in (Path(p) for p in paths):
        if path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            files.add(path)
    for file in sorted(files):
        try:
            graph.index_source(file.read_text(encoding="utf-8"), str(file))
        except SyntaxError:
            continue
    graph.finish()
    return graph
