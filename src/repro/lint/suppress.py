"""Suppression comments: ``# repro: lint-ok[RULE]``.

Two scopes:

* **line** — ``# repro: lint-ok[DET001]`` on (or trailing) a line silences
  the named rules for diagnostics anchored to that line. A bare
  ``# repro: lint-ok`` silences every rule on the line.
* **file** — ``# repro: lint-ok-file[DET005]`` anywhere in the file
  silences the named rules for the whole file (for modules whose entire
  purpose is exempt, e.g. the wall-clock runtime).

Rule lists are comma-separated. Suppressions are parsed with
:mod:`tokenize`, so the marker text inside string literals is inert.

The machinery is marker-generic: the schedule sanitizer reuses it with
``marker="san-ok"`` to read ``# repro: san-ok[SAN001]`` annotations on
tracked-state declarations (see :mod:`repro.runtime.state`).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppressions", "parse_suppressions"]

_MARKER_CACHE: dict[str, "re.Pattern[str]"] = {}


def _marker_re(marker: str) -> "re.Pattern[str]":
    pattern = _MARKER_CACHE.get(marker)
    if pattern is None:
        pattern = re.compile(
            rf"#\s*repro:\s*{re.escape(marker)}(?P<filewide>-file)?"
            r"(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
        )
        _MARKER_CACHE[marker] = pattern
    return pattern

#: Sentinel meaning "every rule".
ALL_RULES = "*"


@dataclass
class Suppressions:
    """Parsed suppression state for one source file."""

    #: line number -> set of rule ids (or ``{"*"}``) silenced on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids (or ``"*"``) silenced for the whole file.
    file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int | None) -> bool:
        if ALL_RULES in self.file_wide or rule in self.file_wide:
            return True
        if line is None:
            return False
        rules = self.by_line.get(line)
        return rules is not None and (ALL_RULES in rules or rule in rules)


def _rules_of(match: "re.Match[str]") -> set[str]:
    text = match.group("rules")
    if text is None:
        return {ALL_RULES}
    rules = {part.strip() for part in text.split(",") if part.strip()}
    return rules or {ALL_RULES}


def parse_suppressions(source: str, marker: str = "lint-ok") -> Suppressions:
    """Extract suppression markers from ``source``.

    ``marker`` selects the annotation family (``lint-ok`` by default;
    the sanitizer passes ``san-ok``). Unreadable sources (syntax errors
    mid-file) degrade gracefully: the tokens up to the error are honoured.
    """
    marker_re = _marker_re(marker)
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = marker_re.search(token.string)
            if match is None:
                continue
            rules = _rules_of(match)
            if match.group("filewide"):
                result.file_wide |= rules
            else:
                result.by_line.setdefault(token.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return result
