"""Interprocedural dataflow analysis: state soundness, payload schemas,
cost-model drift.

Three passes share the :class:`~repro.util.validate.Diagnostic` currency
of the per-file linter but reason across files / across the task graph:

**State-declaration soundness (SAN020/SAN021)** — walks the
:mod:`repro.lint.callgraph` to find instance-attribute mutations that are
reachable from scheduled handlers yet invisible to the dynamic schedule
sanitizer (no ``tracked_state`` cell covers them). SAN findings honor
``# repro: san-ok[...]`` suppressions *only* — a ``lint-ok`` marker on
the same line keeps suppressing AST-rule findings but never a SAN one
(and vice versa), so each tool's suppression budget stays auditable.

**Recipe payload dataflow (RCP200–RCP212)** — abstract-interprets a
recipe's task graph over per-stream payload *schemas* (which datum /
attribute keys a record on the stream may carry). Sensor tasks seed the
lattice from their device's ``channel_keys()``; every operator transforms
it through its class's ``payload_effect()``. On top of the schemas an
at-least-once *taint* tracks where QoS 1 redelivery can duplicate
records, which is what makes RCP210 (duplicates into a non-idempotent
stateful operator) checkable statically.

**Cost-model drift (RCP230/RCP231)** — replays the per-operation busy
accounting a benchmark baseline recorded against the *current* calibrated
cost model. The simulator charges CPU from that model, so at head the two
agree to within the approximation of assumed record bytes and warm-up
amortization; an edit to the calibration numbers (or the execute-path
accounting) without regenerating baselines trips the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from repro.core.recipe import Recipe
from repro.lint.callgraph import INIT_METHODS, build_callgraph
from repro.lint.engine import LintRun
from repro.lint.rates import DEFAULT_RECORD_BYTES, default_cost_model
from repro.lint.suppress import parse_suppressions
from repro.runtime.costs import CostModel
from repro.san.rules import SAN_RULES
from repro.util.validate import Diagnostic, Severity

__all__ = [
    "DATAFLOW_RULES",
    "StreamSchema",
    "analyze_state_soundness",
    "check_recipe_payloads",
    "check_cost_drift",
    "propagate_schemas",
]


@dataclass(frozen=True)
class DataflowRule:
    rule_id: str
    severity: Severity
    description: str


#: The recipe-payload / drift rule catalog (RCP2xx), for ``--catalog``
#: and the docs. SAN020/SAN021 live in :data:`repro.san.rules.SAN_RULES`.
DATAFLOW_RULES: dict[str, DataflowRule] = {
    rule.rule_id: rule
    for rule in (
        DataflowRule(
            "RCP200",
            Severity.ERROR,
            "task reads a payload key no upstream producer can supply",
        ),
        DataflowRule(
            "RCP201",
            Severity.INFO,
            "merge/window key collision: several inputs carry the same key "
            "(documented latest-wins resolution applies)",
        ),
        DataflowRule(
            "RCP202",
            Severity.WARNING,
            "rename target overwrites a key the input already carries",
        ),
        DataflowRule(
            "RCP210",
            Severity.ERROR,
            "at-least-once (QoS 1) delivery feeds a non-idempotent stateful "
            "operator with no dedup on the path",
        ),
        DataflowRule(
            "RCP211",
            Severity.INFO,
            "inert dedup: no at-least-once hop upstream can duplicate "
            "records",
        ),
        DataflowRule(
            "RCP212",
            Severity.WARNING,
            "dedup downstream of a merging operator: merged emissions share "
            "the oldest contributor's sample_id, so dedup drops legitimate "
            "records",
        ),
        DataflowRule(
            "RCP230",
            Severity.ERROR,
            "cost-model drift: a baseline-recorded per-op busy mean departs "
            "from the current calibrated cost model beyond tolerance",
        ),
        DataflowRule(
            "RCP231",
            Severity.WARNING,
            "baseline charges a CPU op the current cost model does not "
            "define",
        ),
    )
}


# ---------------------------------------------------------------------------
# Pass 1: state-declaration soundness (SAN020 / SAN021)
# ---------------------------------------------------------------------------


def analyze_state_soundness(paths: Iterable[str]) -> LintRun:
    """Report schedule-reachable mutations the sanitizer cannot see.

    Suppression routing is by rule family: SAN findings consult the
    ``# repro: san-ok[...]`` marker only, never ``lint-ok``.
    """
    graph = build_callgraph(paths)
    run = LintRun(files_checked=len(graph.sources))
    reachable = graph.reachable()
    covered = graph.covered()
    suppressions = {
        filename: parse_suppressions(source, marker="san-ok")
        for filename, source in graph.sources.items()
    }
    for method in graph.methods:
        if method.cls is None or method.name in INIT_METHODS:
            continue
        if method.key not in reachable:
            continue
        cells = graph.family_cells(method.cls)
        if cells:
            # A declared cell can cover the mutation — skip methods whose
            # instance-scoped call component touches one.
            if method.key in covered:
                continue
            rule = SAN_RULES["SAN021"]
        else:
            # No cell exists, so nothing can cover the mutation. Scope to
            # the component tree: plain helper/value classes (stats
            # accumulators, metric counters, the kernel's own internals)
            # sit beneath the sanitizer's abstraction — their state is
            # attributable to the component driving them.
            lineage = {method.cls.name} | graph.ancestors(method.cls.name)
            if "Component" not in lineage:
                continue
            rule = SAN_RULES["SAN020"]
        for mutation in method.mutations:
            if mutation.attr in cells:
                # Mutating the cell attribute itself (e.g. rebinding) is
                # the declaration's business, not undeclared state.
                continue
            diag = Diagnostic(
                rule=rule.rule_id,
                severity=rule.severity,
                message=(
                    f"{method.qualname} is schedule-reachable but mutates "
                    f"untracked state: {mutation.desc}"
                ),
                file=method.file,
                line=mutation.line,
                col=mutation.col,
                hint=rule.hint,
            )
            if suppressions[method.file].is_suppressed(diag.rule, diag.line):
                run.suppressed += 1
            else:
                run.diagnostics.append(diag)
    return run.finish()


# ---------------------------------------------------------------------------
# Pass 2: recipe payload dataflow (RCP200 – RCP212)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamSchema:
    """What a record on one stream may carry.

    ``datum`` / ``attrs`` are the known *may-produce* key sets; an open
    flag means unknown extra keys are possible (an opaque operator or an
    external input), in which case absence proves nothing.
    ``tainted`` means an at-least-once hop upstream may have duplicated
    the record (cleared by ``dedup``). ``dedup_guard`` marks a flow that
    passed through a sample-id dedup: the guard is durable — duplication
    on hops *after* the dedup is out of RCP210's scope, because sample-id
    dedup collapses any upstream duplication and last-hop redelivery is
    bounded by the client's in-flight window and surfaced by the
    runtime's QoS accounting instead.
    """

    datum: frozenset[str] = frozenset()
    attrs: frozenset[str] = frozenset()
    open_datum: bool = False
    open_attrs: bool = False
    tainted: bool = False
    dedup_guard: bool = False


_OPEN = StreamSchema(open_datum=True, open_attrs=True)

#: Stateful operators whose state a duplicated record corrupts (a dup
#: re-trains the model / re-enters the statistic). ``window`` in align
#: mode is exempt: a duplicate overwrites the same per-source slot.
_NON_IDEMPOTENT = {"train", "stat", "ewma", "window"}


def _operator_effect(operator: str, params: dict[str, Any]):
    """The operator class's PayloadEffect, or ``None`` for unknown/opaque."""
    import repro.core.analysis  # noqa: F401  - populates the registry
    import repro.core.integration  # noqa: F401
    from repro.core.operators import _REGISTRY

    factory = _REGISTRY.get(operator)
    effect_fn = getattr(factory, "payload_effect", None)
    if effect_fn is None:
        return None
    try:
        return effect_fn(dict(params))
    except Exception:
        return None  # an effect that cannot be computed is opaque


def _task_qos(task) -> int:
    try:
        return int(task.params.get("qos", 0))
    except (TypeError, ValueError):
        return 0


@dataclass(frozen=True)
class _TaskStep:
    """One task's view during the lattice walk."""

    task: Any
    inputs: list[StreamSchema]
    merged: StreamSchema
    effect: Any
    out: StreamSchema


def _walk_schemas(
    recipe: Recipe, device_keys: Mapping[str, Iterable[str]] | None
):
    """Single source of truth for the lattice walk (topological order)."""
    known_devices = {k: frozenset(v) for k, v in (device_keys or {}).items()}
    schemas: dict[str, StreamSchema] = {}
    for task_id in recipe.topological_order:
        task = recipe.tasks[task_id]
        qos = _task_qos(task)
        inputs = [
            schemas.get(stream, _OPEN) if ":" not in stream
            else replace(_OPEN, tainted=qos >= 1)
            for stream in task.inputs
        ]
        merged = _merge_schemas(inputs)
        for stream in task.inputs:
            if ":" in stream:
                continue
            if schemas.get(stream, _OPEN).dedup_guard:
                continue
            producer = recipe.tasks[recipe.producer_of(stream)]
            if min(_task_qos(producer), qos) >= 1:
                merged = replace(merged, tainted=True)
        effect = _operator_effect(task.operator, task.params)
        if task.operator == "sensor":
            device = str(task.params.get("device", ""))
            keys = known_devices.get(device)
            out = (
                StreamSchema(datum=keys)
                if keys is not None
                else replace(_OPEN, tainted=False)
            )
        elif effect is None or effect.opaque:
            out = replace(_OPEN, tainted=merged.tainted, dedup_guard=merged.dedup_guard)
        else:
            out = _apply_effect(merged, effect)
        if effect is not None and effect.dedups:
            out = replace(out, tainted=False, dedup_guard=True)
        for stream in task.outputs:
            schemas[stream] = out
        yield _TaskStep(
            task=task, inputs=inputs, merged=merged, effect=effect, out=out
        ), schemas


def propagate_schemas(
    recipe: Recipe, device_keys: Mapping[str, Iterable[str]] | None = None
) -> dict[str, StreamSchema]:
    """Abstract-interpret the task graph; returns schema per stream.

    ``device_keys`` maps sensor device names to their channel keys (see
    e.g. :func:`repro.bench.scenarios.fig5_device_keys`); sensors whose
    device is absent from the map seed an open schema.
    """
    schemas: dict[str, StreamSchema] = {}
    for _step, schemas in _walk_schemas(recipe, device_keys):
        pass
    return dict(schemas)


def _merge_schemas(inputs: list[StreamSchema]) -> StreamSchema:
    if not inputs:
        return StreamSchema()
    datum: set[str] = set()
    attrs: set[str] = set()
    open_datum = open_attrs = tainted = False
    guarded = True
    for schema in inputs:
        datum |= schema.datum
        attrs |= schema.attrs
        open_datum |= schema.open_datum
        open_attrs |= schema.open_attrs
        tainted |= schema.tainted
        guarded &= schema.dedup_guard
    return StreamSchema(
        datum=frozenset(datum),
        attrs=frozenset(attrs),
        open_datum=open_datum,
        open_attrs=open_attrs,
        tainted=tainted,
        dedup_guard=guarded,
    )


def _apply_effect(merged: StreamSchema, effect) -> StreamSchema:
    datum = set(merged.datum)
    attrs = set(merged.attrs)
    open_datum = merged.open_datum
    if effect.select is not None:
        datum = set(effect.select)
        open_datum = False
    for old, new in effect.renames:
        datum.discard(old)
        datum.add(new)
    datum |= set(effect.adds)
    attrs |= set(effect.adds_attrs)
    return StreamSchema(
        datum=frozenset(datum),
        attrs=frozenset(attrs),
        open_datum=open_datum,
        open_attrs=merged.open_attrs,
        tainted=merged.tainted,
        dedup_guard=merged.dedup_guard,
    )


def check_recipe_payloads(
    recipe: Recipe, device_keys: Mapping[str, Iterable[str]] | None = None
) -> list[Diagnostic]:
    """RCP200–RCP212: payload-key and at-least-once semantics checks."""
    diagnostics: list[Diagnostic] = []
    for step, _schemas in _walk_schemas(recipe, device_keys):
        task, merged, effect = step.task, step.merged, step.effect
        where = f"{recipe.name}:task {task.task_id}"
        if effect is not None:
            diagnostics += _check_reads(where, task, merged, effect)
            diagnostics += _check_renames(where, merged, effect)
            if effect.merges_inputs and len(task.inputs) > 1:
                diagnostics += _check_collisions(where, task, step.inputs)
            if effect.dedups:
                diagnostics += _check_dedup(where, task, recipe, merged)
        if (
            task.operator in _NON_IDEMPOTENT
            and merged.tainted
            and not (
                task.operator == "window"
                and str(task.params.get("mode", "align")) == "align"
            )
        ):
            rule = DATAFLOW_RULES["RCP210"]
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"QoS 1 at-least-once delivery reaches non-idempotent "
                        f"stateful operator {task.operator!r} with no dedup "
                        "on the path — a redelivered record re-enters its "
                        "state"
                    ),
                    where=where,
                    hint=(
                        "insert a dedup task upstream (the failover recipe "
                        "does exactly this), or drop to QoS 0 if loss is "
                        "acceptable"
                    ),
                )
            )
    return diagnostics


def _check_reads(
    where: str, task, merged: StreamSchema, effect
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    def missing_datum(key: str) -> bool:
        return key not in merged.datum and not merged.open_datum

    def missing_attr(key: str) -> bool:
        return key not in merged.attrs and not merged.open_attrs

    rule = DATAFLOW_RULES["RCP200"]
    for key in effect.reads:
        if missing_datum(key):
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"{task.operator!r} reads datum key {key!r} which no "
                        f"upstream producer supplies (available: "
                        f"{sorted(merged.datum)})"
                    ),
                    where=where,
                    hint="fix the key name or the upstream pipeline",
                )
            )
    for key in effect.reads_attrs:
        if missing_attr(key):
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"{task.operator!r} reads attribute {key!r} which no "
                        f"upstream producer supplies (available: "
                        f"{sorted(merged.attrs)})"
                    ),
                    where=where,
                    hint="fix the key name or the upstream pipeline",
                )
            )
    for key in effect.reads_any:
        if missing_attr(key) and missing_datum(key):
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"{task.operator!r} reads key {key!r} which appears "
                        "in neither upstream datum keys "
                        f"{sorted(merged.datum)} nor attributes "
                        f"{sorted(merged.attrs)}"
                    ),
                    where=where,
                    hint="fix the key name or the upstream pipeline",
                )
            )
    return diagnostics


def _check_renames(where: str, merged: StreamSchema, effect) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    rule = DATAFLOW_RULES["RCP202"]
    renamed_away = {old for old, _new in effect.renames}
    for old, new in effect.renames:
        if new in merged.datum and new not in renamed_away:
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"rename {old!r} -> {new!r} overwrites key {new!r} "
                        "the input already carries"
                    ),
                    where=where,
                    hint="pick a fresh target key or drop the original first",
                )
            )
    return diagnostics


def _check_collisions(
    where: str, task, inputs: list[StreamSchema]
) -> list[Diagnostic]:
    datum_owners: dict[str, list[str]] = {}
    attr_owners: dict[str, list[str]] = {}
    for stream, schema in zip(task.inputs, inputs):
        for key in schema.datum:
            datum_owners.setdefault(key, []).append(stream)
        for key in schema.attrs:
            attr_owners.setdefault(key, []).append(stream)
    collisions = sorted(
        key for key, owners in datum_owners.items() if len(set(owners)) > 1
    )
    attr_collisions = sorted(
        key for key, owners in attr_owners.items() if len(set(owners)) > 1
    )
    if not collisions and not attr_collisions:
        return []
    parts = []
    if collisions:
        parts.append(f"datum keys {collisions}")
    if attr_collisions:
        parts.append(f"attributes {attr_collisions}")
    rule = DATAFLOW_RULES["RCP201"]
    return [
        Diagnostic(
            rule=rule.rule_id,
            severity=rule.severity,
            message=(
                f"{task.operator!r} combines inputs that each carry "
                + " and ".join(parts)
                + " — later input wins (documented merge semantics)"
            ),
            where=where,
            hint="rename upstream keys if both values must survive",
        )
    ]


def _check_dedup(
    where: str, task, recipe: Recipe, merged: StreamSchema
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    if not merged.tainted:
        rule = DATAFLOW_RULES["RCP211"]
        diagnostics.append(
            Diagnostic(
                rule=rule.rule_id,
                severity=rule.severity,
                message=(
                    "dedup has no at-least-once hop upstream: nothing can "
                    "duplicate records here"
                ),
                where=where,
                hint="drop the task or raise the upstream qos to 1",
            )
        )
    for stream in task.inputs:
        if ":" in stream:
            continue
        producer = recipe.tasks[recipe.producer_of(stream)]
        effect = _operator_effect(producer.operator, producer.params)
        if effect is not None and effect.merges_inputs:
            rule = DATAFLOW_RULES["RCP212"]
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"dedup consumes {stream!r} from merging operator "
                        f"{producer.operator!r} ({producer.task_id}): merged "
                        "records keep the oldest contributor's sample_id, so "
                        "successive emissions collide and get dropped"
                    ),
                    where=where,
                    hint="dedup before the merge, not after it",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Pass 3: cost-model drift gate (RCP230 / RCP231)
# ---------------------------------------------------------------------------

#: Relative drift between a baseline's observed per-op busy mean and the
#: current model's prediction before RCP230 fires. The slack absorbs the
#: two knowingly-approximate terms: per-byte costs are predicted at
#: DEFAULT_RECORD_BYTES (actual payloads vary) and warm-up surcharges are
#: amortized over the recorded invocation count.
DRIFT_TOLERANCE = 0.25

#: Ops invoked fewer times than this in the baseline are skipped — their
#: mean is dominated by warm-up and startup noise.
DRIFT_MIN_COUNT = 20


def check_cost_drift(
    record: Any,
    cost_model: CostModel | None = None,
    tolerance: float = DRIFT_TOLERANCE,
    min_count: int = DRIFT_MIN_COUNT,
    record_bytes: int = DEFAULT_RECORD_BYTES,
) -> list[Diagnostic]:
    """RCP230/RCP231: compare a baseline's ``op_busy`` to the cost model.

    ``record`` is a :class:`repro.bench.continuous.BenchRecord` (or its
    dict form) whose ``sim`` carries ``op_busy``:
    ``{op: {"busy_s": float, "count": int}}``.
    """
    model = cost_model if cost_model is not None else default_cost_model()
    sim = record.sim if hasattr(record, "sim") else dict(record).get("sim", {})
    name = getattr(record, "name", None) or dict(record).get("name", "<bench>")
    op_busy = sim.get("op_busy")
    if not op_busy:
        return [
            Diagnostic(
                rule="RCP231",
                severity=Severity.WARNING,
                message=(
                    "baseline records no per-op busy accounting (op_busy) — "
                    "the drift gate cannot run; regenerate the baseline"
                ),
                where=f"bench {name}",
                hint="repro bench --out benchmarks/baselines",
            )
        ]
    diagnostics: list[Diagnostic] = []
    for op in sorted(op_busy):
        entry = op_busy[op]
        busy_s = float(entry["busy_s"])
        count = int(entry["count"])
        if count < min_count:
            continue
        where = f"bench {name}: op {op}"
        spec = model.ops.get(op)
        if spec is None:
            rule = DATAFLOW_RULES["RCP231"]
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"baseline charges {count} invocations of {op!r} but "
                        "the current cost model does not define it"
                    ),
                    where=where,
                    hint="add the op to the calibrated model",
                )
            )
            continue
        observed_mean = busy_s / count
        # Predicted mean over `count` invocations: steady-state cost at the
        # assumed record size plus the warm-up surcharge amortized over the
        # run (the baseline's busy total includes the warm-up invocations).
        steady = spec.cost(record_bytes, invocation_index=spec.warmup_ops)
        warmup = spec.warmup_extra_s * min(spec.warmup_ops, count) / count
        predicted_mean = (steady + warmup) * model.scale
        if predicted_mean <= 0.0:
            continue
        drift = observed_mean / predicted_mean - 1.0
        if abs(drift) > tolerance:
            rule = DATAFLOW_RULES["RCP230"]
            diagnostics.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"cost-model drift {drift:+.0%}: baseline mean "
                        f"{observed_mean * 1e3:.3f} ms/op vs current model "
                        f"{predicted_mean * 1e3:.3f} ms/op "
                        f"(tolerance ±{tolerance:.0%}, {count} invocations)"
                    ),
                    where=where,
                    hint=(
                        "if the calibration change is intentional, "
                        "regenerate baselines with "
                        "'repro bench --out benchmarks/baselines' and "
                        "revisit RCP110/RCP111 feasibility thresholds"
                    ),
                )
            )
    return diagnostics
