"""Static end-to-end latency bounds: network-calculus abstract interpretation.

The fourth lint engine (``repro lint --deadline``). It answers, before a
single record flows, the question the paper's title poses: *will this
recipe process flows in real time?* RCP111 checks aggregate utilization;
this engine computes an actual worst-case **end-to-end latency bound**
per flow and a **backlog bound** per shared resource, then holds both
against deadlines declared on recipe sinks (``deadline_ms``) and — via
the soundness gate — against what the simulated system measurably did.

Curve model
-----------
Every flow is abstracted as a token-bucket *arrival curve*
``alpha(t) = b + r t`` (``b`` records of burst, ``r`` records/second from
:func:`repro.lint.rates.propagate_rates`); every shared resource as a
work-conserving unit-rate server. Three resource families exist:

* ``cpu:<module-or-task>`` — the hosting CPU; per-record work is the
  operator's steady-state service time from the calibrated
  :class:`~repro.runtime.costs.CostModel` (the same model the simulator
  charges), plus MQTT send/recv handling;
* ``cpu:broker`` — ``mqtt.route`` per publish and ``mqtt.forward`` per
  delivery;
* ``wlan`` — the shared 802.11 channel; per-frame work is the
  :meth:`~repro.net.wlan.WlanConfig.airtime` of a record-sized frame
  plus the full jitter allowance. QoS 1 streams have their network rate
  and burst multiplied by the retry amplification ``1/(1-p)`` for loss
  rate ``p`` (the chaos loss model).

Composition rule
----------------
Arrival curves are enforced at the *sources*: sensors are strictly
periodic, so every flow enters the network shaped to ``b + r t`` with a
declared burst. Under that shaping a work-conserving unit-rate server
with total utilization ``U < 1``, aggregate source work-burst
``B = sum_f b_f * w_f`` and largest single job ``L`` empties every busy
period within ``(L + B) / (1 - U)`` seconds, and no FIFO record waits
longer than the busy period that contains it — that quotient is the
per-visit delay bound. The ``1/(1-U)`` factor is also what absorbs
in-network burst inflation (bursts grown inside a busy period are, by
definition, served within it), which is why bursts propagate through
the graph only via *deterministic* hold terms: window fill/align waits
(a merged record's trace root is its *oldest* contributor, so the
observed end-to-end latency includes the full alignment round) and
throttle intervals. Cold-start warm-up surcharges (``warmup_extra_s``)
are added once per hop — they dominate the observed *max* at low rates.
A flow's end-to-end bound is the sum of its hop delays, holds and
warm-ups along the critical (max) path. The model deliberately trades
tightness for simplicity; the soundness gate below exists precisely to
catch it if it ever trades away correctness.

Soundness-gate contract
-----------------------
A static bound is a falsifiable claim about the measured system.
``repro lint --deadline --validate`` replays a committed BENCH baseline
(schema v3 ``sim.flows``) or an ``obs.span`` trace dump against the
bounds: an observed **max** above the bound means the model is wrong —
RCP243, an error, same spirit as the cost-drift gate (RCP230); a bound
more than ``LOOSENESS_FACTOR`` x the observed **p99** (after removing
one-off warm-up/disruption allowances) is RCP244, a looseness warning.

Rules: RCP240 bound exceeds declared deadline (error) · RCP241 unstable
hop, arrival >= service (error) · RCP242 deadline declared but bound not
derivable (warning) · RCP243 soundness violation (error) · RCP244 bound
loose vs observation (warning).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.recipe import Recipe, TaskSpec
from repro.lint.rates import (
    COST_OP_BY_OPERATOR,
    DEFAULT_RECORD_BYTES,
    default_cost_model,
    propagate_rates,
)
from repro.net.wlan import WlanConfig
from repro.runtime.costs import CostModel
from repro.util.validate import Diagnostic, Severity

__all__ = [
    "LATENCY_RULES",
    "LatencyRule",
    "LatencyContext",
    "ResourceBound",
    "FlowBound",
    "LatencyAnalysis",
    "analyze_latency",
    "check_deadlines",
    "check_bound_soundness",
    "flows_from_bench",
    "flows_from_trace",
]

_DEFAULT_COST_OP = "flow.process"

#: RCP244 threshold: steady-state bound more than this multiple of the
#: observed p99 is reported as loose.
LOOSENESS_FACTOR = 10.0


@dataclass(frozen=True)
class LatencyRule:
    rule_id: str
    severity: Severity
    description: str


#: The latency-bound rule catalog (RCP24x), for ``--catalog`` and SARIF.
LATENCY_RULES: dict[str, LatencyRule] = {
    rule.rule_id: rule
    for rule in (
        LatencyRule(
            "RCP240",
            Severity.ERROR,
            "computed worst-case latency bound exceeds the deadline "
            "declared on the recipe sink",
        ),
        LatencyRule(
            "RCP241",
            Severity.ERROR,
            "unstable hop: arrival work rate >= service rate at a shared "
            "resource, so backlog and latency are unbounded",
        ),
        LatencyRule(
            "RCP242",
            Severity.WARNING,
            "deadline declared but no latency bound is derivable "
            "(unknown input rate or missing cost-model entry)",
        ),
        LatencyRule(
            "RCP243",
            Severity.ERROR,
            "soundness violation: observed max latency in a committed "
            "trace/bench exceeds the static bound — the model is wrong",
        ),
        LatencyRule(
            "RCP244",
            Severity.WARNING,
            "loose bound: static bound exceeds 10x the observed p99 "
            "latency",
        ),
    )
}


@dataclass(frozen=True)
class LatencyContext:
    """Everything the abstract interpretation needs beyond the recipe.

    ``loss_rate`` overrides the WLAN config's i.i.d. loss for QoS 1 retry
    amplification (pass a Gilbert–Elliott stationary loss for chaos
    scenarios). ``disruption_allowance_s`` is a one-off additive term for
    scenarios that deliberately take infrastructure down mid-run (the
    chaos failover scenario adds its module-recovery bound here) — it is
    excluded from the steady-state bound RCP244 judges.
    """

    cost_model: CostModel | None = None
    wlan: WlanConfig | None = None
    record_bytes: int = DEFAULT_RECORD_BYTES
    loss_rate: float | None = None
    disruption_allowance_s: float = 0.0
    default_burst_records: float = 1.0


@dataclass(frozen=True)
class ResourceBound:
    """Load and bounds for one shared resource."""

    resource: str
    utilization: float  # work-seconds demanded per second
    backlog_s: float  # worst-case queued work (seconds); inf if unstable
    backlog_records: float  # worst-case queued records; inf if unstable
    delay_s: float  # per-visit delay bound T + B; inf if unstable

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0


@dataclass(frozen=True)
class FlowBound:
    """Worst-case end-to-end latency for records finishing at ``task_id``."""

    task_id: str
    bound_s: float  # inf when an upstream resource is unstable
    steady_bound_s: float  # bound minus one-off warm-up / disruption terms
    deadline_s: float | None
    derivable: bool
    reasons: tuple[str, ...] = ()  # why not derivable
    resources: tuple[str, ...] = ()  # shared resources traversed


@dataclass(frozen=True)
class LatencyAnalysis:
    """Result of :func:`analyze_latency`."""

    flows: dict[str, FlowBound]
    resources: dict[str, ResourceBound]

    def sinks(self) -> dict[str, FlowBound]:
        """Flows for graph sinks only (tasks whose output nothing consumes)."""
        return {
            task_id: bound
            for task_id, bound in self.flows.items()
            if bound.task_id in self._sink_ids
        }

    # populated by analyze_latency; dataclass field to stay frozen-friendly
    _sink_ids: frozenset[str] = field(default_factory=frozenset)


# ---------------------------------------------------------------------------
# The abstract interpretation
# ---------------------------------------------------------------------------


@dataclass
class _Visit:
    """One flow traversing one resource."""

    resource: str
    rate_hz: float
    burst_records: float
    work_s: float


class _VisitLog:
    """Per-iteration registry of resource visits."""

    def __init__(self) -> None:
        self.visits: dict[str, list[_Visit]] = {}

    def add(self, resource: str, rate_hz: float, burst: float, work_s: float) -> None:
        self.visits.setdefault(resource, []).append(
            _Visit(resource, rate_hz, burst, work_s)
        )

    def delay_table(self) -> dict[str, float]:
        """Per-resource visit delay bound (inf when unstable)."""
        return {
            resource: bound.delay_s
            for resource, bound in self.resource_bounds().items()
        }

    def resource_bounds(self) -> dict[str, ResourceBound]:
        bounds: dict[str, ResourceBound] = {}
        for resource in sorted(self.visits):
            visits = self.visits[resource]
            utilization = sum(v.rate_hz * v.work_s for v in visits)
            if utilization >= 1.0:
                bounds[resource] = ResourceBound(
                    resource, utilization, math.inf, math.inf, math.inf
                )
                continue
            blocking = max((v.work_s for v in visits), default=0.0)
            backlog = sum(v.burst_records * v.work_s for v in visits)
            bounds[resource] = ResourceBound(
                resource=resource,
                utilization=utilization,
                backlog_s=backlog,
                backlog_records=sum(v.burst_records for v in visits),
                # Busy-period length bound: source-shaped work drains
                # within (L + B) / (1 - U), and a FIFO record never waits
                # past the busy period it arrived into.
                delay_s=(blocking + backlog) / (1.0 - utilization),
            )
        return bounds


def _cpu_key(task: TaskSpec) -> str:
    """Shared-CPU identity: pinned tasks share their module's CPU."""
    return f"cpu:{task.pin_to}" if task.pin_to else f"cpu:task:{task.task_id}"


def _steady_cost(model: CostModel, op: str, record_bytes: int) -> float | None:
    """Steady-state per-record service time; None when the op is undefined."""
    entry = model.ops.get(op)
    if entry is None:
        return None
    return entry.cost(record_bytes, invocation_index=entry.warmup_ops) * model.scale


def _warmup_cost(model: CostModel, op: str) -> float:
    entry = model.ops.get(op)
    if entry is None or entry.warmup_ops <= 0:
        return 0.0
    return entry.warmup_extra_s * model.scale


def _hold_time(task: TaskSpec, ingest_hz: float, emit_hz: float) -> float:
    """Fixed time a record can sit inside the operator before emission."""
    params = task.params
    if task.operator == "window":
        mode = str(params.get("mode", "align"))
        if mode == "align":
            # A round completes when the slowest source reports; the
            # round's oldest contributor (the trace root) waits one full
            # period of that source.
            return 1.0 / emit_hz if emit_hz > 0 else 0.0
        if mode == "count":
            count = max(1, int(params.get("count", 1)))
            return count / ingest_hz if ingest_hz > 0 else 0.0
        return float(params.get("interval_s", 0.0))
    if task.operator == "throttle":
        return float(params.get("interval_s", 0.0))
    return 0.0


@dataclass
class _StreamState:
    """Arrival-curve state of a stream at the broker (post-route)."""

    rate_hz: float
    burst_records: float
    latency_s: float  # bound from sensing to broker hand-off
    fixed_s: float  # one-off terms (warm-up) accumulated so far
    amplification: float  # QoS 1 network retry multiplier
    derivable: bool
    reasons: tuple[str, ...]
    resources: tuple[str, ...]


def analyze_latency(
    recipe: Recipe, context: LatencyContext | None = None
) -> LatencyAnalysis:
    """Compute per-flow latency bounds and per-resource backlog bounds."""
    ctx = context or LatencyContext()
    model = ctx.cost_model if ctx.cost_model is not None else default_cost_model()
    wlan = ctx.wlan if ctx.wlan is not None else WlanConfig()
    loss = ctx.loss_rate if ctx.loss_rate is not None else wlan.loss_rate
    rates = propagate_rates(recipe)
    frame_work = wlan.airtime(ctx.record_bytes) + wlan.jitter_s

    def _network_works() -> dict[str, float | None]:
        return {
            op: _steady_cost(model, op, ctx.record_bytes)
            for op in ("mqtt.send", "mqtt.recv", "mqtt.route", "mqtt.forward")
        }

    net = _network_works()

    # Pass 1: bursts depend only on source declarations and deterministic
    # hold terms, never on queueing delays — so one topological walk with
    # a zero delay table already yields the final visit registry.
    log = _VisitLog()
    _walk(recipe, rates, model, ctx, loss, frame_work, net, {}, log)
    delay_table = log.delay_table()
    # Pass 2: accumulate per-flow latency against the final delay table.
    log = _VisitLog()
    flows = _walk(recipe, rates, model, ctx, loss, frame_work, net, delay_table, log)

    sink_ids = frozenset(
        task_id
        for task_id, task in recipe.tasks.items()
        if not task.outputs
        or all(not recipe.consumers_of(stream) for stream in task.outputs)
    )
    return LatencyAnalysis(
        flows=flows,
        resources=log.resource_bounds(),
        _sink_ids=sink_ids,
    )


def _walk(
    recipe: Recipe,
    rates: Mapping[str, Any],
    model: CostModel,
    ctx: LatencyContext,
    loss: float,
    frame_work: float,
    net: Mapping[str, float | None],
    delay_table: Mapping[str, float],
    log: _VisitLog,
) -> dict[str, FlowBound]:
    """One topological pass, computing bounds against ``delay_table``."""

    def hop(resource: str, rate_hz: float, burst: float, work_s: float | None) -> float:
        """Register a visit; return the delay bound for this hop."""
        if work_s is None or work_s <= 0.0:
            return 0.0
        log.add(resource, rate_hz, burst, work_s)
        return delay_table.get(resource, 0.0)

    streams: dict[str, _StreamState] = {}
    flows: dict[str, FlowBound] = {}

    for task_id in recipe.topological_order:
        task = recipe.tasks[task_id]
        cpu = _cpu_key(task)
        ingest_hz = rates[task_id].ingest_hz
        emit_hz = rates[task_id].emit_hz
        derivable = True
        reasons: list[str] = []
        resources: list[str] = [cpu]

        if task.operator == "sensor" or not task.inputs:
            burst_raw = task.params.get("burst", ctx.default_burst_records)
            burst_in = max(1.0, float(burst_raw))
            latency_in = 0.0
            fixed_in = 0.0
            demand_hz = emit_hz
        else:
            latency_in = 0.0
            fixed_in = 0.0
            burst_in = 0.0
            demand_hz = ingest_hz
            for stream in task.inputs:
                if ":" in stream:
                    derivable = False
                    reasons.append(
                        f"external input {stream!r} has no statically known "
                        "rate or burst"
                    )
                    continue
                state = streams.get(stream)
                if state is None:  # producer emits nothing (rate 0 path)
                    derivable = False
                    reasons.append(f"input stream {stream!r} carries no flow")
                    continue
                if not state.derivable:
                    derivable = False
                    reasons.extend(state.reasons)
                # Delivery: broker forward, downlink frame, receiver recv.
                d_forward = hop(
                    "cpu:broker",
                    state.rate_hz * state.amplification,
                    state.burst_records * state.amplification,
                    net["mqtt.forward"],
                )
                d_down = hop(
                    "wlan",
                    state.rate_hz * state.amplification,
                    state.burst_records * state.amplification,
                    frame_work,
                )
                d_recv = hop(
                    cpu, state.rate_hz, state.burst_records, net["mqtt.recv"]
                )
                if net["mqtt.forward"] is None or net["mqtt.recv"] is None:
                    derivable = False
                    reasons.append("cost model lacks MQTT handling entries")
                edge = d_forward + d_down + d_recv
                latency_in = max(latency_in, state.latency_s + edge)
                fixed_in = max(fixed_in, state.fixed_s)
                burst_in += state.burst_records
                resources.extend(state.resources)
                resources.extend(["cpu:broker", "wlan"])

        # The operator itself.
        op = COST_OP_BY_OPERATOR.get(task.operator, _DEFAULT_COST_OP)
        service_s = _steady_cost(model, op, ctx.record_bytes)
        if service_s is None:
            derivable = False
            reasons.append(f"cost model does not define op {op!r}")
        hold = _hold_time(task, ingest_hz, emit_hz)
        shard_hz = demand_hz / max(1, task.parallelism)
        d_op = hop(cpu, shard_hz, burst_in, service_s)
        warmup = _warmup_cost(model, op)
        latency = latency_in + hold + d_op + warmup
        fixed = fixed_in + warmup
        # Deterministic hold terms release accumulated records at once
        # (a window flush); queueing-induced inflation is absorbed by the
        # busy-period delay form, not the burst state.
        burst_out = burst_in + demand_hz * hold

        flows[task_id] = FlowBound(
            task_id=task_id,
            bound_s=latency + ctx.disruption_allowance_s,
            steady_bound_s=latency - fixed,
            deadline_s=(
                task.deadline_ms / 1000.0 if task.deadline_ms is not None else None
            ),
            derivable=derivable,
            reasons=tuple(dict.fromkeys(reasons)),
            resources=tuple(dict.fromkeys(resources)),
        )

        # Publication: sender-side MQTT, uplink frame, broker route —
        # charged once per emitted record regardless of consumer count.
        if task.outputs and emit_hz > 0:
            qos = int(task.params.get("qos", 0))
            amp = 1.0
            if qos >= 1 and 0.0 < loss < 1.0:
                amp = 1.0 / (1.0 - loss)
            elif qos >= 1 and loss >= 1.0:
                amp = math.inf
            for stream in task.outputs:
                d_send = hop(cpu, emit_hz, burst_out, net["mqtt.send"])
                d_up = hop("wlan", emit_hz * amp, burst_out * amp, frame_work)
                d_route = hop(
                    "cpu:broker", emit_hz * amp, burst_out * amp, net["mqtt.route"]
                )
                stream_derivable = derivable and not math.isinf(amp)
                stream_reasons = list(flows[task_id].reasons)
                if math.isinf(amp):
                    stream_reasons.append(
                        f"loss rate {loss:g} starves QoS 1 stream {stream!r}"
                    )
                if net["mqtt.send"] is None or net["mqtt.route"] is None:
                    stream_derivable = False
                    stream_reasons.append("cost model lacks MQTT handling entries")
                publish = d_send + d_up + d_route
                streams[stream] = _StreamState(
                    rate_hz=emit_hz,
                    burst_records=burst_out,
                    latency_s=latency + publish,
                    fixed_s=fixed,
                    amplification=amp,
                    derivable=stream_derivable,
                    reasons=tuple(dict.fromkeys(stream_reasons)),
                    resources=tuple(
                        dict.fromkeys(list(flows[task_id].resources) + ["wlan", "cpu:broker"])
                    ),
                )

    # Unstable resources poison every flow that traverses them.
    unstable = {
        resource
        for resource, delay in delay_table.items()
        if math.isinf(delay)
    }
    if unstable:
        for task_id, bound in flows.items():
            if unstable.intersection(bound.resources):
                flows[task_id] = FlowBound(
                    task_id=bound.task_id,
                    bound_s=math.inf,
                    steady_bound_s=math.inf,
                    deadline_s=bound.deadline_s,
                    derivable=bound.derivable,
                    reasons=bound.reasons,
                    resources=bound.resources,
                )
    return flows


# ---------------------------------------------------------------------------
# Rules: RCP240 / RCP241 / RCP242
# ---------------------------------------------------------------------------


def _diag(rule: str, where: str, message: str, hint: str = "") -> Diagnostic:
    return Diagnostic(
        rule=rule,
        severity=LATENCY_RULES[rule].severity,
        message=message,
        where=where,
        hint=hint,
    )


def check_deadlines(
    recipe: Recipe,
    context: LatencyContext | None = None,
    analysis: LatencyAnalysis | None = None,
) -> list[Diagnostic]:
    """RCP240/RCP241/RCP242 over a recipe's computed bounds."""
    result = analysis if analysis is not None else analyze_latency(recipe, context)
    diagnostics: list[Diagnostic] = []
    for resource in sorted(result.resources):
        load = result.resources[resource]
        if not load.stable:
            diagnostics.append(
                _diag(
                    "RCP241",
                    f"{recipe.name}:resource {resource}",
                    f"unstable hop: arrival demands {load.utilization:.2f} "
                    "work-seconds per second of a unit-rate resource — "
                    "backlog grows without bound",
                    hint="lower sensing rates, widen windows, shard the "
                    "stage, or move tasks off the shared resource",
                )
            )
    for task_id in sorted(result.flows):
        flow = result.flows[task_id]
        if flow.deadline_s is None:
            continue
        where = f"{recipe.name}:task {task_id}"
        if not flow.derivable:
            detail = "; ".join(flow.reasons) or "insufficient model inputs"
            diagnostics.append(
                _diag(
                    "RCP242",
                    where,
                    f"deadline {flow.deadline_s * 1000:g} ms declared but no "
                    f"bound is derivable: {detail}",
                    hint="declare sensor rate_hz/burst and calibrate every "
                    "op on the path",
                )
            )
            continue
        if math.isinf(flow.bound_s):
            continue  # RCP241 already reported the unstable resource
        if flow.bound_s * 1000.0 > flow.deadline_s * 1000.0:
            diagnostics.append(
                _diag(
                    "RCP240",
                    where,
                    f"worst-case latency bound {flow.bound_s * 1000:.1f} ms "
                    f"exceeds the declared deadline "
                    f"{flow.deadline_s * 1000:g} ms",
                    hint="raise the deadline, lower rates, or shorten the "
                    "flow's path",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Soundness gate: RCP243 / RCP244
# ---------------------------------------------------------------------------


def flows_from_bench(record: Any) -> dict[str, dict[str, float]]:
    """Per-flow latency summaries from a BENCH record (schema v3 ``sim.flows``)."""
    sim = record.sim if hasattr(record, "sim") else dict(record).get("sim", {})
    flows = sim.get("flows") or {}
    return {str(stage): dict(summary) for stage, summary in flows.items()}


def flows_from_trace(path: Any) -> dict[str, dict[str, float]]:
    """Per-flow latency summaries from an ``obs.span`` JSONL trace dump."""
    from repro.obs.breakdown import breakdown_from_jsonl, flow_latency_summary

    return flow_latency_summary(breakdown_from_jsonl(path))


def check_bound_soundness(
    recipe: Recipe,
    observed_flows: Mapping[str, Mapping[str, float]],
    context: LatencyContext | None = None,
    analysis: LatencyAnalysis | None = None,
    looseness_factor: float = LOOSENESS_FACTOR,
    source: str = "<observed>",
) -> list[Diagnostic]:
    """RCP243/RCP244: hold static bounds against measured flow latencies.

    ``observed_flows`` maps flow keys (recipe task ids, as produced by
    :func:`repro.obs.breakdown.flow_latency_summary`) to summaries with
    ``max_ms`` / ``p99_ms``. Flows with no matching task are ignored —
    a trace may carry control-plane spans the recipe does not model.

    Only **sink** flows are validated. The static model claims bounds at
    flow endpoints; intermediate leaf spans in a trace include records
    that died mid-flow (dropped, shed, or merged away) under the deployed
    placement, whose queueing the recipe-level per-task model does not
    claim to bound.
    """
    result = analysis if analysis is not None else analyze_latency(recipe, context)
    sinks = result.sinks()
    diagnostics: list[Diagnostic] = []
    for stage in sorted(observed_flows):
        flow = sinks.get(stage)
        if flow is None or not flow.derivable:
            continue
        summary = observed_flows[stage]
        observed_max = float(summary.get("max_ms", 0.0))
        observed_p99 = float(summary.get("p99_ms", 0.0))
        where = f"{recipe.name}:task {stage} ({source})"
        if math.isinf(flow.bound_s):
            continue  # unstable hops are RCP241's finding
        bound_ms = flow.bound_s * 1000.0
        if observed_max > bound_ms:
            diagnostics.append(
                _diag(
                    "RCP243",
                    where,
                    f"soundness violation: observed max latency "
                    f"{observed_max:.1f} ms exceeds the static bound "
                    f"{bound_ms:.1f} ms — the latency model is wrong",
                    hint="recalibrate the cost model or fix the curve "
                    "composition; a bound the system can beat is not a bound",
                )
            )
        elif (
            observed_p99 > 0.0
            and flow.steady_bound_s * 1000.0 > looseness_factor * observed_p99
        ):
            diagnostics.append(
                _diag(
                    "RCP244",
                    where,
                    f"loose bound: steady-state bound "
                    f"{flow.steady_bound_s * 1000:.1f} ms is more than "
                    f"{looseness_factor:g}x the observed p99 "
                    f"{observed_p99:.1f} ms",
                    hint="tighten burst declarations or the cost model so "
                    "the bound stays actionable",
                )
            )
    return diagnostics
