"""Rendering lint results for humans and machines."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from repro.util.validate import Diagnostic, Severity, blocking

__all__ = ["render_text", "render_json", "render_sarif", "summary_counts"]


def summary_counts(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    counts: Counter[str] = Counter(str(d.severity) for d in diagnostics)
    return {str(sev): counts.get(str(sev), 0) for sev in Severity}


def render_text(
    diagnostics: list[Diagnostic],
    strict: bool = False,
    suppressed: int = 0,
    files_checked: int | None = None,
    label: str = "lint",
) -> str:
    """Human-readable report: one line per finding plus a summary.

    ``label`` names the tool in the verdict line — the schedule sanitizer
    reuses this renderer with ``label="san"``.
    """
    lines = [diag.format() for diag in diagnostics]
    counts = summary_counts(diagnostics)
    parts = [f"{n} {name}{'s' if n != 1 else ''}" for name, n in counts.items() if n]
    summary = ", ".join(parts) if parts else "no findings"
    if suppressed:
        summary += f" ({suppressed} suppressed)"
    if files_checked is not None:
        summary = f"{files_checked} file{'s' if files_checked != 1 else ''}: " + summary
    verdict = "FAIL" if blocking(diagnostics, strict=strict) else "OK"
    lines.append(f"{label} {verdict} — {summary}")
    return "\n".join(lines)


def render_json(
    diagnostics: list[Diagnostic],
    strict: bool = False,
    suppressed: int = 0,
    files_checked: int | None = None,
) -> str:
    payload = {
        "ok": not blocking(diagnostics, strict=strict),
        "strict": strict,
        "counts": summary_counts(diagnostics),
        "suppressed": suppressed,
        "diagnostics": [diag.to_dict() for diag in diagnostics],
    }
    if files_checked is not None:
        payload["files_checked"] = files_checked
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_descriptions() -> dict[str, str]:
    """id -> description from the unified catalog (every rule family)."""
    from repro.lint.catalog import catalog_descriptions

    return catalog_descriptions()


def render_sarif(
    diagnostics: list[Diagnostic],
    strict: bool = False,
    suppressed: int = 0,
    files_checked: int | None = None,
) -> str:
    """SARIF 2.1.0 log for code-scanning upload.

    Findings without a file anchor (recipe / bench checks carry ``where``
    instead) become logical locations, which SARIF viewers render as the
    result's scope line.
    """
    descriptions = _rule_descriptions()
    rule_ids = sorted({diag.rule for diag in diagnostics})
    results = []
    for diag in diagnostics:
        result: dict[str, object] = {
            "ruleId": diag.rule,
            "level": _SARIF_LEVEL.get(diag.severity, "warning"),
            "message": {"text": diag.format()},
        }
        if diag.file:
            region: dict[str, int] = {"startLine": max(1, diag.line or 1)}
            if diag.col:
                region["startColumn"] = diag.col + 1
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diag.file},
                        "region": region,
                    }
                }
            ]
        elif diag.where:
            result["locations"] = [
                {"logicalLocations": [{"fullyQualifiedName": diag.where}]}
            ]
        results.append(result)
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": descriptions.get(rule_id, rule_id)
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
