"""Rendering lint results for humans and machines."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from repro.util.validate import Diagnostic, Severity, blocking

__all__ = ["render_text", "render_json", "summary_counts"]


def summary_counts(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    counts: Counter[str] = Counter(str(d.severity) for d in diagnostics)
    return {str(sev): counts.get(str(sev), 0) for sev in Severity}


def render_text(
    diagnostics: list[Diagnostic],
    strict: bool = False,
    suppressed: int = 0,
    files_checked: int | None = None,
    label: str = "lint",
) -> str:
    """Human-readable report: one line per finding plus a summary.

    ``label`` names the tool in the verdict line — the schedule sanitizer
    reuses this renderer with ``label="san"``.
    """
    lines = [diag.format() for diag in diagnostics]
    counts = summary_counts(diagnostics)
    parts = [f"{n} {name}{'s' if n != 1 else ''}" for name, n in counts.items() if n]
    summary = ", ".join(parts) if parts else "no findings"
    if suppressed:
        summary += f" ({suppressed} suppressed)"
    if files_checked is not None:
        summary = f"{files_checked} file{'s' if files_checked != 1 else ''}: " + summary
    verdict = "FAIL" if blocking(diagnostics, strict=strict) else "OK"
    lines.append(f"{label} {verdict} — {summary}")
    return "\n".join(lines)


def render_json(
    diagnostics: list[Diagnostic],
    strict: bool = False,
    suppressed: int = 0,
    files_checked: int | None = None,
) -> str:
    payload = {
        "ok": not blocking(diagnostics, strict=strict),
        "strict": strict,
        "counts": summary_counts(diagnostics),
        "suppressed": suppressed,
        "diagnostics": [diag.to_dict() for diag in diagnostics],
    }
    if files_checked is not None:
        payload["files_checked"] = files_checked
    return json.dumps(payload, indent=2, sort_keys=True)
