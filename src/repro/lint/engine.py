"""The lint engine: parse files, run rules, apply suppressions.

The engine is deterministic by construction (it is itself subject to the
rules it enforces): files are discovered in sorted order, rules run in
catalog order, and diagnostics are sorted by location before they are
returned.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import repro.lint.determinism  # noqa: F401  - registers the DET rules
import repro.lint.envflags  # noqa: F401  - registers the FLG rules
from repro.lint.rules import RULE_CATALOG, LintRule
from repro.lint.suppress import parse_suppressions
from repro.util.validate import Diagnostic, Severity, blocking

__all__ = ["LintRun", "lint_source", "lint_file", "lint_paths"]


@dataclass
class LintRun:
    """Outcome of one engine invocation."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    def ok(self, strict: bool = False) -> bool:
        return not blocking(self.diagnostics, strict=strict)

    def merge(self, other: "LintRun") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.suppressed += other.suppressed
        self.files_checked += other.files_checked

    def finish(self) -> "LintRun":
        self.diagnostics.sort(key=lambda d: d.sort_key)
        return self


def _select_rules(rule_ids: Sequence[str] | None) -> list[type[LintRule]]:
    if rule_ids is None:
        return [RULE_CATALOG[rule_id] for rule_id in sorted(RULE_CATALOG)]
    unknown = sorted(set(rule_ids) - set(RULE_CATALOG))
    if unknown:
        raise KeyError(f"unknown lint rules {unknown} (known: {sorted(RULE_CATALOG)})")
    return [RULE_CATALOG[rule_id] for rule_id in sorted(set(rule_ids))]


def lint_source(
    source: str,
    filename: str = "<string>",
    rule_ids: Sequence[str] | None = None,
) -> LintRun:
    """Lint one source string."""
    from repro.lint.rules import FileContext

    run = LintRun(files_checked=1)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        run.diagnostics.append(
            Diagnostic(
                rule="LINT000",
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
                file=filename,
                line=exc.lineno,
                col=exc.offset,
            )
        )
        return run.finish()
    suppressions = parse_suppressions(source)
    ctx = FileContext(filename=filename, source=source, tree=tree)
    for rule_cls in _select_rules(rule_ids):
        for diag in rule_cls(ctx).run():
            if suppressions.is_suppressed(diag.rule, diag.line):
                run.suppressed += 1
            else:
                run.diagnostics.append(diag)
    return run.finish()


def lint_file(path: Path, rule_ids: Sequence[str] | None = None) -> LintRun:
    return lint_source(
        path.read_text(encoding="utf-8"), filename=str(path), rule_ids=rule_ids
    )


def _python_files(paths: Iterable[Path]) -> list[Path]:
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            files.add(path)
    return sorted(files)


def lint_paths(
    paths: Iterable[str | Path], rule_ids: Sequence[str] | None = None
) -> LintRun:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    run = LintRun()
    for path in _python_files(Path(p) for p in paths):
        run.merge(lint_file(path, rule_ids=rule_ids))
    return run.finish()
