"""FLG001 — raw ``REPRO_*`` environment reads bypassing the flag registry.

Every runtime toggle is declared once in :mod:`repro.util.flags`; code
that reads ``os.environ["REPRO_*"]`` (or ``os.getenv`` / ``.get`` /
``.setdefault``) directly bypasses the registry, so the flag never shows
up in the documented inventory and its default can silently diverge
between call sites. The registry module itself reads through the
declared :class:`~repro.util.flags.EnvFlag` (non-literal key) and is not
flagged.
"""

from __future__ import annotations

import ast

from repro.lint.rules import LintRule, register_rule
from repro.util.validate import Severity

__all__ = ["EnvFlagRule"]

_ENV_READ_FNS = {"os.getenv", "os.environ.get", "os.environ.setdefault"}


def _literal_repro_key(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value.startswith("REPRO_"):
            return node.value
    return None


@register_rule
class EnvFlagRule(LintRule):
    """Flags ``REPRO_*`` environment reads outside ``repro.util.flags``."""

    rule_id = "FLG001"
    severity = Severity.WARNING
    description = "raw REPRO_* environment read bypassing repro.util.flags"
    hint = "declare the flag in repro.util.flags and read it via flag_enabled/flag_value"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.resolve(node.func)
        if dotted in _ENV_READ_FNS and node.args:
            key = _literal_repro_key(node.args[0])
            if key is not None:
                self.report(node, f"{dotted}({key!r}) bypasses the flag registry")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not isinstance(node.ctx, ast.Store):
            dotted = self.resolve(node.value)
            if dotted == "os.environ":
                key = _literal_repro_key(node.slice)
                if key is not None:
                    self.report(
                        node, f"os.environ[{key!r}] bypasses the flag registry"
                    )
        self.generic_visit(node)
