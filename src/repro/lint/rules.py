"""The lint rule framework: visitor base class, file context, catalog.

A rule is an :class:`ast.NodeVisitor` subclass with a ``rule_id``, a
default :class:`~repro.util.validate.Severity` and a one-line
``description``. The engine instantiates every registered rule per file,
hands it a shared :class:`FileContext`, and walks the module tree once per
rule. Rules report through :meth:`LintRule.report`, which anchors the
diagnostic to an AST node and honours suppression comments lazily (the
engine filters them out afterwards so suppressed findings can still be
counted).

Name resolution: rules see *resolved dotted paths*. ``import time as t``
followed by ``t.monotonic()`` resolves to ``time.monotonic``;
``from datetime import datetime`` followed by ``datetime.now()`` resolves
to ``datetime.datetime.now``. :class:`ImportMap` implements that without
executing any imports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.util.validate import Diagnostic, Severity

__all__ = [
    "ImportMap",
    "FileContext",
    "LintRule",
    "RULE_CATALOG",
    "register_rule",
    "rule_catalog",
]


class ImportMap:
    """Static alias table built from a module's import statements."""

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c->a.b.
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{module}.{alias.name}" if module else alias.name

    def resolve(self, node: ast.expr) -> str | None:
        """Resolved dotted path of a Name/Attribute chain, else None."""
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._aliases.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything a rule needs to know about the file being linted."""

    filename: str
    source: str
    tree: ast.Module
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)


class LintRule(ast.NodeVisitor):
    """Base class for determinism rules.

    Subclasses set ``rule_id``, ``severity``, ``description`` and a
    ``hint`` shown with every finding, then implement ``visit_*`` methods
    calling :meth:`report`.
    """

    rule_id = ""
    severity = Severity.ERROR
    description = ""
    hint = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        self.visit(self.ctx.tree)
        return self.findings

    def resolve(self, node: ast.expr) -> str | None:
        return self.ctx.imports.resolve(node)

    def report(
        self,
        node: ast.AST,
        message: str,
        severity: Severity | None = None,
        hint: str | None = None,
    ) -> None:
        self.findings.append(
            Diagnostic(
                rule=self.rule_id,
                severity=self.severity if severity is None else severity,
                message=message,
                file=self.ctx.filename,
                line=getattr(node, "lineno", None),
                col=getattr(node, "col_offset", None),
                hint=self.hint if hint is None else hint,
            )
        )


#: rule id -> rule class, in registration order.
RULE_CATALOG: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the catalog."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    existing = RULE_CATALOG.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    RULE_CATALOG[cls.rule_id] = cls
    return cls


def rule_catalog() -> Iterator[tuple[str, str, str]]:
    """(rule id, default severity, description) rows, id-ordered."""
    for rule_id in sorted(RULE_CATALOG):
        cls = RULE_CATALOG[rule_id]
        yield rule_id, str(cls.severity), cls.description
