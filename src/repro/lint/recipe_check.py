"""Static recipe checking: validate task graphs before deployment.

The paper deploys a Recipe by splitting it (``RecipeSplit``) and assigning
sub-tasks to modules (``TaskAssignment``, §IV-C-1). Both assume the graph
is well-formed; this module verifies that *statically*, reporting
:class:`~repro.util.validate.Diagnostic` findings instead of failing at
simulation time:

``RCP100``  task spec malformed (bad id, bad parallelism, unknown field)
``RCP101``  duplicate task id
``RCP102``  stream produced by more than one task
``RCP103``  consumed stream that nothing produces / malformed external ref
``RCP104``  dependency cycle
``RCP105``  stream produced but never consumed (cross-app use is fine)
``RCP106``  operator not in the registry
``RCP107``  subscriber QoS exceeds publisher QoS on a stream
``RCP108``  port shape: sources with inputs, processors without inputs
``RCP109``  stateful operator sharded (split→merge chain hazard)
``RCP110``  statically unschedulable: utilization exceeds capacity
``RCP111``  near capacity (utilization above the warning threshold)

``check_recipe_dict`` works on the raw JSON/DSL dict so it can report
problems (cycles, duplicates) that :class:`~repro.core.recipe.Recipe`'s
constructor would raise on; ``check_recipe`` accepts a constructed Recipe.
``check_rate_feasibility`` adds the CPU model pass, optionally against a
concrete assignment and module inventory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.operators import STATEFUL_OPERATORS
from repro.core.recipe import Recipe, TaskSpec
from repro.core.splitter import SubTask
from repro.errors import RecipeError
from repro.lint.rates import (
    DEFAULT_RECORD_BYTES,
    default_cost_model,
    propagate_rates,
    task_utilization,
)
from repro.runtime.costs import CostModel
from repro.util.validate import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.assignment import Assignment, ModuleInfo

__all__ = [
    "RECIPE_RULES",
    "RecipeRule",
    "check_recipe",
    "check_recipe_dict",
    "check_rate_feasibility",
]

@dataclass(frozen=True)
class RecipeRule:
    """One recipe-checker rule (id, default severity, description)."""

    rule_id: str
    severity: Severity
    description: str


#: The recipe-checker rule catalog (RCP1xx). Severity is the *default*:
#: RCP108 downgrades to a warning for sink-like processors with outputs.
RECIPE_RULES: dict[str, RecipeRule] = {
    rule.rule_id: rule
    for rule in (
        RecipeRule(
            "RCP100",
            Severity.ERROR,
            "task spec malformed (bad id, bad parallelism, unknown field)",
        ),
        RecipeRule("RCP101", Severity.ERROR, "duplicate task id"),
        RecipeRule(
            "RCP102", Severity.ERROR, "stream produced by more than one task"
        ),
        RecipeRule(
            "RCP103",
            Severity.ERROR,
            "consumed stream that nothing produces / malformed external "
            "reference",
        ),
        RecipeRule("RCP104", Severity.ERROR, "dependency cycle"),
        RecipeRule(
            "RCP105",
            Severity.WARNING,
            "stream produced but never consumed (cross-app use is fine)",
        ),
        RecipeRule("RCP106", Severity.ERROR, "operator not in the registry"),
        RecipeRule(
            "RCP107",
            Severity.WARNING,
            "subscriber QoS exceeds publisher QoS on a stream",
        ),
        RecipeRule(
            "RCP108",
            Severity.ERROR,
            "port shape: sources with inputs, processors without inputs",
        ),
        RecipeRule(
            "RCP109",
            Severity.WARNING,
            "stateful operator sharded (split-merge chain hazard)",
        ),
        RecipeRule(
            "RCP110",
            Severity.ERROR,
            "statically unschedulable: utilization exceeds capacity",
        ),
        RecipeRule(
            "RCP111",
            Severity.WARNING,
            "near capacity (utilization above the warning threshold)",
        ),
    )
}

#: Operators that legitimately consume no stream (sources / control-plane).
_SOURCE_OPERATORS = {"sensor", "mix"}

#: Utilization fraction of capacity above which RCP111 warns.
SOFT_UTILIZATION = 0.8


def _diag(
    rule: str, severity: Severity, where: str, message: str, hint: str = ""
) -> Diagnostic:
    return Diagnostic(
        rule=rule, severity=severity, message=message, where=where, hint=hint
    )


def _known_operators() -> set[str]:
    # Importing the analysis/integration modules populates the registry
    # with train/predict/mix/sensor/actuator alongside the generic ops.
    import repro.core.analysis  # noqa: F401
    import repro.core.integration  # noqa: F401
    from repro.core.operators import registered_operators

    return set(registered_operators())


def check_recipe(recipe: Recipe) -> list[Diagnostic]:
    """Structural checks for an already-constructed (hence DAG) recipe."""
    return check_recipe_dict(recipe.to_dict())


def check_recipe_dict(data: dict[str, Any]) -> list[Diagnostic]:
    """Structural checks on a raw recipe dict (JSON DSL form).

    Unlike ``Recipe.from_dict`` this never raises on graph problems — it
    reports every finding, so a cyclic or dangling recipe yields
    diagnostics rather than an exception.
    """
    diagnostics: list[Diagnostic] = []
    if not isinstance(data, dict) or "recipe" not in data or "tasks" not in data:
        diagnostics.append(
            _diag(
                "RCP100",
                Severity.ERROR,
                "<recipe>",
                "recipe dict needs 'recipe' (name) and 'tasks'",
            )
        )
        return diagnostics
    name = str(data.get("recipe", ""))
    tasks: list[TaskSpec] = []
    seen_ids: set[str] = set()
    for index, entry in enumerate(data.get("tasks", [])):
        where = f"{name}:tasks[{index}]"
        try:
            task = TaskSpec.from_dict(entry)
        except (RecipeError, TypeError, ValueError) as exc:
            diagnostics.append(
                _diag("RCP100", Severity.ERROR, where, f"malformed task: {exc}")
            )
            continue
        if task.task_id in seen_ids:
            diagnostics.append(
                _diag(
                    "RCP101",
                    Severity.ERROR,
                    f"{name}:task {task.task_id}",
                    f"duplicate task id {task.task_id!r}",
                    hint="task ids must be recipe-unique",
                )
            )
            continue
        seen_ids.add(task.task_id)
        tasks.append(task)
    if not tasks:
        diagnostics.append(
            _diag("RCP100", Severity.ERROR, name or "<recipe>", "recipe has no tasks")
        )
        return diagnostics

    diagnostics += _check_streams(name, tasks)
    diagnostics += _check_cycles(name, tasks)
    diagnostics += _check_operators(name, tasks)
    diagnostics += _check_qos(name, tasks)
    diagnostics += _check_ports(name, tasks)
    return diagnostics


# ---------------------------------------------------------------------------
# Stream wiring
# ---------------------------------------------------------------------------


def _producers_of(tasks: list[TaskSpec]) -> dict[str, str]:
    producers: dict[str, str] = {}
    for task in tasks:
        for stream in task.outputs:
            producers.setdefault(stream, task.task_id)
    return producers


def _check_streams(name: str, tasks: list[TaskSpec]) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    producers: dict[str, str] = {}
    consumed: set[str] = set()
    for task in tasks:
        for stream in task.outputs:
            if stream in producers:
                diagnostics.append(
                    _diag(
                        "RCP102",
                        Severity.ERROR,
                        f"{name}:stream {stream}",
                        f"stream {stream!r} produced by both "
                        f"{producers[stream]!r} and {task.task_id!r}",
                        hint="streams map to MQTT topics: exactly one producer",
                    )
                )
            else:
                producers[stream] = task.task_id
    for task in tasks:
        for stream in task.inputs:
            if ":" in stream:
                app, _sep, remote = stream.partition(":")
                if not app or not remote:
                    diagnostics.append(
                        _diag(
                            "RCP103",
                            Severity.ERROR,
                            f"{name}:task {task.task_id}",
                            f"malformed external stream reference {stream!r}",
                            hint="expected '<application>:<stream>'",
                        )
                    )
                continue
            consumed.add(stream)
            if stream not in producers:
                diagnostics.append(
                    _diag(
                        "RCP103",
                        Severity.ERROR,
                        f"{name}:task {task.task_id}",
                        f"consumes stream {stream!r} which no task produces",
                        hint="add a producing task or an external reference",
                    )
                )
    for stream in sorted(set(producers) - consumed):
        diagnostics.append(
            _diag(
                "RCP105",
                Severity.WARNING,
                f"{name}:stream {stream}",
                f"stream {stream!r} (from {producers[stream]!r}) is never "
                "consumed in this recipe",
                hint="fine if the stream is curated for cross-application use",
            )
        )
    return diagnostics


def _check_cycles(name: str, tasks: list[TaskSpec]) -> list[Diagnostic]:
    producers = _producers_of(tasks)
    upstream: dict[str, set[str]] = {
        task.task_id: {
            producers[stream]
            for stream in task.inputs
            if ":" not in stream and stream in producers
        }
        - {task.task_id}
        for task in tasks
    }
    self_loops = [
        task.task_id
        for task in tasks
        if any(
            producers.get(stream) == task.task_id
            for stream in task.inputs
            if ":" not in stream
        )
    ]
    in_degree = {tid: len(deps) for tid, deps in upstream.items()}
    ready = sorted(tid for tid, deg in in_degree.items() if deg == 0)
    done: list[str] = []
    while ready:
        current = ready.pop(0)
        done.append(current)
        for tid in sorted(upstream):
            if current in upstream[tid]:
                upstream[tid].discard(current)
                in_degree[tid] -= 1
                if in_degree[tid] == 0:
                    ready.append(tid)
                    ready.sort()
    diagnostics: list[Diagnostic] = []
    remaining = sorted(set(in_degree) - set(done))
    cyclic = sorted(set(remaining) | set(self_loops))
    if cyclic:
        diagnostics.append(
            _diag(
                "RCP104",
                Severity.ERROR,
                f"{name}:tasks {', '.join(cyclic)}",
                f"dependency cycle involving {cyclic}",
                hint="a recipe is a DAG: break the loop or split the recipe",
            )
        )
    return diagnostics


def _check_operators(name: str, tasks: list[TaskSpec]) -> list[Diagnostic]:
    known = _known_operators()
    return [
        _diag(
            "RCP106",
            Severity.ERROR,
            f"{name}:task {task.task_id}",
            f"unknown operator {task.operator!r}",
            hint=f"registered: {sorted(known)}",
        )
        for task in tasks
        if task.operator not in known
    ]


def _check_qos(name: str, tasks: list[TaskSpec]) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    producer_qos: dict[str, tuple[str, int]] = {}
    for task in tasks:
        qos = int(task.params.get("qos", 0))
        for stream in task.outputs:
            producer_qos.setdefault(stream, (task.task_id, qos))
    for task in tasks:
        qos = int(task.params.get("qos", 0))
        for stream in task.inputs:
            if ":" in stream or stream not in producer_qos:
                continue
            producer, pub_qos = producer_qos[stream]
            if qos > pub_qos:
                diagnostics.append(
                    _diag(
                        "RCP107",
                        Severity.WARNING,
                        f"{name}:task {task.task_id}",
                        f"subscribes to {stream!r} at QoS {qos} but producer "
                        f"{producer!r} publishes at QoS {pub_qos}",
                        hint="at-least-once needs QoS 1 end to end; raise the "
                        "producer's qos param",
                    )
                )
    return diagnostics


def _check_ports(name: str, tasks: list[TaskSpec]) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    known = _known_operators()
    for task in tasks:
        where = f"{name}:task {task.task_id}"
        if task.operator not in known:
            continue  # already RCP106
        if task.operator == "sensor":
            if task.inputs:
                diagnostics.append(
                    _diag(
                        "RCP108",
                        Severity.ERROR,
                        where,
                        "sensor tasks sample a device; they cannot consume "
                        f"streams (got inputs {task.inputs})",
                    )
                )
            if not task.outputs:
                diagnostics.append(
                    _diag(
                        "RCP108",
                        Severity.WARNING,
                        where,
                        "sensor task publishes nothing (no outputs)",
                    )
                )
        elif task.operator not in _SOURCE_OPERATORS and not task.inputs:
            diagnostics.append(
                _diag(
                    "RCP108",
                    Severity.ERROR,
                    where,
                    f"{task.operator!r} task consumes no stream — it will "
                    "never fire",
                    hint="only sensor/mix tasks are valid sources",
                )
            )
        if task.parallelism > 1 and task.operator in STATEFUL_OPERATORS:
            diagnostics.append(
                _diag(
                    "RCP109",
                    Severity.WARNING,
                    where,
                    f"stateful operator {task.operator!r} sharded x"
                    f"{task.parallelism}: each shard keeps independent state "
                    "over its hash-slice of samples",
                    hint="shard stateless stages; keep stateful ones x1 (or "
                    "coordinate via mix)",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Rate feasibility (CPU service-time model)
# ---------------------------------------------------------------------------


def check_rate_feasibility(
    recipe: Recipe,
    subtasks: "list[SubTask] | None" = None,
    assignment: "Assignment | None" = None,
    modules: "list[ModuleInfo] | None" = None,
    cost_model: CostModel | None = None,
    record_bytes: int = DEFAULT_RECORD_BYTES,
) -> list[Diagnostic]:
    """Flag statically unschedulable rates.

    Always checks each task against a unit-capacity core (no single task
    may alone exceed one module). Given ``assignment`` + ``modules`` it
    additionally sums per-module utilization against each module's
    declared capacity — the statically-checkable half of the paper's
    §V-B saturation behaviour.
    """
    model = cost_model if cost_model is not None else default_cost_model()
    rates = propagate_rates(recipe)
    diagnostics: list[Diagnostic] = []
    utilizations: dict[str, float] = {}
    for task_id in recipe.topological_order:
        task = recipe.tasks[task_id]
        util = task_utilization(task, rates[task_id], model, record_bytes)
        utilizations[task_id] = util
        where = f"{recipe.name}:task {task_id}"
        detail = (
            f"demands {util:.2f} CPU-s/s per shard "
            f"({rates[task_id].ingest_hz:g} Hz ingest)"
        )
        if util > 1.0:
            diagnostics.append(
                _diag(
                    "RCP110",
                    Severity.ERROR,
                    where,
                    f"statically unschedulable: {detail} on a unit-capacity "
                    "module",
                    hint="lower the sensing rate, widen windows, or shard "
                    "the stage",
                )
            )
        elif util > SOFT_UTILIZATION:
            diagnostics.append(
                _diag(
                    "RCP111",
                    Severity.WARNING,
                    where,
                    f"near capacity: {detail}",
                    hint="no headroom for warm-up or bursts",
                )
            )
    if assignment is not None and modules is not None and subtasks is not None:
        diagnostics += _check_module_loads(
            recipe, subtasks, assignment, modules, utilizations
        )
    return diagnostics


def _check_module_loads(
    recipe: Recipe,
    subtasks: "list[SubTask]",
    assignment: "Assignment",
    modules: "list[ModuleInfo]",
    utilizations: dict[str, float],
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    capacity = {module.name: module.capacity for module in modules}
    load: dict[str, float] = {}
    for subtask in subtasks:
        module_name = assignment.placements.get(subtask.subtask_id)
        if module_name is None:
            continue
        load[module_name] = load.get(module_name, 0.0) + utilizations.get(
            subtask.task_id, 0.0
        )
    for module_name in sorted(load):
        total = load[module_name]
        cap = capacity.get(module_name, 1.0)
        where = f"{recipe.name}:module {module_name}"
        if total > cap:
            diagnostics.append(
                _diag(
                    "RCP110",
                    Severity.ERROR,
                    where,
                    f"statically unschedulable: assigned tasks demand "
                    f"{total:.2f} CPU-s/s against capacity {cap:g}",
                    hint="add modules, raise capacity, or lower rates",
                )
            )
        elif total > SOFT_UTILIZATION * cap:
            diagnostics.append(
                _diag(
                    "RCP111",
                    Severity.WARNING,
                    where,
                    f"near capacity: assigned load {total:.2f} of {cap:g}",
                )
            )
    return diagnostics
