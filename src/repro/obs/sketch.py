"""Mergeable, fixed-memory latency quantile sketches.

The online SLO engine (:mod:`repro.obs.slo`) needs per-flow latency
quantiles *while the scenario runs*, over both the whole run and a
sliding window, without unbounded memory. :class:`LatencySketch` is a
DDSketch-style log-bucketed sketch: values land in geometrically sized
buckets ``(gamma**(i-1), gamma**i]`` with ``gamma = (1+alpha)/(1-alpha)``,
so any reported quantile is within relative error ``alpha`` of the true
sample at that rank (while the bucket cap is not exceeded). Buckets are
plain integer counts, which makes two sketches built from disjoint
sample sets merge *exactly*: ``sketch(A).merge(sketch(B))`` equals
``sketch(A + B)`` bucket-for-bucket below the collapse cap.

:class:`WindowedSketch` slices time into fixed-width sub-windows, one
:class:`LatencySketch` each, and answers queries by merging the live
slices — a sliding-window quantile in O(window / slice) sketches of
fixed size.

Everything here is deterministic: no RNG, no wall-clock, and iteration
over buckets is always in sorted index order.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["LatencySketch", "WindowedSketch"]

#: Values at or below this are counted in the zero bucket (latencies are
#: non-negative; true zeros occur for same-instant hops).
_ZERO_EPSILON = 1e-12


class LatencySketch:
    """DDSketch-style quantile sketch with relative-error guarantee.

    ``alpha`` is the relative accuracy: ``quantile(q)`` returns a value
    within ``alpha * v`` of the true sample ``v`` at that rank, as long
    as the number of distinct log-buckets stays under ``max_buckets``.
    When it does not, the lowest buckets collapse into one (the usual
    DDSketch trade: the far-left tail loses resolution first, the upper
    quantiles the operator cares about keep theirs).
    """

    __slots__ = (
        "alpha",
        "max_buckets",
        "_gamma",
        "_log_gamma",
        "buckets",
        "zero_count",
        "count",
        "total",
        "minimum",
        "maximum",
    )

    def __init__(self, alpha: float = 0.01, max_buckets: int = 512) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if max_buckets < 2:
            raise ValueError(f"max_buckets must be >= 2, got {max_buckets}")
        self.alpha = alpha
        self.max_buckets = max_buckets
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self.buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one non-negative observation into the sketch."""
        if value < 0.0:
            raise ValueError(f"latency sketch takes non-negative values, got {value}")
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= _ZERO_EPSILON:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if len(self.buckets) > self.max_buckets:
            self._collapse()

    def _collapse(self) -> None:
        """Merge the lowest bucket into the next one up (tail loses first)."""
        low, second = sorted(self.buckets)[:2]
        self.buckets[second] += self.buckets.pop(low)

    def merge(self, other: "LatencySketch") -> "LatencySketch":
        """Fold ``other`` into this sketch (exact below the bucket cap)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different accuracy: "
                f"{self.alpha} vs {other.alpha}"
            )
        for index in sorted(other.buckets):
            self.buckets[index] = self.buckets.get(index, 0) + other.buckets[index]
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        while len(self.buckets) > self.max_buckets:
            self._collapse()
        return self

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100], like ``util.stats``)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = int(q * (self.count - 1) / 100.0)
        if rank < self.zero_count:
            return 0.0
        seen = self.zero_count
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank < seen:
                # Midpoint of (gamma**(i-1), gamma**i]: within alpha of
                # every value the bucket can hold.
                return 2.0 * self._gamma**index / (self._gamma + 1.0)
        return self.maximum  # pragma: no cover - counts always sum to count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # ------------------------------------------------------------------
    # Serialization (status topics, JSONL round-trip)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; :meth:`from_dict` reproduces the sketch exactly."""
        return {
            "alpha": self.alpha,
            "max_buckets": self.max_buckets,
            "zero": self.zero_count,
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": {str(index): self.buckets[index] for index in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LatencySketch":
        sketch = cls(alpha=data["alpha"], max_buckets=data["max_buckets"])
        sketch.zero_count = int(data["zero"])
        sketch.count = int(data["count"])
        sketch.total = float(data["total"])
        if sketch.count:
            sketch.minimum = float(data["min"])
            sketch.maximum = float(data["max"])
        sketch.buckets = {int(index): int(n) for index, n in data["buckets"].items()}
        return sketch

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencySketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self.buckets)})"
        )


class WindowedSketch:
    """Sliding-window quantiles from a ring of per-slice sketches.

    Time is cut into ``slice_s``-wide slices; each observation lands in
    its slice's :class:`LatencySketch`. ``query(now)`` merges the slices
    covering the last ``slices * slice_s`` seconds. Old slices are
    evicted on every observe *and* query, so memory is bounded by
    ``slices`` fixed-size sketches regardless of run length.
    """

    __slots__ = ("alpha", "max_buckets", "slice_s", "slices", "_ring")

    def __init__(
        self,
        alpha: float = 0.01,
        slice_s: float = 5.0,
        slices: int = 6,
        max_buckets: int = 512,
    ) -> None:
        if slice_s <= 0:
            raise ValueError(f"slice_s must be positive, got {slice_s}")
        if slices < 1:
            raise ValueError(f"slices must be >= 1, got {slices}")
        self.alpha = alpha
        self.max_buckets = max_buckets
        self.slice_s = slice_s
        self.slices = slices
        self._ring: dict[int, LatencySketch] = {}

    def _slice_of(self, t: float) -> int:
        return int(t // self.slice_s)

    def _evict(self, current: int) -> None:
        horizon = current - self.slices
        for key in [k for k in self._ring if k <= horizon]:
            del self._ring[key]

    def observe(self, t: float, value: float) -> None:
        current = self._slice_of(t)
        sketch = self._ring.get(current)
        if sketch is None:
            sketch = self._ring[current] = LatencySketch(
                alpha=self.alpha, max_buckets=self.max_buckets
            )
            self._evict(current)
        sketch.add(value)

    def query(self, now: float) -> LatencySketch:
        """Merged sketch over the window ending at ``now`` (fresh object)."""
        current = self._slice_of(now)
        self._evict(current)
        merged = LatencySketch(alpha=self.alpha, max_buckets=self.max_buckets)
        for key in sorted(self._ring):
            merged.merge(self._ring[key])
        return merged

    def __len__(self) -> int:
        return len(self._ring)
