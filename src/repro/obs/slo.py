"""Online SLO engine: deadline conformance, burn-rate alerts, drift watch.

PR 9's latency analyzer proves deadlines *before* a run and the trace
tooling measures them *after*; this module watches them *during*. The
engine taps the live ``obs.span`` stream (taps fire even when trace
storage is off), so it works at benchmark scale, and everything it does
is driven by sim time — two runs of the same (scenario, seed) produce
byte-identical SLO records.

Per declared flow (every task with a ``deadline_ms`` in the recipe):

* **latency conformance** — end-to-end latency of each completed trace,
  folded into a run-total :class:`~repro.obs.sketch.LatencySketch` and a
  sliding :class:`~repro.obs.sketch.WindowedSketch`;
* **pending-overdue tracking** — the part a completed-latency check
  cannot see. When a root span of a flow whose path always forwards
  records appears, a sim timer is armed at ``root.start + deadline``;
  if the sink has not completed the trace by then, that is a deadline
  violation *even though no latency sample ever shows it* (the failover
  scenario's crash window produces exactly this: sensed records that
  never reach ``train``). Flows whose path crosses a conditional
  operator (``command``, ``window``, ...) legitimately drop records and
  are measured latency-only;
* **multi-window burn-rate alerting** — SRE-style: the bad fraction of
  the error budget over a short and a long sliding window; ``page``
  when both windows burn fast, ``warn`` on a sustained long-window
  burn, state transitions emitted as ``slo.alert`` trace records with
  sim-time anchors;
* **cost-model drift watch** — the runtime counterpart of the RCP230
  baseline gate: observed per-op busy means (from ``repro.prof``)
  compared against the active cost model on every status tick;
* **operator export** — a compact status snapshot published retained on
  ``ifot/ctl/status/slo`` (the healing plane and future admission
  control subscribe there) and emitted as ``slo.status`` records.

Findings surface as the same :class:`~repro.util.validate.Diagnostic`
currency every static checker uses, under the ``SLO3xx`` rule family
registered in the unified catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigurationError
from repro.obs.context import SPAN_EVENT
from repro.obs.sketch import LatencySketch, WindowedSketch
from repro.util.flags import flag_enabled
from repro.util.validate import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.recipe import Recipe
    from repro.runtime.base import Runtime
    from repro.sim.trace import TraceRecord

__all__ = [
    "ENABLED",
    "SLO_RULES",
    "SLO_ALERT_EVENT",
    "SLO_VIOLATION_EVENT",
    "SLO_DRIFT_EVENT",
    "SLO_STATUS_EVENT",
    "SLO_STATUS_TOPIC",
    "FlowSlo",
    "SloEngine",
    "policy_from_recipe",
    "enable_slo",
    "format_flow_summary",
]

#: Module-level kill switch, mirroring :data:`repro.obs.ENABLED`: when
#: False, :func:`enable_slo` is a no-op and ``runtime.slo`` stays None.
ENABLED: bool = True

#: Trace events the engine emits (all with source ``"slo"``).
SLO_ALERT_EVENT = "slo.alert"
SLO_VIOLATION_EVENT = "slo.violation"
SLO_DRIFT_EVENT = "slo.drift"
SLO_STATUS_EVENT = "slo.status"

#: Retained control topic carrying the engine's status snapshots.
SLO_STATUS_TOPIC = "ifot/ctl/status/slo"


@dataclass(frozen=True)
class SloRule:
    """One rule the SLO engine can report."""

    rule_id: str
    severity: Severity
    description: str


#: The SLO rule family (rendered into the unified lint catalog).
SLO_RULES: dict[str, SloRule] = {
    rule.rule_id: rule
    for rule in (
        SloRule(
            "SLO300",
            Severity.ERROR,
            "Deadline burn page: a flow's error-budget burn rate exceeded "
            "the page threshold on both the short and the long window "
            "during the run.",
        ),
        SloRule(
            "SLO301",
            Severity.WARNING,
            "Deadline burn warning: a flow sustained a long-window "
            "error-budget burn above the warn threshold without paging.",
        ),
        SloRule(
            "SLO302",
            Severity.WARNING,
            "Deadline violations observed (late or overdue traces) without "
            "the burn rate ever reaching an alert threshold.",
        ),
        SloRule(
            "SLO310",
            Severity.WARNING,
            "Online cost-model drift: an op's observed mean busy time "
            "diverged from the active cost model beyond tolerance while "
            "the scenario ran (runtime counterpart of RCP230).",
        ),
        SloRule(
            "SLO320",
            Severity.WARNING,
            "Metric cardinality admission-stop engaged: the metrics "
            "registry hit its series cap and dropped new series.",
        ),
    )
}

#: Operators that forward every input record downstream, making
#: pending-overdue tracking sound: a record entering the path *must*
#: reach the sink, so a missing sink completion is a real violation.
#: Conditional operators (``command`` rules, ``window`` batching,
#: ``filter``/``throttle``/``predict``/``stat``/``mix``) legitimately
#: drop or fold records; flows crossing them are measured latency-only.
#: ``dedup`` forwards every value-changing record — the shipped flows
#: feed it distinct readings — so it stays on the forwarding list; a
#: deployment where dedup routinely drops should override the policy.
FORWARDING_OPERATORS = frozenset(
    {"sensor", "map", "merge", "delta", "ewma", "train", "actuator", "dedup"}
)

#: Default SLO target: 99% of records meet their declared deadline.
DEFAULT_TARGET = 0.99


@dataclass(frozen=True)
class FlowSlo:
    """The objective for one deadline-bearing flow.

    ``flow`` is the sink task id (the stage label of its spans);
    ``roots`` the source task ids whose spans open the flow's traces;
    ``pending`` arms overdue timers on root arrival (sound only when the
    root → sink path always forwards, see :data:`FORWARDING_OPERATORS`).
    """

    flow: str
    deadline_s: float
    roots: tuple[str, ...] = ()
    pending: bool = False
    target: float = DEFAULT_TARGET

    def __post_init__(self) -> None:
        if not self.deadline_s > 0:
            raise ConfigurationError(
                f"flow {self.flow!r}: deadline_s must be positive"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"flow {self.flow!r}: target must be in (0, 1)"
            )


def _trace_roots(recipe: "Recipe", sink: str) -> tuple[set[str], bool]:
    """Source task ids upstream of ``sink`` + whether any hop can drop."""
    roots: set[str] = set()
    conditional = False
    seen: set[str] = set()
    stack = [sink]
    while stack:
        task_id = stack.pop()
        if task_id in seen:
            continue
        seen.add(task_id)
        task = recipe.tasks[task_id]
        if task_id != sink and task.operator not in FORWARDING_OPERATORS:
            conditional = True
        upstream = recipe.upstream_of(task_id)
        if not upstream:
            roots.add(task_id)
        stack.extend(sorted(upstream))
    return roots, conditional


def policy_from_recipe(
    recipe: "Recipe", target: float = DEFAULT_TARGET
) -> list[FlowSlo]:
    """One :class:`FlowSlo` per task declaring ``deadline_ms``."""
    flows: list[FlowSlo] = []
    for task_id in sorted(recipe.tasks):
        task = recipe.tasks[task_id]
        if task.deadline_ms is None:
            continue
        roots, conditional = _trace_roots(recipe, task_id)
        flows.append(
            FlowSlo(
                flow=task_id,
                deadline_s=task.deadline_ms / 1000.0,
                roots=tuple(sorted(roots)),
                pending=not conditional,
                target=target,
            )
        )
    return flows


class _BurnWindow:
    """Good/bad event counts in fixed-width time buckets (bounded ring)."""

    __slots__ = ("bucket_s", "horizon", "_buckets")

    def __init__(self, bucket_s: float, horizon_s: float) -> None:
        self.bucket_s = bucket_s
        self.horizon = max(1, int(horizon_s / bucket_s) + 1)
        self._buckets: dict[int, list[int]] = {}

    def add(self, t: float, good: bool) -> None:
        index = int(t // self.bucket_s)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = [0, 0]
            floor = index - self.horizon
            for key in [k for k in self._buckets if k <= floor]:
                del self._buckets[key]
        bucket[1 if good else 0] += 1

    def window(self, now: float, window_s: float) -> tuple[int, int]:
        """``(bad, total)`` over the window ending at ``now``."""
        current = int(now // self.bucket_s)
        first = int((now - window_s) // self.bucket_s) + 1
        bad = total = 0
        for index, (b, g) in self._buckets.items():
            if first <= index <= current:
                bad += b
                total += b + g
        return bad, total


class SloEngine:
    """Streaming SLO evaluation attached to a runtime as ``runtime.slo``.

    Pure consumer of the tracer/prof streams: it never draws from the
    runtime RNG or id sequences, and only *adds* timer events, so the
    application's own trace records are unchanged by its presence (the
    equivalence tests assert exactly that). The one deliberate exception
    is the retained status ``publisher`` — real MQTT traffic that shares
    the simulated WLAN with the application, exactly like the management
    plane's heartbeats; pass ``publisher=None`` for a fully passive
    engine.
    """

    def __init__(
        self,
        runtime: "Runtime",
        flows: list[FlowSlo],
        alpha: float = 0.01,
        bucket_s: float = 1.0,
        short_window_s: float = 5.0,
        long_window_s: float = 25.0,
        page_burn: float = 10.0,
        warn_burn: float = 2.0,
        status_interval_s: float = 5.0,
        publisher: Callable[[str, dict[str, Any]], None] | None = None,
        cost_model: Any | None = None,
        drift_tolerance: float | None = None,
        drift_min_count: int | None = None,
        max_violation_log: int = 256,
    ) -> None:
        from repro.lint.dataflow import DRIFT_MIN_COUNT, DRIFT_TOLERANCE

        self.runtime = runtime
        self.flows: dict[str, FlowSlo] = {}
        self._root_flows: dict[str, list[str]] = {}
        for flow in flows:
            if flow.flow in self.flows:
                raise ConfigurationError(f"duplicate SLO flow {flow.flow!r}")
            self.flows[flow.flow] = flow
            if flow.pending:
                for root in flow.roots:
                    self._root_flows.setdefault(root, []).append(flow.flow)
        self.short_window_s = short_window_s
        self.long_window_s = long_window_s
        self.page_burn = page_burn
        self.warn_burn = warn_burn
        self.status_interval_s = status_interval_s
        self._publisher = publisher
        self._cost_model = (
            cost_model
            if cost_model is not None
            else getattr(runtime, "cost_model", None)
        )
        self.drift_tolerance = (
            DRIFT_TOLERANCE if drift_tolerance is None else drift_tolerance
        )
        self.drift_min_count = (
            DRIFT_MIN_COUNT if drift_min_count is None else drift_min_count
        )
        self.max_violation_log = max_violation_log

        # Per-flow streaming state.
        self.sketches = {f: LatencySketch(alpha=alpha) for f in self.flows}
        slice_s = max(bucket_s, short_window_s / 4.0)
        slices = max(2, int(long_window_s / slice_s) + 1)
        self.windows = {
            f: WindowedSketch(alpha=alpha, slice_s=slice_s, slices=slices)
            for f in self.flows
        }
        self._events = {
            f: _BurnWindow(bucket_s, long_window_s) for f in self.flows
        }
        self.good = {f: 0 for f in self.flows}
        self.violations = {f: 0 for f in self.flows}
        self.overdue = {f: 0 for f in self.flows}
        self.state = {f: "ok" for f in self.flows}
        self.paged = {f: False for f in self.flows}
        self.warned = {f: False for f in self.flows}
        self.first_page_at: dict[str, float] = {}
        self.alerts: list[dict[str, Any]] = []
        self.violation_log: list[dict[str, Any]] = []
        self.drift: dict[str, dict[str, Any]] = {}
        self.status_ticks = 0
        self.node_watermarks: dict[str, dict[str, float]] = {}

        # Trace bookkeeping, all bounded: root starts by trace id (purged
        # past the pending+window horizon), armed overdue timers, and
        # traces already counted overdue (late completions must not
        # double-count).
        self._roots: dict[str, float] = {}
        self._pending: dict[tuple[str, str], Any] = {}
        self._expired: dict[tuple[str, str], float] = {}
        max_deadline = max(
            (f.deadline_s for f in self.flows.values()), default=0.0
        )
        self._horizon_s = max_deadline + long_window_s + 2.0 * status_interval_s

        runtime.tracer.tap(SPAN_EVENT, self._on_span)
        if status_interval_s > 0:
            runtime.call_later(status_interval_s, self._tick)

        # Optional: surface engine state through the shared metrics
        # registry so the telemetry exporters and `repro top` see it.
        obs = getattr(runtime, "obs", None)
        registry = obs.metrics if obs is not None else None
        if registry is not None:
            for flow_id in sorted(self.flows):
                registry.counter("slo.flow.good", flow=flow_id)
                registry.counter("slo.flow.violations", flow=flow_id)
                registry.gauge(
                    "slo.flow.burn_long",
                    fn=lambda f=flow_id: self.burn(f)[1],
                    flow=flow_id,
                )
        self._registry = registry

    # ------------------------------------------------------------------
    # Span stream
    # ------------------------------------------------------------------

    def _on_span(self, record: "TraceRecord") -> None:
        fields = record.fields
        trace = fields["trace"]
        stage = fields.get("task") or fields["name"]
        if not fields["parent"]:
            start = fields["start"]
            self._roots[trace] = start
            for flow_id in self._root_flows.get(stage, ()):
                self._arm(self.flows[flow_id], trace, start)
        flow = self.flows.get(stage)
        if flow is not None:
            root_start = self._roots.get(trace)
            if root_start is None:
                return  # trace predates the engine; nothing to anchor on
            self._resolve(flow, trace, record.time - root_start, record.time)

    def _arm(self, flow: FlowSlo, trace: str, start: float) -> None:
        key = (flow.flow, trace)
        deadline_at = start + flow.deadline_s
        delay = deadline_at - self.runtime.now
        self._pending[key] = self.runtime.call_later(
            max(delay, 0.0), self._overdue, flow, trace, deadline_at
        )

    def _resolve(
        self, flow: FlowSlo, trace: str, latency: float, now: float
    ) -> None:
        key = (flow.flow, trace)
        handle = self._pending.pop(key, None)
        if handle is not None:
            handle.cancel()
        if key in self._expired:
            # Already counted overdue when the timer fired; record the
            # eventual latency for the distribution but not the budget.
            self.sketches[flow.flow].add(latency)
            self.windows[flow.flow].observe(now, latency)
            return
        good = latency <= flow.deadline_s + 1e-9
        self.sketches[flow.flow].add(latency)
        self.windows[flow.flow].observe(now, latency)
        self._events[flow.flow].add(now, good)
        if good:
            self.good[flow.flow] += 1
            if self._registry is not None:
                self._registry.counter("slo.flow.good", flow=flow.flow).inc()
        else:
            self._violation(flow, trace, now, kind="late", latency=latency)
        self._evaluate(flow, now)

    def _overdue(self, flow: FlowSlo, trace: str, deadline_at: float) -> None:
        key = (flow.flow, trace)
        if self._pending.pop(key, None) is None:
            return  # resolved in the meantime
        self._expired[key] = deadline_at
        self.overdue[flow.flow] += 1
        self._events[flow.flow].add(deadline_at, False)
        self._violation(flow, trace, deadline_at, kind="overdue", latency=None)
        self._evaluate(flow, deadline_at)

    def _violation(
        self,
        flow: FlowSlo,
        trace: str,
        now: float,
        kind: str,
        latency: float | None,
    ) -> None:
        self.violations[flow.flow] += 1
        if self._registry is not None:
            self._registry.counter("slo.flow.violations", flow=flow.flow).inc()
        entry: dict[str, Any] = {
            "t": round(now, 9),
            "flow": flow.flow,
            "trace": trace,
            "kind": kind,
            "deadline_s": flow.deadline_s,
        }
        if latency is not None:
            entry["latency_s"] = round(latency, 9)
        if len(self.violation_log) < self.max_violation_log:
            self.violation_log.append(entry)
        self.runtime.tracer.emit(
            now, "slo", SLO_VIOLATION_EVENT, **{k: v for k, v in entry.items() if k != "t"}
        )

    # ------------------------------------------------------------------
    # Burn-rate alerting
    # ------------------------------------------------------------------

    def burn(self, flow_id: str, now: float | None = None) -> tuple[float, float]:
        """``(short, long)`` burn rates for one flow at ``now``."""
        if now is None:
            now = self.runtime.now
        flow = self.flows[flow_id]
        events = self._events[flow_id]
        budget = 1.0 - flow.target
        bad_s, total_s = events.window(now, self.short_window_s)
        bad_l, total_l = events.window(now, self.long_window_s)
        short = bad_s / total_s / budget if total_s else 0.0
        long = bad_l / total_l / budget if total_l else 0.0
        return short, long

    def _evaluate(self, flow: FlowSlo, now: float) -> None:
        short, long = self.burn(flow.flow, now)
        if short >= self.page_burn and long >= self.page_burn:
            state = "page"
        elif long >= self.warn_burn:
            state = "warn"
        else:
            state = "ok"
        previous = self.state[flow.flow]
        if state == previous:
            return
        self.state[flow.flow] = state
        if state == "page":
            self.paged[flow.flow] = True
            self.first_page_at.setdefault(flow.flow, now)
        elif state == "warn":
            self.warned[flow.flow] = True
        alert = {
            "t": round(now, 9),
            "flow": flow.flow,
            "state": state,
            "from": previous,
            "burn_short": round(short, 6),
            "burn_long": round(long, 6),
        }
        self.alerts.append(alert)
        self.runtime.tracer.emit(
            now,
            "slo",
            SLO_ALERT_EVENT,
            flow=flow.flow,
            state=state,
            burn_short=alert["burn_short"],
            burn_long=alert["burn_long"],
        )

    # ------------------------------------------------------------------
    # Status tick: drift watch, watermarks, retained publication
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        now = self.runtime.now
        self.status_ticks += 1
        self._check_drift(now)
        self._update_watermarks(now)
        status = self.status_snapshot(now)
        self.runtime.tracer.emit(now, "slo", SLO_STATUS_EVENT, **status)
        if self._publisher is not None:
            self._publisher(SLO_STATUS_TOPIC, status)
        self._purge(now)
        self.runtime.call_later(self.status_interval_s, self._tick)

    def _check_drift(self, now: float) -> None:
        profiler = getattr(self.runtime, "prof", None)
        model = self._cost_model
        if profiler is None or model is None or not getattr(model, "ops", None):
            return
        from repro.lint.rates import DEFAULT_RECORD_BYTES

        totals: dict[str, list[float]] = {}
        for (node, domain, op), (seconds, count) in profiler.busy.items():
            if domain != "cpu":
                continue
            entry = totals.setdefault(op, [0.0, 0])
            entry[0] += seconds
            entry[1] += count
        for op in sorted(totals):
            if op in self.drift:
                continue
            busy_s, count = totals[op]
            if count < self.drift_min_count:
                continue
            spec = model.ops.get(op)
            if spec is None:
                continue  # RCP231 covers unmodeled ops statically
            observed = busy_s / count
            steady = spec.cost(DEFAULT_RECORD_BYTES, invocation_index=spec.warmup_ops)
            warmup = spec.warmup_extra_s * min(spec.warmup_ops, count) / count
            predicted = (steady + warmup) * model.scale
            if predicted <= 0.0:
                continue
            drift = observed / predicted - 1.0
            if abs(drift) > self.drift_tolerance:
                finding = {
                    "t": round(now, 9),
                    "op": op,
                    "observed_s": round(observed, 9),
                    "predicted_s": round(predicted, 9),
                    "drift": round(drift, 6),
                    "count": int(count),
                }
                self.drift[op] = finding
                self.runtime.tracer.emit(
                    now,
                    "slo",
                    SLO_DRIFT_EVENT,
                    op=op,
                    drift=finding["drift"],
                    observed_s=finding["observed_s"],
                    predicted_s=finding["predicted_s"],
                    count=finding["count"],
                )

    def _update_watermarks(self, now: float) -> None:
        profiler = getattr(self.runtime, "prof", None)
        nodes = getattr(self.runtime, "nodes", None) or {}
        since = max(0.0, now - self.status_interval_s)
        for name in sorted(nodes):
            node = nodes[name]
            cpu = getattr(node, "cpu", None)
            if cpu is None:
                continue
            mark = self.node_watermarks.setdefault(
                name, {"cpu_util": 0.0, "queue_depth": 0.0}
            )
            if profiler is not None and now > since:
                util = profiler.cpu_busy_between(name, since, now) / (now - since)
                if util > mark["cpu_util"]:
                    mark["cpu_util"] = round(util, 9)
            depth = float(cpu.queue_length)
            if depth > mark["queue_depth"]:
                mark["queue_depth"] = depth

    def _purge(self, now: float) -> None:
        horizon = now - self._horizon_s
        for trace, start in [
            (t, s) for t, s in self._roots.items() if s < horizon
        ]:
            del self._roots[trace]
        for key, at in [(k, a) for k, a in self._expired.items() if a < horizon]:
            del self._expired[key]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def status_snapshot(self, now: float | None = None) -> dict[str, Any]:
        """Compact operator-facing snapshot (published retained)."""
        if now is None:
            now = self.runtime.now
        flows: dict[str, Any] = {}
        for flow_id in sorted(self.flows):
            short, long = self.burn(flow_id, now)
            window = self.windows[flow_id].query(now)
            flows[flow_id] = {
                "state": self.state[flow_id],
                "burn_short": round(short, 6),
                "burn_long": round(long, 6),
                "good": self.good[flow_id],
                "violations": self.violations[flow_id],
                "overdue": self.overdue[flow_id],
                "p95_ms": round(window.quantile(95) * 1000.0, 3),
            }
        return {
            "t": round(now, 9),
            "flows": flows,
            "nodes": {
                name: dict(mark)
                for name, mark in sorted(self.node_watermarks.items())
            },
        }

    def report(self) -> dict[str, Any]:
        """Full end-of-run report (the ``repro slo --format json`` body)."""
        flows: dict[str, Any] = {}
        for flow_id in sorted(self.flows):
            flow = self.flows[flow_id]
            sketch = self.sketches[flow_id]
            entry: dict[str, Any] = {
                "deadline_ms": round(flow.deadline_s * 1000.0, 3),
                "target": flow.target,
                "pending_tracked": flow.pending,
                "roots": list(flow.roots),
                "count": sketch.count,
                "good": self.good[flow_id],
                "violations": self.violations[flow_id],
                "overdue": self.overdue[flow_id],
                "state": self.state[flow_id],
                "paged": self.paged[flow_id],
                "warned": self.warned[flow_id],
            }
            if sketch.count:
                entry.update(
                    {
                        "p50_ms": round(sketch.quantile(50) * 1000.0, 3),
                        "p95_ms": round(sketch.quantile(95) * 1000.0, 3),
                        "p99_ms": round(sketch.quantile(99) * 1000.0, 3),
                        "max_ms": round(sketch.maximum * 1000.0, 3),
                    }
                )
            if flow_id in self.first_page_at:
                entry["first_page_at"] = round(self.first_page_at[flow_id], 9)
            flows[flow_id] = entry
        return {
            "flows": flows,
            "alerts": list(self.alerts),
            "violation_log": list(self.violation_log),
            "drift": {op: dict(self.drift[op]) for op in sorted(self.drift)},
            "watermarks": {
                name: dict(mark)
                for name, mark in sorted(self.node_watermarks.items())
            },
        }

    def diagnostics(self) -> list[Diagnostic]:
        """Findings as the shared :class:`Diagnostic` currency."""
        out: list[Diagnostic] = []
        for flow_id in sorted(self.flows):
            where = f"flow {flow_id}"
            if self.paged[flow_id]:
                rule = SLO_RULES["SLO300"]
                at = self.first_page_at.get(flow_id, 0.0)
                out.append(
                    Diagnostic(
                        rule=rule.rule_id,
                        severity=rule.severity,
                        message=(
                            f"deadline burn paged at t={at:.3f}s: "
                            f"{self.violations[flow_id]} violation(s) "
                            f"({self.overdue[flow_id]} overdue) against "
                            f"deadline {self.flows[flow_id].deadline_s * 1000:.0f} ms"
                        ),
                        where=where,
                        hint="inspect slo.alert/slo.violation trace records",
                    )
                )
            elif self.warned[flow_id]:
                rule = SLO_RULES["SLO301"]
                out.append(
                    Diagnostic(
                        rule=rule.rule_id,
                        severity=rule.severity,
                        message=(
                            f"long-window burn exceeded warn threshold "
                            f"({self.violations[flow_id]} violation(s))"
                        ),
                        where=where,
                    )
                )
            elif self.violations[flow_id]:
                rule = SLO_RULES["SLO302"]
                out.append(
                    Diagnostic(
                        rule=rule.rule_id,
                        severity=rule.severity,
                        message=(
                            f"{self.violations[flow_id]} deadline violation(s) "
                            "observed without a sustained burn"
                        ),
                        where=where,
                    )
                )
        for op in sorted(self.drift):
            finding = self.drift[op]
            rule = SLO_RULES["SLO310"]
            out.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"cost-model drift {finding['drift']:+.0%} at "
                        f"t={finding['t']:.3f}s: observed "
                        f"{finding['observed_s'] * 1e3:.3f} ms/op vs model "
                        f"{finding['predicted_s'] * 1e3:.3f} ms/op "
                        f"({finding['count']} invocations)"
                    ),
                    where=f"op {op}",
                    hint="recalibrate or regenerate baselines",
                )
            )
        if self._registry is not None and self._registry.dropped_series:
            rule = SLO_RULES["SLO320"]
            out.append(
                Diagnostic(
                    rule=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"metrics registry dropped {self._registry.dropped_series} "
                        f"series past its cap of {self._registry.max_series} "
                        f"(first: {self._registry.first_dropped_key!r})"
                    ),
                    where="metrics registry",
                    hint="reduce label cardinality or raise max_series",
                )
            )
        return out


def enable_slo(
    runtime: "Runtime",
    recipe: "Recipe | None" = None,
    flows: list[FlowSlo] | None = None,
    cluster: Any | None = None,
    **kwargs: Any,
) -> SloEngine | None:
    """Install the SLO engine on ``runtime`` (idempotent).

    The policy comes from ``flows`` when given, else is derived from
    ``recipe``'s ``deadline_ms`` declarations. With ``cluster`` the
    engine publishes its status snapshots retained on
    ``ifot/ctl/status/slo`` through the management module's client.
    Returns ``None`` when the module kill switch :data:`ENABLED` or the
    ``REPRO_SLO`` environment flag is off.
    """
    if not ENABLED or not flag_enabled("REPRO_SLO"):
        return None
    if runtime.slo is not None:
        return runtime.slo
    if flows is None:
        if recipe is None:
            raise ConfigurationError("enable_slo needs a recipe or explicit flows")
        flows = policy_from_recipe(recipe)
    publisher = kwargs.pop("publisher", None)
    if publisher is None and cluster is not None:
        client = cluster.management.module.client

        def publisher(topic: str, payload: dict[str, Any]) -> None:
            client.publish(topic, payload, retain=True)

    engine = SloEngine(runtime, flows, publisher=publisher, **kwargs)
    runtime.slo = engine
    return engine


def format_flow_summary(
    flows: dict[str, dict[str, Any]],
    deadlines_ms: dict[str, float] | None = None,
) -> str:
    """One-screen per-flow latency table with SLO verdicts.

    ``flows`` is the BENCH schema v3 shape (`flow_latency_summary`):
    ``{stage: {count, p50_ms, p95_ms, p99_ms, max_ms}}``. When a flow
    has a declared deadline, a verdict column compares its observed max
    against it.
    """
    deadlines_ms = deadlines_ms or {}
    header = (
        f"{'flow':<20} {'count':>7} {'p50_ms':>10} {'p95_ms':>10} "
        f"{'p99_ms':>10} {'max_ms':>10} {'deadline':>10}  verdict"
    )
    lines = [header, "-" * len(header)]
    for stage in sorted(flows):
        row = flows[stage]
        deadline = deadlines_ms.get(stage)
        if deadline is None:
            deadline_text, verdict = "-", "-"
        elif row["max_ms"] <= deadline:
            deadline_text = f"{deadline:.0f}"
            verdict = f"OK ({row['max_ms'] / deadline:.1%} of budget)"
        else:
            deadline_text = f"{deadline:.0f}"
            verdict = f"VIOLATED (+{row['max_ms'] - deadline:.1f} ms)"
        lines.append(
            f"{stage:<20} {row['count']:>7} {row['p50_ms']:>10.3f} "
            f"{row['p95_ms']:>10.3f} {row['p99_ms']:>10.3f} "
            f"{row['max_ms']:>10.3f} {deadline_text:>10}  {verdict}"
        )
    return "\n".join(lines)
