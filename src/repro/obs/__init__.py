"""End-to-end observability: flow tracing, metrics, latency breakdown.

The layer's core parts (see ``docs/ARCHITECTURE.md``):

* :mod:`repro.obs.context` — :class:`FlowContext`/:class:`Span`, the
  causal references carried through the middleware in MQTT
  user-properties and on in-process flow records;
* :mod:`repro.obs.metrics` — the instrument registry scraped into the
  trace at sim-time intervals;
* :mod:`repro.obs.breakdown` — offline span-tree reconstruction,
  integrity checks, per-stage latency tables and Chrome export.

Built on top, and imported lazily to keep the core cheap:

* :mod:`repro.obs.sketch` — mergeable fixed-memory latency quantile
  sketches (the SLO engine's distributions);
* :mod:`repro.obs.slo` — the online SLO engine: deadline conformance,
  burn-rate alerting, drift watch, status publication;
* :mod:`repro.obs.export` — Prometheus/OTLP renderings of the metrics
  registry and the real backend's HTTP scrape endpoint.

Instrumentation is zero-cost-when-disabled: every site in the middleware
checks ``runtime.obs is not None`` before allocating anything, and
``runtime.obs`` only becomes non-None through
:func:`enable_observability`, which itself honours the module-level
:data:`ENABLED` kill switch below.
"""

from __future__ import annotations

from repro.obs.breakdown import (
    SpanRecord,
    StageBreakdown,
    canonical_span_lines,
    check_span_integrity,
    decompose_path,
    flow_latency_summary,
    format_stage_table,
    path_to_root,
    span_index,
    spans_from_tracer,
    stage_breakdown,
    to_chrome_trace,
)
from repro.obs.context import SPAN_EVENT, FlowContext, Span
from repro.obs.metrics import MetricsRegistry, metric_key, parse_metric_key
from repro.obs.state import METRICS_EVENT, ObsState, enable_observability

#: Module-level kill switch. When False, :func:`enable_observability` is a
#: no-op and the middleware's ``runtime.obs`` stays ``None``, so the hot
#: path performs exactly one attribute load + identity check per site.
ENABLED: bool = True

__all__ = [
    "ENABLED",
    "FlowContext",
    "Span",
    "SPAN_EVENT",
    "METRICS_EVENT",
    "MetricsRegistry",
    "metric_key",
    "parse_metric_key",
    "ObsState",
    "enable_observability",
    "SpanRecord",
    "StageBreakdown",
    "spans_from_tracer",
    "span_index",
    "check_span_integrity",
    "path_to_root",
    "decompose_path",
    "stage_breakdown",
    "flow_latency_summary",
    "format_stage_table",
    "to_chrome_trace",
    "canonical_span_lines",
]
