"""Metrics registry: counters, gauges and histograms over ``util.stats``.

Instruments are identified by a name plus sorted ``key=value`` labels
(``operator.latency_s{node=module-e,operator=train}``), so per-node and
per-component series coexist in one registry. Registration is
get-or-create and therefore idempotent — a component re-created after a
node restart re-attaches to the same series.

The registry itself never touches the clock; an
:class:`~repro.obs.state.ObsState` scrapes :meth:`MetricsRegistry.snapshot`
at sim-time intervals into the shared :class:`~repro.sim.trace.Tracer`, so
metric samples are ordinary trace records and inherit the trace layer's
determinism and JSONL round-trip.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

from repro.util.stats import RunningStats, percentile

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "metric_key",
    "parse_metric_key",
]

#: Characters that would make a label value ambiguous inside the
#: ``name{k=v,...}`` syntax, escaped with a backslash on the way in.
_ESCAPED = ("\\", ",", "=", "{", "}")


def _escape(value: str) -> str:
    for ch in _ESCAPED:
        value = value.replace(ch, "\\" + ch)
    return value


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Fully-qualified series name: ``name{k1=v1,k2=v2}`` (labels sorted).

    Label keys and values containing ``,``, ``=``, ``{``, ``}`` or ``\\``
    are backslash-escaped so every series key parses back unambiguously
    with :func:`parse_metric_key` (round-trip guaranteed).
    """
    if not labels:
        return name
    inner = ",".join(f"{_escape(k)}={_escape(str(labels[k]))}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key`: ``name{k=v,...}`` -> (name, labels).

    The profiler's exports group sampled series per node by parsing the
    keys back, so this must round-trip exactly — including escaped
    separator characters inside label values.

    >>> parse_metric_key(metric_key("m", {"node": "a,b=c}"}))
    ('m', {'node': 'a,b=c}'})
    """
    if not key.endswith("}"):
        return key, {}
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name = key[:brace]
    inner = key[brace + 1 : -1]
    if not inner:
        return name, {}
    labels: dict[str, str] = {}
    label_key: str | None = None
    part: list[str] = []
    i = 0
    while i < len(inner):
        ch = inner[i]
        if ch == "\\" and i + 1 < len(inner):
            part.append(inner[i + 1])
            i += 2
            continue
        if ch == "=" and label_key is None:
            label_key = "".join(part)
            part = []
        elif ch == ",":
            if label_key is None:
                raise ValueError(f"malformed metric key {key!r}: label without '='")
            labels[label_key] = "".join(part)
            label_key = None
            part = []
        else:
            part.append(ch)
        i += 1
    if label_key is None:
        raise ValueError(f"malformed metric key {key!r}: label without '='")
    labels[label_key] = "".join(part)
    return name, labels


class Counter:
    """Monotone event counter."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time value: either set directly or computed by a callback."""

    __slots__ = ("key", "_value", "fn")

    def __init__(self, key: str, fn: Callable[[], float] | None = None) -> None:
        self.key = key
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


class HistogramMetric:
    """Streaming distribution (Welford) plus bounded quantile samples.

    Welford statistics (count/mean/min/max) are exact. Quantiles come
    from a deterministic strided sample buffer: every ``_stride``-th
    observation is kept, and when the buffer exceeds its cap it is
    decimated 2:1 and the stride doubled — memory stays bounded on a
    constrained device, the retained subsequence is a pure function of
    the observation sequence (no RNG), and for the short experiment runs
    here the buffer never fills, so quantiles are exact in practice.
    """

    __slots__ = ("key", "stats", "_samples", "_stride", "_seen")

    #: Sample buffer cap before 2:1 decimation kicks in.
    MAX_SAMPLES = 8192

    def __init__(self, key: str) -> None:
        self.key = key
        self.stats = RunningStats()
        self._samples: list[float] = []
        self._stride = 1
        self._seen = 0

    def observe(self, value: float) -> None:
        self.stats.add(value)
        self._seen += 1
        if self._seen % self._stride:
            return
        self._samples.append(value)
        if len(self._samples) > self.MAX_SAMPLES:
            self._samples = self._samples[1::2]
            self._stride *= 2

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile of the (possibly decimated) samples."""
        return percentile(self._samples, q)

    def merge(self, other: "HistogramMetric") -> "HistogramMetric":
        """Fold ``other`` into this histogram (parallel aggregation).

        Welford halves merge exactly. The sample buffers are first
        decimated to a common stride (strides are always powers of two
        times the original 1, so the coarser one wins), concatenated
        self-first, then re-decimated under the cap — the result is a
        pure function of the two buffers, no RNG.
        """
        self.stats.merge(other.stats)
        ours, our_stride = self._samples, self._stride
        theirs, their_stride = list(other._samples), other._stride
        while our_stride < their_stride:
            ours = ours[1::2]
            our_stride *= 2
        while their_stride < our_stride:
            theirs = theirs[1::2]
            their_stride *= 2
        merged = list(ours) + theirs
        while len(merged) > self.MAX_SAMPLES:
            merged = merged[1::2]
            our_stride *= 2
        self._samples = merged
        self._stride = our_stride
        self._seen += other._seen
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; :meth:`from_dict` reproduces the instrument."""
        stats = self.stats
        return {
            "key": self.key,
            "count": stats.count,
            "mean": stats.mean,
            "m2": stats._m2,
            "min": stats.minimum if stats.count else None,
            "max": stats.maximum if stats.count else None,
            "samples": list(self._samples),
            "stride": self._stride,
            "seen": self._seen,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HistogramMetric":
        histogram = cls(data["key"])
        stats = histogram.stats
        count = int(data["count"])
        if count:
            stats._count = count
            stats._mean = float(data["mean"])
            stats._m2 = float(data["m2"])
            stats._min = float(data["min"])
            stats._max = float(data["max"])
        histogram._samples = [float(v) for v in data["samples"]]
        histogram._stride = int(data["stride"])
        histogram._seen = int(data["seen"])
        return histogram


class MetricsRegistry:
    """Get-or-create home for every instrument in one runtime.

    Series admission is bounded: once ``max_series`` distinct keys
    exist, new keys stop being stored (the same admission-stop shape as
    the wire-codec topic caches — existing series keep working, a label
    explosion cannot grow memory without bound). Callers still get a
    working instrument back, it is just unregistered; the registry
    counts every such drop and surfaces the total in
    :meth:`snapshot` so scrapes make the overflow visible, and the SLO
    engine raises an ``SLO320`` finding from it.
    """

    #: Default admission cap on distinct series across all instrument kinds.
    DEFAULT_MAX_SERIES = 2048

    def __init__(self, max_series: int | None = DEFAULT_MAX_SERIES) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, HistogramMetric] = {}
        self.max_series = max_series
        self.dropped_series = 0
        self.first_dropped_key: str | None = None

    # ------------------------------------------------------------------
    # Instrument factories (idempotent by fully-qualified name)
    # ------------------------------------------------------------------

    def _admit(self, key: str) -> bool:
        """Admission-stop: may a *new* series named ``key`` be stored?"""
        if self.max_series is None or len(self) < self.max_series:
            return True
        self.dropped_series += 1
        if self.first_dropped_key is None:
            self.first_dropped_key = key
            warnings.warn(
                f"metric cardinality cap reached ({self.max_series} series); "
                f"new series starting with {key!r} are not registered",
                RuntimeWarning,
                stacklevel=3,
            )
        return False

    def counter(self, name: str, **labels: str) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(key)
            if self._admit(key):
                self._counters[key] = instrument
        return instrument

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None, **labels: str
    ) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge(key, fn)
            if self._admit(key):
                self._gauges[key] = instrument
        elif fn is not None:
            instrument.fn = fn  # re-bind after a node restart
        return instrument

    def histogram(self, name: str, **labels: str) -> HistogramMetric:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = HistogramMetric(key)
            if self._admit(key):
                self._histograms[key] = instrument
        return instrument

    def instruments(self) -> list[tuple[str, str, Any]]:
        """Every stored instrument as ``(kind, key, instrument)``, sorted.

        The telemetry exporters (:mod:`repro.obs.export`) need the typed
        instruments, not the flattened :meth:`snapshot` values.
        """
        out: list[tuple[str, str, Any]] = []
        for key in sorted(self._counters):
            out.append(("counter", key, self._counters[key]))
        for key in sorted(self._gauges):
            out.append(("gauge", key, self._gauges[key]))
        for key in sorted(self._histograms):
            out.append(("histogram", key, self._histograms[key]))
        return out

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One flat, sorted ``series -> value`` mapping.

        Counters report their count, gauges their current read (callback
        errors surface as the value staying at the last good read — a
        dead gauge must not kill the scraper), histograms a dict of
        count/mean/min/max plus p50/p95/p99 quantiles.
        """
        out: dict[str, Any] = {}
        for key in sorted(self._counters):
            out[key] = self._counters[key].value
        for key in sorted(self._gauges):
            try:
                out[key] = round(self._gauges[key].read(), 9)
            except Exception:  # noqa: BLE001 - scrape isolation
                continue
        for key in sorted(self._histograms):
            histogram = self._histograms[key]
            stats = histogram.stats
            if stats.count == 0:
                out[key] = {"count": 0}
            else:
                out[key] = {
                    "count": stats.count,
                    "mean": round(stats.mean, 9),
                    "min": round(stats.minimum, 9),
                    "max": round(stats.maximum, 9),
                    "p50": round(histogram.quantile(50), 9),
                    "p95": round(histogram.quantile(95), 9),
                    "p99": round(histogram.quantile(99), 9),
                }
        if self.dropped_series:
            out["obs.meta.dropped_series"] = self.dropped_series
        return out

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
