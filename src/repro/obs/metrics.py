"""Metrics registry: counters, gauges and histograms over ``util.stats``.

Instruments are identified by a name plus sorted ``key=value`` labels
(``operator.latency_s{node=module-e,operator=train}``), so per-node and
per-component series coexist in one registry. Registration is
get-or-create and therefore idempotent — a component re-created after a
node restart re-attaches to the same series.

The registry itself never touches the clock; an
:class:`~repro.obs.state.ObsState` scrapes :meth:`MetricsRegistry.snapshot`
at sim-time intervals into the shared :class:`~repro.sim.trace.Tracer`, so
metric samples are ordinary trace records and inherit the trace layer's
determinism and JSONL round-trip.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.util.stats import RunningStats

__all__ = ["Counter", "Gauge", "HistogramMetric", "MetricsRegistry", "metric_key"]


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Fully-qualified series name: ``name{k1=v1,k2=v2}`` (labels sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotone event counter."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time value: either set directly or computed by a callback."""

    __slots__ = ("key", "_value", "fn")

    def __init__(self, key: str, fn: Callable[[], float] | None = None) -> None:
        self.key = key
        self.fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


class HistogramMetric:
    """Streaming distribution (Welford) of observed values.

    Raw samples are *not* kept — scrapes report count/mean/min/max, which
    is what fits on a constrained device; exact percentiles come from the
    span layer instead.
    """

    __slots__ = ("key", "stats")

    def __init__(self, key: str) -> None:
        self.key = key
        self.stats = RunningStats()

    def observe(self, value: float) -> None:
        self.stats.add(value)


class MetricsRegistry:
    """Get-or-create home for every instrument in one runtime."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, HistogramMetric] = {}

    # ------------------------------------------------------------------
    # Instrument factories (idempotent by fully-qualified name)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(key)
        return instrument

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None, **labels: str
    ) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(key, fn)
        elif fn is not None:
            instrument.fn = fn  # re-bind after a node restart
        return instrument

    def histogram(self, name: str, **labels: str) -> HistogramMetric:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = HistogramMetric(key)
        return instrument

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One flat, sorted ``series -> value`` mapping.

        Counters report their count, gauges their current read (callback
        errors surface as the value staying at the last good read — a
        dead gauge must not kill the scraper), histograms a 4-tuple-ish
        dict of count/mean/min/max.
        """
        out: dict[str, Any] = {}
        for key in sorted(self._counters):
            out[key] = self._counters[key].value
        for key in sorted(self._gauges):
            try:
                out[key] = round(self._gauges[key].read(), 9)
            except Exception:  # noqa: BLE001 - scrape isolation
                continue
        for key in sorted(self._histograms):
            stats = self._histograms[key].stats
            if stats.count == 0:
                out[key] = {"count": 0}
            else:
                out[key] = {
                    "count": stats.count,
                    "mean": round(stats.mean, 9),
                    "min": round(stats.minimum, 9),
                    "max": round(stats.maximum, 9),
                }
        return out

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
