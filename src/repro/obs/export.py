"""Operator-facing telemetry export: Prometheus text, OTLP JSON, HTTP.

The sim side records metric scrapes into the trace; a *real* deployment
needs a scrape surface instead. This module renders one
:class:`~repro.obs.metrics.MetricsRegistry` into the two lingua-franca
formats — the Prometheus text exposition format and an OTLP-style JSON
document — and serves both (plus the SLO engine's report and a
``top``-style plain-text console) over a minimal asyncio HTTP endpoint
attached to an :class:`~repro.runtime.real.AsyncioRuntime`.

The renderers are pure functions of the registry, so they are also used
verbatim on simulated runs (``repro slo`` reports) and in tests without
any network in between.
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry, parse_metric_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.real import AsyncioRuntime

__all__ = [
    "prometheus_text",
    "otlp_json",
    "render_top",
    "MetricsServer",
]

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram quantiles exported as Prometheus/OTLP summaries.
_QUANTILES = (50, 95, 99)


def _prom_name(name: str) -> str:
    """Metric name with every illegal character folded to ``_``."""
    return _NAME_SANITIZE.sub("_", name)


def _prom_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{_prom_name(k)}="{_prom_label_value(labels[k])}"' for k in sorted(labels)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format (v0.0.4)."""
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for kind, key, instrument in registry.instruments():
        raw_name, labels = parse_metric_key(key)
        name = _prom_name(raw_name)
        if kind == "counter":
            declare(f"{name}_total", "counter")
            lines.append(f"{name}_total{_prom_labels(labels)} {instrument.value}")
        elif kind == "gauge":
            try:
                value = instrument.read()
            except Exception:  # noqa: BLE001 - scrape isolation, like snapshot()
                continue
            declare(name, "gauge")
            lines.append(f"{name}{_prom_labels(labels)} {value!r}")
        else:  # histogram -> summary
            declare(name, "summary")
            stats = instrument.stats
            for q in _QUANTILES:
                value = instrument.quantile(q) if stats.count else 0.0
                quantile_label = f'quantile="{q / 100}"'
                lines.append(
                    f"{name}{_prom_labels(labels, quantile_label)} {value!r}"
                )
            total = stats.mean * stats.count if stats.count else 0.0
            lines.append(f"{name}_sum{_prom_labels(labels)} {total!r}")
            lines.append(f"{name}_count{_prom_labels(labels)} {stats.count}")
    if registry.dropped_series:
        declare("obs_meta_dropped_series_total", "counter")
        lines.append(f"obs_meta_dropped_series_total {registry.dropped_series}")
    return "\n".join(lines) + "\n"


def _otlp_attributes(labels: dict[str, str]) -> list[dict[str, Any]]:
    return [
        {"key": k, "value": {"stringValue": labels[k]}} for k in sorted(labels)
    ]


def otlp_json(
    registry: MetricsRegistry, service_name: str = "repro"
) -> dict[str, Any]:
    """OTLP-style JSON: resourceMetrics → scopeMetrics → metrics.

    Counters become monotonic cumulative sums, gauges gauges, histograms
    summaries with the same quantiles the sim scraper records. The shape
    follows OTLP/JSON conventions closely enough for collectors that
    speak it, without claiming byte-level protobuf-JSON conformance.
    """
    metrics: list[dict[str, Any]] = []
    for kind, key, instrument in registry.instruments():
        name, labels = parse_metric_key(key)
        attributes = _otlp_attributes(labels)
        if kind == "counter":
            metrics.append(
                {
                    "name": name,
                    "sum": {
                        "dataPoints": [
                            {"asDouble": float(instrument.value), "attributes": attributes}
                        ],
                        "aggregationTemporality": 2,
                        "isMonotonic": True,
                    },
                }
            )
        elif kind == "gauge":
            try:
                value = float(instrument.read())
            except Exception:  # noqa: BLE001 - scrape isolation
                continue
            metrics.append(
                {
                    "name": name,
                    "gauge": {
                        "dataPoints": [{"asDouble": value, "attributes": attributes}]
                    },
                }
            )
        else:
            stats = instrument.stats
            metrics.append(
                {
                    "name": name,
                    "summary": {
                        "dataPoints": [
                            {
                                "attributes": attributes,
                                "count": stats.count,
                                "sum": stats.mean * stats.count if stats.count else 0.0,
                                "quantileValues": [
                                    {
                                        "quantile": q / 100,
                                        "value": instrument.quantile(q)
                                        if stats.count
                                        else 0.0,
                                    }
                                    for q in _QUANTILES
                                ],
                            }
                        ]
                    },
                }
            )
    return {
        "resourceMetrics": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": service_name},
                        }
                    ]
                },
                "scopeMetrics": [
                    {"scope": {"name": "repro.obs"}, "metrics": metrics}
                ],
            }
        ]
    }


def render_top(
    registry: MetricsRegistry | None,
    engine: Any | None = None,
    now: float | None = None,
) -> str:
    """The ``repro top`` console: nodes, hot series, SLO flow states."""
    lines: list[str] = []
    if now is not None:
        lines.append(f"t={now:.3f}s")
    if engine is not None:
        lines.append("flows:")
        status = engine.status_snapshot(now)
        for flow_id, entry in status["flows"].items():
            lines.append(
                f"  {flow_id:<20} {entry['state']:>5}  "
                f"burn {entry['burn_short']:>8.2f}/{entry['burn_long']:<8.2f} "
                f"good {entry['good']:>6}  viol {entry['violations']:>4} "
                f"p95 {entry['p95_ms']:>9.3f} ms"
            )
        if status["nodes"]:
            lines.append("node watermarks:")
            for node, mark in status["nodes"].items():
                lines.append(
                    f"  {node:<20} cpu {mark['cpu_util']:>7.1%}  "
                    f"queue {mark['queue_depth']:>5.0f}"
                )
    if registry is not None:
        lines.append("series:")
        for series, value in registry.snapshot().items():
            if isinstance(value, dict):
                count = value.get("count", 0)
                p95 = value.get("p95", 0.0)
                lines.append(f"  {series:<44} n={count} p95={p95}")
            else:
                lines.append(f"  {series:<44} {value}")
    return "\n".join(lines) + "\n"


class MetricsServer:
    """Minimal HTTP scrape endpoint over an :class:`AsyncioRuntime` loop.

    Routes:

    * ``GET /metrics`` — Prometheus text format;
    * ``GET /metrics.json`` — OTLP-style JSON;
    * ``GET /slo.json`` — the SLO engine's full report (``{}`` without one);
    * ``GET /top`` — plain-text console body (what ``repro top`` polls);
    * ``GET /healthz`` — liveness.

    The listening socket binds synchronously at :meth:`start` (the
    runtime's loop is idle between ``run_for`` calls), so tests can read
    the ephemeral port before serving begins; requests are answered
    while the loop runs.
    """

    def __init__(
        self,
        runtime: "AsyncioRuntime",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "MetricsServer":
        loop = self.runtime.loop
        self._server = loop.run_until_complete(
            asyncio.start_server(self._handle, self.host, self.port)
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        loop = self.runtime.loop
        if not loop.is_closed():
            loop.run_until_complete(self._server.wait_closed())
        self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def _registry(self) -> MetricsRegistry:
        obs = self.runtime.obs
        if obs is not None and obs.metrics is not None:
            return obs.metrics
        return MetricsRegistry()

    def _respond(self, path: str) -> tuple[int, str, str]:
        if path == "/metrics":
            return 200, "text/plain; version=0.0.4", prometheus_text(self._registry())
        if path == "/metrics.json":
            return 200, "application/json", json.dumps(otlp_json(self._registry()))
        if path == "/slo.json":
            engine = self.runtime.slo
            report = engine.report() if engine is not None else {}
            return 200, "application/json", json.dumps(report)
        if path == "/top":
            return 200, "text/plain", render_top(
                self._registry(), self.runtime.slo, now=self.runtime.now
            )
        if path == "/healthz":
            return 200, "text/plain", "ok\n"
        return 404, "text/plain", f"unknown path {path}\n"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request.split()
            path = parts[1].decode("ascii", "replace") if len(parts) >= 2 else "/"
            status, content_type, body = self._respond(path)
            payload = body.encode("utf-8")
            reason = "OK" if status == 200 else "Not Found"
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        finally:
            writer.close()
