"""Offline span-tree analysis: integrity checks and latency breakdown.

This is the reporting half of the observability layer: it consumes
``obs.span`` records from a live :class:`~repro.sim.trace.Tracer` or a
JSONL dump, rebuilds the span trees, and produces

* **integrity checks** — orphan/cyclic spans, hop monotonicity, interval
  sanity (used by the property tests and the golden-trace suite);
* **per-stage latency tables** — avg/max/percentile columns in the shape
  of the paper's Tables II/III, with each stage's *own* service time
  separated from the *gap* (queueing + network) before it;
* **Chrome trace_event export** — load a dump into ``chrome://tracing``
  / Perfetto for visual inspection.

Everything operates on plain records; nothing here imports the live
middleware, so dumps from any run (chaos included) can be analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.obs.context import SPAN_EVENT
from repro.sim.trace import TraceRecord, Tracer
from repro.util.stats import LatencyRecorder

__all__ = [
    "SpanRecord",
    "StageBreakdown",
    "spans_from_tracer",
    "span_index",
    "check_span_integrity",
    "path_to_root",
    "decompose_path",
    "stage_breakdown",
    "flow_latency_summary",
    "format_stage_table",
    "to_chrome_trace",
    "canonical_span_lines",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as reconstructed from the trace."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    node: str
    incarnation: int
    hop: int
    start: float
    end: float
    links: tuple[str, ...] = ()
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def stage(self) -> str:
        """Preferred stage label: the task id when the span has one."""
        task = self.fields.get("task")
        return str(task) if task else self.name


_CORE_KEYS = {"trace", "span", "parent", "name", "hop", "inc", "start", "links"}


def _span_from_record(record: TraceRecord) -> SpanRecord:
    fields = record.fields
    return SpanRecord(
        trace_id=str(fields["trace"]),
        span_id=str(fields["span"]),
        parent_id=str(fields.get("parent", "")),
        name=str(fields["name"]),
        node=record.source,
        incarnation=int(fields.get("inc", 0)),
        hop=int(fields.get("hop", 0)),
        start=float(fields["start"]),
        end=record.time,
        links=tuple(str(link) for link in fields.get("links", ())),
        fields={k: v for k, v in fields.items() if k not in _CORE_KEYS},
    )


def spans_from_tracer(tracer: Tracer) -> list[SpanRecord]:
    """All finished spans, in emission order."""
    return [_span_from_record(r) for r in tracer if r.event == SPAN_EVENT]


def span_index(spans: Iterable[SpanRecord]) -> dict[str, SpanRecord]:
    return {span.span_id: span for span in spans}


# ---------------------------------------------------------------------------
# Integrity
# ---------------------------------------------------------------------------


def check_span_integrity(spans: list[SpanRecord]) -> list[str]:
    """Structural violations in a span set (empty list = healthy).

    Checked: unique ids; every referenced parent/link exists; roots are
    hop 0; children sit exactly one hop below their parent in the same
    trace; intervals are well-formed and causally ordered (a child cannot
    start before its parent started); parent chains terminate (no cycles).
    """
    problems: list[str] = []
    index: dict[str, SpanRecord] = {}
    for span in spans:
        if span.span_id in index:
            problems.append(f"duplicate span id {span.span_id}")
        index[span.span_id] = span
    for span in spans:
        if span.end < span.start:
            problems.append(f"{span.span_id}: end {span.end} before start {span.start}")
        for link in span.links:
            if link not in index:
                problems.append(f"{span.span_id}: dangling link {link}")
        if not span.parent_id:
            if span.hop != 0:
                problems.append(f"root {span.span_id} has hop {span.hop}")
            continue
        parent = index.get(span.parent_id)
        if parent is None:
            problems.append(f"orphan span {span.span_id} (parent {span.parent_id})")
            continue
        if parent.trace_id != span.trace_id:
            problems.append(
                f"{span.span_id}: trace {span.trace_id} != parent's {parent.trace_id}"
            )
        if span.hop != parent.hop + 1:
            problems.append(
                f"{span.span_id}: hop {span.hop} not parent hop {parent.hop} + 1"
            )
        if span.start < parent.start:
            problems.append(
                f"{span.span_id}: starts {span.start} before parent {parent.start}"
            )
    for span in spans:
        seen = {span.span_id}
        cursor = span
        while cursor.parent_id:
            cursor = index.get(cursor.parent_id)  # type: ignore[assignment]
            if cursor is None:
                break
            if cursor.span_id in seen:
                problems.append(f"cycle through {span.span_id}")
                break
            seen.add(cursor.span_id)
    return problems


def path_to_root(
    span: SpanRecord, index: dict[str, SpanRecord]
) -> list[SpanRecord] | None:
    """Root-first parent chain ending at ``span``; None if truncated."""
    chain = [span]
    cursor = span
    while cursor.parent_id:
        parent = index.get(cursor.parent_id)
        if parent is None:
            return None
        chain.append(parent)
        cursor = parent
    chain.reverse()
    return chain


def decompose_path(
    span: SpanRecord, index: dict[str, SpanRecord]
) -> list[tuple[str, float, float]] | None:
    """Per-stage ``(stage, gap_before, own_duration)`` along the root path.

    The telescoping identity ``leaf.end - root.start ==
    sum(gaps) + sum(durations)`` holds exactly — queueing and network
    time between hops is precisely the gap between a parent's end and
    its child's start.
    """
    chain = path_to_root(span, index)
    if chain is None:
        return None
    out: list[tuple[str, float, float]] = []
    previous_end = chain[0].start
    for hop in chain:
        out.append((hop.stage, hop.start - previous_end, hop.duration))
        previous_end = hop.end
    return out


# ---------------------------------------------------------------------------
# Latency breakdown
# ---------------------------------------------------------------------------


@dataclass
class StageBreakdown:
    """Per-stage service/gap distributions plus end-to-end latencies.

    All recorders hold **milliseconds** (the paper's unit).
    """

    stages: dict[str, LatencyRecorder] = field(default_factory=dict)
    gaps: dict[str, LatencyRecorder] = field(default_factory=dict)
    end_to_end: dict[str, LatencyRecorder] = field(default_factory=dict)
    spans: int = 0
    traces: int = 0
    truncated: int = 0

    def _recorder(self, table: dict[str, LatencyRecorder], key: str) -> LatencyRecorder:
        recorder = table.get(key)
        if recorder is None:
            recorder = table[key] = LatencyRecorder(key)
        return recorder


def stage_breakdown(
    spans: list[SpanRecord],
    stage_of: Callable[[SpanRecord], str] | None = None,
    leaves: Iterable[str] | None = None,
) -> StageBreakdown:
    """Aggregate a span set into per-stage and end-to-end distributions.

    ``stage_of`` overrides the stage label (default: task id, else span
    name). ``leaves`` restricts end-to-end rows to the named stages; by
    default every span with no children is a leaf (its path's total
    latency is attributed to its stage).
    """
    label = stage_of if stage_of is not None else (lambda s: s.stage)
    breakdown = StageBreakdown(spans=len(spans))
    index = span_index(spans)
    has_children = {span.parent_id for span in spans if span.parent_id}
    breakdown.traces = len({span.trace_id for span in spans})
    wanted = set(leaves) if leaves is not None else None
    for span in spans:
        stage = label(span)
        breakdown._recorder(breakdown.stages, stage).add(span.duration * 1000.0)
        if span.parent_id:
            parent = index.get(span.parent_id)
            if parent is not None:
                breakdown._recorder(breakdown.gaps, stage).add(
                    (span.start - parent.end) * 1000.0
                )
        is_leaf = span.span_id not in has_children
        if wanted is not None:
            is_leaf = stage in wanted
        if is_leaf:
            chain = path_to_root(span, index)
            if chain is None:
                breakdown.truncated += 1
                continue
            breakdown._recorder(breakdown.end_to_end, stage).add(
                (span.end - chain[0].start) * 1000.0
            )
    return breakdown


def flow_latency_summary(breakdown: StageBreakdown) -> dict[str, dict[str, float]]:
    """Per-flow end-to-end latency summary, keyed by leaf stage.

    Each entry carries ``count`` and the ``p50/p95/p99/max`` latency in
    milliseconds. This is the measured half of the latency-bound
    soundness gate: BENCH baselines embed it (schema v3, ``sim.flows``)
    and ``repro lint --deadline --validate`` compares each flow's
    observed max against the static worst-case bound (RCP243) and its
    p99 against the bound's tightness (RCP244).
    """
    summary: dict[str, dict[str, float]] = {}
    for stage in sorted(breakdown.end_to_end):
        recorder = breakdown.end_to_end[stage]
        summary[stage] = {
            "count": recorder.count,
            "p50_ms": recorder.percentile(50),
            "p95_ms": recorder.percentile(95),
            "p99_ms": recorder.percentile(99),
            "max_ms": recorder.maximum,
        }
    return summary


def format_stage_table(breakdown: StageBreakdown, title: str = "") -> str:
    """Render the per-stage table (avg/max columns like Tables II/III).

    One row per stage: the stage's own service time and the queue/network
    gap that preceded it, then end-to-end rows for each leaf stage.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'Stage':<24} | {'N':>6} | {'Avg(ms)':>9} | {'p95(ms)':>9} | "
        f"{'Max(ms)':>9} | {'Gap avg(ms)':>11}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for stage in sorted(breakdown.stages):
        own = breakdown.stages[stage]
        gap = breakdown.gaps.get(stage)
        gap_avg = f"{gap.average:>11.3f}" if gap is not None else f"{'-':>11}"
        lines.append(
            f"{stage:<24} | {own.count:>6} | {own.average:>9.3f} | "
            f"{own.percentile(95):>9.3f} | {own.maximum:>9.3f} | {gap_avg}"
        )
    if breakdown.end_to_end:
        lines.append("")
        lines.append(
            f"{'End-to-end (sensing ->)':<24} | {'N':>6} | {'Avg(ms)':>9} | "
            f"{'p95(ms)':>9} | {'Max(ms)':>9}"
        )
        for stage in sorted(breakdown.end_to_end):
            rec = breakdown.end_to_end[stage]
            lines.append(
                f"{stage:<24} | {rec.count:>6} | {rec.average:>9.3f} | "
                f"{rec.percentile(95):>9.3f} | {rec.maximum:>9.3f}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome trace_event export
# ---------------------------------------------------------------------------


def to_chrome_trace(spans: list[SpanRecord]) -> dict[str, Any]:
    """Chrome ``trace_event`` JSON (load in chrome://tracing / Perfetto).

    Nodes map to process ids, traces to thread ids, both assigned in
    sorted order so the export is deterministic. Times are microseconds.
    """
    nodes = sorted({span.node for span in spans})
    traces = sorted({span.trace_id for span in spans})
    pid_of = {node: i + 1 for i, node in enumerate(nodes)}
    tid_of = {trace: i + 1 for i, trace in enumerate(traces)}
    events: list[dict[str, Any]] = []
    for node in nodes:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid_of[node],
                "tid": 0,
                "args": {"name": node},
            }
        )
    for span in spans:
        args = {
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "hop": span.hop,
            "inc": span.incarnation,
        }
        args.update({k: v for k, v in sorted(span.fields.items())})
        base = {
            "name": span.name,
            "pid": pid_of[span.node],
            "tid": tid_of[span.trace_id],
            "ts": round(span.start * 1e6, 3),
            "args": args,
        }
        if span.duration > 0:
            events.append({**base, "ph": "X", "dur": round(span.duration * 1e6, 3)})
        else:
            events.append({**base, "ph": "i", "s": "t"})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# Canonical digests (golden-trace tests)
# ---------------------------------------------------------------------------


def canonical_span_lines(spans: list[SpanRecord]) -> list[str]:
    """Stable one-line-per-span rendering for digesting span trees.

    Sorted by (trace, start, span id) so the digest reflects the tree,
    not emission interleaving; floats use ``repr`` (exact and stable
    across CPython 3.10-3.12).
    """
    ordered = sorted(spans, key=lambda s: (s.trace_id, s.start, s.span_id))
    return [
        f"{s.trace_id}|{s.span_id}|{s.parent_id}|{s.name}|{s.node}|{s.incarnation}"
        f"|{s.hop}|{s.start!r}|{s.end!r}|{','.join(s.links)}"
        f"|{sorted(s.fields.items())!r}"
        for s in ordered
    ]


def breakdown_from_jsonl(path: str | Path, **kwargs: Any) -> StageBreakdown:
    """Convenience: rebuild spans from a JSONL dump and aggregate."""
    return stage_breakdown(spans_from_tracer(Tracer.from_jsonl(path)), **kwargs)
