"""Flow tracing contexts and spans.

A *trace* follows one sensor reading (and everything derived from it)
hop-by-hop through the middleware: sampling, operator processing, MQTT
publish, broker routing, delivery, windowing, training. Each hop is a
*span*; spans form a tree rooted at the sensing instant (window/merge
operators fold several sub-trees together and record the extra parents as
``links``).

The :class:`FlowContext` is the part that travels: a compact, JSON-ready
reference to the span that produced a message, carried in MQTT message
user-properties (the ``headers`` dict) and on in-process
:class:`~repro.core.flow.FlowRecord` instances. Everything here is
deterministic — span and trace identifiers come from the runtime's
sequential :class:`~repro.util.ids.IdGenerator`, never from ``uuid`` or
wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["FlowContext", "Span", "SPAN_EVENT"]

#: Trace event name under which finished spans are recorded.
SPAN_EVENT = "obs.span"


@dataclass(frozen=True)
class FlowContext:
    """Causal reference to one span, small enough to ride in headers.

    Attributes
    ----------
    trace_id:
        Identifier of the whole span tree (one per root sensing event).
    span_id:
        Identifier of the span this context points at.
    parent_id:
        The span's parent (empty string for roots) — carried so a
        receiver can reason about causality without the full trace.
    hop:
        Number of spans between this one and the root; strictly
        increases along any parent chain.
    """

    trace_id: str
    span_id: str
    parent_id: str = ""
    hop: int = 0

    def to_wire(self) -> dict[str, Any]:
        """Compact JSON-ready form for MQTT user-properties."""
        return {"t": self.trace_id, "s": self.span_id, "p": self.parent_id, "h": self.hop}

    @classmethod
    def from_wire(cls, data: Any) -> "FlowContext | None":
        """Parse :meth:`to_wire` output; None for malformed input."""
        if not isinstance(data, dict):
            return None
        try:
            return cls(
                trace_id=str(data["t"]),
                span_id=str(data["s"]),
                parent_id=str(data.get("p", "")),
                hop=int(data.get("h", 0)),
            )
        except (KeyError, TypeError, ValueError):
            return None


@dataclass
class Span:
    """One open span; finished via :meth:`repro.obs.state.ObsState.finish`.

    ``links`` are span ids of *additional* parents beyond ``ctx.parent_id``
    (window/merge operators fold several causal chains into one output).
    """

    ctx: FlowContext
    name: str
    node: str
    incarnation: int
    start: float
    links: tuple[str, ...] = ()
    fields: dict[str, Any] = field(default_factory=dict)
