"""Observability state attached to a runtime.

``Runtime.obs`` is ``None`` by default; every instrumentation site in the
middleware guards with ``if runtime.obs is not None`` and allocates
nothing when it is. :func:`enable_observability` installs an
:class:`ObsState`, which owns:

* span bookkeeping — deterministic trace/span ids from the runtime's
  sequential id generator, finished spans emitted as ``obs.span`` trace
  records (see :mod:`repro.obs.context`);
* the :class:`~repro.obs.metrics.MetricsRegistry`, plus a sim-time
  scraper that samples every instrument into ``obs.metrics`` trace
  records at a fixed interval.

Determinism contract: with the same seed and topology, two runs produce
byte-identical trace dumps — nothing here reads wall-clock, ``random`` or
``uuid``, and all iteration over registries is sorted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.context import SPAN_EVENT, FlowContext, Span
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Runtime
    from repro.runtime.node import Node

__all__ = ["ObsState", "enable_observability", "METRICS_EVENT"]

#: Trace event name under which metric scrapes are recorded.
METRICS_EVENT = "obs.metrics"


class ObsState:
    """Per-runtime observability: span factory + metrics registry."""

    def __init__(
        self,
        runtime: "Runtime",
        scrape_interval_s: float = 1.0,
        metrics: bool = True,
    ) -> None:
        self.runtime = runtime
        self.metrics: MetricsRegistry | None = MetricsRegistry() if metrics else None
        self.scrape_interval_s = scrape_interval_s
        self.spans_emitted = 0
        self.scrapes = 0
        self._scraping = False
        if self.metrics is not None and scrape_interval_s > 0:
            self._scraping = True
            runtime.call_later(scrape_interval_s, self._scrape)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def start_span(
        self,
        name: str,
        node: "Node",
        parent: FlowContext | None = None,
        start: float | None = None,
        links: tuple[str, ...] = (),
        **fields: Any,
    ) -> Span:
        """Open a span; roots (``parent=None``) also open a new trace."""
        span_id = f"sp-{self.runtime.ids.next_int('obs.span')}"
        if parent is None:
            trace_id = f"tr-{self.runtime.ids.next_int('obs.trace')}"
            ctx = FlowContext(trace_id, span_id, parent_id="", hop=0)
        else:
            ctx = FlowContext(
                parent.trace_id, span_id, parent_id=parent.span_id, hop=parent.hop + 1
            )
        return Span(
            ctx=ctx,
            name=name,
            node=node.name,
            incarnation=node.incarnation,
            start=self.runtime.now if start is None else start,
            links=tuple(links),
            fields=fields,
        )

    def finish(self, span: Span, **fields: Any) -> FlowContext:
        """Close ``span`` now, emit its trace record, return its context."""
        self.spans_emitted += 1
        extra = dict(span.fields)
        extra.update(fields)
        if span.links:
            extra["links"] = list(span.links)
        self.runtime.tracer.emit(
            self.runtime.now,
            span.node,
            SPAN_EVENT,
            trace=span.ctx.trace_id,
            span=span.ctx.span_id,
            parent=span.ctx.parent_id,
            name=span.name,
            hop=span.ctx.hop,
            inc=span.incarnation,
            start=span.start,
            **extra,
        )
        return span.ctx

    def point(
        self,
        name: str,
        node: "Node",
        parent: FlowContext | None = None,
        links: tuple[str, ...] = (),
        **fields: Any,
    ) -> FlowContext:
        """Zero-duration span (a causal hop without a measured interval)."""
        return self.finish(self.start_span(name, node, parent, links=links, **fields))

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def register_node(self, node: "Node") -> None:
        """Idempotently attach the per-node instruments (queue depth, CPU
        service time). Called from ``Component.__init__`` so any node that
        hosts software is covered, including nodes added after enable."""
        registry = self.metrics
        if registry is None:
            return
        cpu = node.cpu
        if cpu is None:
            return
        registry.gauge(
            "node.cpu.queue_depth", fn=lambda: float(cpu.queue_length), node=node.name
        )
        registry.gauge(
            "node.cpu.busy_s", fn=lambda: cpu.stats.busy_time, node=node.name
        )
        registry.gauge(
            "node.cpu.service_mean_s",
            fn=lambda: cpu.service_times.mean if cpu.service_times.count else 0.0,
            node=node.name,
        )

    def _scrape(self) -> None:
        if not self._scraping or self.metrics is None:
            return
        self.scrapes += 1
        self.runtime.tracer.emit(
            self.runtime.now, "obs", METRICS_EVENT, m=self.metrics.snapshot()
        )
        self.runtime.call_later(self.scrape_interval_s, self._scrape)

    def stop_scraping(self) -> None:
        self._scraping = False


def enable_observability(
    runtime: "Runtime",
    scrape_interval_s: float = 1.0,
    metrics: bool = True,
) -> ObsState | None:
    """Install observability on ``runtime`` (idempotent).

    Returns the installed :class:`ObsState`, or ``None`` when the
    module-level kill switch :data:`repro.obs.ENABLED` is off — callers
    never need to re-check the flag themselves.
    """
    import repro.obs as obs_module

    if not obs_module.ENABLED:
        return None
    if runtime.obs is not None:
        return runtime.obs
    state = ObsState(runtime, scrape_interval_s=scrape_interval_s, metrics=metrics)
    runtime.obs = state
    if state.metrics is not None:
        wlan = getattr(runtime, "wlan", None)
        if wlan is not None:
            state.metrics.gauge("wlan.airtime_share", fn=wlan.utilization)
        nodes = getattr(runtime, "nodes", None)
        if nodes:
            for name in sorted(nodes):
                state.register_node(nodes[name])
    return state
