"""CPU resources: FIFO service queues over the simulation kernel.

A Pi-class neuron module executes middleware work (MQTT routing, feature
extraction, model updates) one job at a time per core. Modelling the CPU as a
single-server (or k-server) FIFO queue makes queueing delay — the effect that
dominates the paper's Tables II/III above 20 Hz — emerge from first
principles instead of being hard-coded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SimulationError
from repro.sim.kernel import SimKernel
from repro.util.stats import RunningStats
from repro.util.validate import require_non_negative, require_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.base import Runtime

__all__ = ["CpuResource", "ResourceStats"]


@dataclass(slots=True)
class _Job:
    cost: float
    on_done: Callable[[], None] | None
    label: str
    submitted_at: float


@dataclass
class ResourceStats:
    """Aggregate service statistics for one :class:`CpuResource`."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_dropped: int = 0
    busy_time: float = 0.0
    max_queue_length: int = 0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` during which at least one server was busy.

        With multiple servers this counts aggregate service time and may
        exceed 1.0; divide by the server count for per-server utilization.
        """
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class CpuResource:
    """A k-server FIFO queue with deterministic service order.

    Jobs are ``(cost, on_done)`` pairs; ``on_done`` fires when the job's
    service time has elapsed. ``speed`` scales costs — a node with
    ``speed=2.0`` serves every job in half its nominal cost, letting one cost
    model describe heterogeneous hardware.

    ``queue_limit`` bounds the number of *waiting* jobs. When the queue is
    full a newly submitted job is dropped on the floor (its ``on_done``
    never fires) — the fate of QoS 0 messages on an overloaded device.
    Bounded queues are what make end-to-end latency *plateau* instead of
    growing without bound once the offered load exceeds capacity, the
    regime the paper's 40 and 80 Hz rows sit in.
    """

    def __init__(
        self,
        kernel: SimKernel,
        name: str = "cpu",
        servers: int = 1,
        speed: float = 1.0,
        queue_limit: int | None = None,
        runtime: "Runtime | None" = None,
    ) -> None:
        self._kernel = kernel
        self.name = name
        self._servers = require_positive(servers, "servers")
        self._speed = require_positive(speed, "speed")
        if queue_limit is not None:
            require_positive(queue_limit, "queue_limit")
        self.queue_limit = queue_limit
        self._queue: deque[_Job] = deque()
        self._busy = 0
        self.stats = ResourceStats()
        self.wait_times = RunningStats()
        self.service_times = RunningStats()
        # Optional owner; the profiler hook (``runtime.prof``) brackets
        # every service through it. Standalone resources stay unprofiled.
        self._runtime = runtime
        self._window_peak_queue = 0

    @property
    def speed(self) -> float:
        return self._speed

    @property
    def servers(self) -> int:
        return self._servers

    def _prof(self) -> Any:
        runtime = self._runtime
        return None if runtime is None else runtime.prof

    @property
    def busy_servers(self) -> int:
        return self._busy

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not counting those in service)."""
        return len(self._queue)

    def submit(
        self,
        cost: float,
        on_done: Callable[[], None] | None = None,
        label: str = "job",
    ) -> None:
        """Enqueue a job needing ``cost`` seconds of nominal CPU time.

        Zero-cost jobs still round-trip through the queue so event ordering
        stays consistent, but consume no virtual time when the CPU is idle.
        """
        if not cost >= 0:  # noqa: SIM201 - also catches NaN
            require_non_negative(cost, "cost")
        stats = self.stats
        queue = self._queue
        job = _Job(cost, on_done, label, self._kernel.now)
        stats.jobs_submitted += 1
        if (
            self.queue_limit is not None
            and self._busy >= self._servers
            and len(queue) >= self.queue_limit
        ):
            stats.jobs_dropped += 1
            return
        queue.append(job)
        depth = len(queue)
        if depth > stats.max_queue_length:
            stats.max_queue_length = depth
        if depth > self._window_peak_queue:
            self._window_peak_queue = depth
        self._dispatch()

    def execute(self, cost: float, fn: Callable[..., Any], *args: Any) -> None:
        """Convenience: run ``fn(*args)`` after ``cost`` CPU seconds."""
        self.submit(cost, lambda: fn(*args), label=getattr(fn, "__name__", "fn"))

    def take_queue_watermark(self) -> int:
        """Peak waiting-queue depth since the last call (then reset).

        The profiler's sampler reads this once per sampling window, so
        transient bursts between samples stay visible in the timeline.
        """
        peak = self._window_peak_queue
        self._window_peak_queue = len(self._queue)
        return peak

    def _dispatch(self) -> None:
        queue = self._queue
        while self._busy < self._servers and queue:
            job = queue.popleft()
            self._busy += 1
            now = self._kernel.now
            self.wait_times.add(now - job.submitted_at)
            service = job.cost / self._speed
            self.service_times.add(service)
            self.stats.busy_time += service
            runtime = self._runtime
            prof = None if runtime is None else runtime.prof
            if prof is not None:
                prof.on_cpu_start(self.name, job.label, service)
            self._kernel.schedule(service, self._complete, job)

    def _complete(self, job: _Job) -> None:
        if self._busy <= 0:
            raise SimulationError(f"{self.name}: completion with no busy server")
        self._busy -= 1
        self.stats.jobs_completed += 1
        runtime = self._runtime
        prof = None if runtime is None else runtime.prof
        if prof is not None:
            prof.on_cpu_end(self.name, job.label, job.cost / self._speed)
        if job.on_done is not None:
            job.on_done()
        self._dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CpuResource({self.name!r}, busy={self._busy}/{self._servers}, "
            f"queued={len(self._queue)})"
        )
