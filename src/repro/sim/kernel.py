"""The discrete-event kernel: a virtual clock and its pending-event set.

The kernel is single-threaded and deterministic. Time only advances inside
:meth:`SimKernel.run` / :meth:`SimKernel.step`, by jumping to the timestamp of
the next scheduled event. All higher layers (network medium, CPU resources,
MQTT broker, middleware classes) are plain callbacks scheduled here.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ClockError
from repro.sim.events import EventHandle, EventQueue

__all__ = ["SimKernel"]


class SimKernel:
    """Deterministic discrete-event scheduler with a virtual clock.

    >>> k = SimKernel()
    >>> fired = []
    >>> _ = k.schedule(5.0, fired.append, "a")
    >>> _ = k.schedule(2.0, fired.append, "b")
    >>> k.run()
    >>> (fired, k.now)
    (['b', 'a'], 5.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for tests and sanity checks)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled husks)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ClockError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        return self._queue.push(time, callback, args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at the current instant, after pending
        same-instant events already queued."""
        return self._queue.push(self._now, callback, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event. Returns False when drained."""
        handle = self._queue.pop()
        if handle is None:
            return False
        self._now = handle.time
        self._events_processed += 1
        handle.callback(*handle.args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so repeated ``run(until=...)``
        calls behave like wall-clock epochs.
        """
        if self._running:
            raise ClockError("kernel is already running (re-entrant run call)")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain; guard against runaway loops."""
        self.run(max_events=max_events)
        if self._queue.peek_time() is not None:
            raise ClockError(
                f"kernel still busy after {max_events} events — runaway schedule?"
            )

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        if self._running:
            raise ClockError("cannot reset a running kernel")
        self._queue.clear()
        self._now = float(start_time)
        self._events_processed = 0
