"""The discrete-event kernel: a virtual clock and its pending-event set.

The kernel is single-threaded and deterministic. Time only advances inside
:meth:`SimKernel.run` / :meth:`SimKernel.step`, by jumping to the timestamp of
the next scheduled event. All higher layers (network medium, CPU resources,
MQTT broker, middleware classes) are plain callbacks scheduled here.

Hot path
--------
``run`` drives an inlined pop/fire loop over the queue's tuple heap rather
than calling :meth:`step` per event, and fired handles are offered back to
the queue's free-list pool (see :mod:`repro.sim.events`).  Monitor hooks
follow the one-attribute-load gate pattern used throughout the runtime
(``repro.runtime.state``): the ``monitor`` setter caches one bound method
per hook (or ``None``), so a detached monitor costs nothing and a monitor
that declares a hook uninteresting (``wants_scheduled`` /
``wants_begin`` / ``wants_end`` = False) skips that hook's call entirely —
the profiler, for example, only pays for ``event_begin``.
"""

from __future__ import annotations

import random
from heapq import heappop
from typing import Any, Callable, Protocol

from repro.errors import ClockError
from repro.sim.events import EventHandle, EventQueue

__all__ = ["CompositeMonitor", "KernelMonitor", "SimKernel"]


class KernelMonitor(Protocol):
    """Observer of the kernel's schedule, attached via ``kernel.monitor``.

    The schedule sanitizer (:mod:`repro.san`) implements this to build a
    happens-before graph: ``event_scheduled`` links every new event to the
    event during whose execution it was created (its *schedule parent*),
    and ``event_begin``/``event_end`` bracket handler execution so state
    accesses can be attributed to the running event.  ``kernel.monitor``
    is ``None`` in normal operation and every hook site guards on that, so
    the monitoring cost when disabled is one attribute load per event.

    A monitor may additionally expose boolean attributes
    ``wants_scheduled`` / ``wants_begin`` / ``wants_end`` (default: True)
    to declare a hook it never acts on; the kernel then skips that hook's
    dispatch entirely.
    """

    def event_scheduled(
        self, handle: EventHandle, parent: EventHandle | None
    ) -> None: ...

    def event_begin(self, handle: EventHandle) -> None: ...

    def event_end(self, handle: EventHandle) -> None: ...


class CompositeMonitor:
    """Fan-out :class:`KernelMonitor`: forwards every hook to each child.

    ``kernel.monitor`` is a single slot; when two observers need the
    schedule at once (the sanitizer and the profiler), they are chained
    through one of these. Children are invoked in attachment order for
    ``event_scheduled``/``event_begin`` and in reverse order for
    ``event_end``, so brackets nest.  Children that declare a hook
    uninteresting via ``wants_*`` are left out of that hook's dispatch
    list, and the composite's own ``wants_*`` flags reflect whether any
    child remains — so hook skipping composes through the chain.
    """

    __slots__ = (
        "monitors",
        "_scheduled",
        "_begin",
        "_end",
        "wants_scheduled",
        "wants_begin",
        "wants_end",
    )

    def __init__(self, monitors: tuple[KernelMonitor, ...]) -> None:
        self.monitors = monitors
        self._scheduled = tuple(
            m.event_scheduled
            for m in monitors
            if getattr(m, "wants_scheduled", True)
        )
        self._begin = tuple(
            m.event_begin for m in monitors if getattr(m, "wants_begin", True)
        )
        self._end = tuple(
            m.event_end
            for m in reversed(monitors)
            if getattr(m, "wants_end", True)
        )
        self.wants_scheduled = bool(self._scheduled)
        self.wants_begin = bool(self._begin)
        self.wants_end = bool(self._end)

    def event_scheduled(
        self, handle: EventHandle, parent: EventHandle | None
    ) -> None:
        for hook in self._scheduled:
            hook(handle, parent)

    def event_begin(self, handle: EventHandle) -> None:
        for hook in self._begin:
            hook(handle)

    def event_end(self, handle: EventHandle) -> None:
        for hook in self._end:
            hook(handle)


class SimKernel:
    """Deterministic discrete-event scheduler with a virtual clock.

    >>> k = SimKernel()
    >>> fired = []
    >>> _ = k.schedule(5.0, fired.append, "a")
    >>> _ = k.schedule(2.0, fired.append, "b")
    >>> k.run()
    >>> (fired, k.now)
    (['b', 'a'], 5.0)
    """

    def __init__(self, start_time: float = 0.0, pool: bool | None = None) -> None:
        self._now = float(start_time)
        self._queue = EventQueue(pool=pool)
        self._running = False
        self._events_processed = 0
        self._monitor: KernelMonitor | None = None
        #: Cached bound hooks (None when detached or uninterested).
        self._hook_scheduled: Callable[..., None] | None = None
        self._hook_begin: Callable[..., None] | None = None
        self._hook_end: Callable[..., None] | None = None
        self._current: EventHandle | None = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for tests and sanity checks)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled husks)."""
        return len(self._queue)

    @property
    def current_event(self) -> EventHandle | None:
        """The event whose handler is executing right now, if any."""
        return self._current

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    @property
    def monitor(self) -> KernelMonitor | None:
        """The attached :class:`KernelMonitor`; ``None`` disables all hooks."""
        return self._monitor

    @monitor.setter
    def monitor(self, monitor: KernelMonitor | None) -> None:
        self._monitor = monitor
        if monitor is None:
            self._hook_scheduled = None
            self._hook_begin = None
            self._hook_end = None
            return
        self._hook_scheduled = (
            monitor.event_scheduled
            if getattr(monitor, "wants_scheduled", True)
            else None
        )
        self._hook_begin = (
            monitor.event_begin if getattr(monitor, "wants_begin", True) else None
        )
        self._hook_end = (
            monitor.event_end if getattr(monitor, "wants_end", True) else None
        )

    # ------------------------------------------------------------------
    # Schedule perturbation (see repro.san)
    # ------------------------------------------------------------------

    def perturb_ties(self, seed: int | None) -> None:
        """Install seeded permutation of equal-timestamp tie-breaking.

        With a seed, events scheduled from now on pop in a seeded
        pseudo-random order among equal timestamps instead of FIFO (the
        timestamps themselves are untouched, and the permuted schedule is
        itself exactly reproducible from the seed — see the ordering
        contract in :mod:`repro.sim.events`).  ``None`` restores FIFO.
        Only the sanitizer's perturbation replay uses this; it must be
        called before the events of interest are scheduled.
        """
        self._queue.set_perturbation(
            None if seed is None else random.Random(seed)
        )

    @property
    def perturbed(self) -> bool:
        """Whether equal-timestamp perturbation is currently installed."""
        return self._queue.perturbed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ClockError(f"cannot schedule in the past (delay={delay})")
        handle = self._queue.push(self._now + delay, callback, args)
        hook = self._hook_scheduled
        if hook is not None:
            hook(handle, self._current)
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = self._queue.push(time, callback, args)
        hook = self._hook_scheduled
        if hook is not None:
            hook(handle, self._current)
        return handle

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at the current instant, after pending
        same-instant events already queued."""
        handle = self._queue.push(self._now, callback, args)
        hook = self._hook_scheduled
        if hook is not None:
            hook(handle, self._current)
        return handle

    def schedule_epilogue(
        self,
        callback: Callable[..., None],
        *args: Any,
        delay: float = 0.0,
        priority: int = 0,
    ) -> EventHandle:
        """Run ``callback(*args)`` at ``now + delay``, after **every**
        normal event scheduled for that instant — including ones not queued
        yet, and regardless of tie-break perturbation.  Epilogues at one
        instant run in ``priority`` order (then FIFO within a priority).

        This is the flush half of the buffer-then-flush pattern (e.g. the
        WLAN medium collects same-instant transmits and flushes them onto
        the channel in canonical order, at priority 0), which makes
        same-instant fan-in schedule-invariant by construction.  Higher
        priorities are for work that must deterministically follow those
        flushes — e.g. chaos fault application (priority 1), so a fault at
        *t* lands after the instant's normal traffic under every schedule.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule in the past (delay={delay})")
        handle = self._queue.push(
            self._now + delay, callback, args, epilogue=True, priority=priority
        )
        hook = self._hook_scheduled
        if hook is not None:
            hook(handle, self._current)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event. Returns False when drained."""
        queue = self._queue
        handle = queue.pop()
        if handle is None:
            return False
        self._now = handle.time
        self._events_processed += 1
        if self._monitor is None:
            handle.callback(*handle.args)
            queue.release(handle)
            return True
        self._current = handle
        hook = self._hook_begin
        if hook is not None:
            hook(handle)
        try:
            handle.callback(*handle.args)
        finally:
            hook = self._hook_end
            if hook is not None:
                hook(handle)
            self._current = None
        queue.release(handle)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so repeated ``run(until=...)``
        calls behave like wall-clock epochs.
        """
        if self._running:
            raise ClockError("kernel is already running (re-entrant run call)")
        self._running = True
        queue = self._queue
        heap = queue._heap
        release = queue.release
        pop = heappop
        executed = 0
        try:
            if self._monitor is None:
                # Fast path: no hooks, inlined pop/fire/release loop.
                while True:
                    if max_events is not None and executed >= max_events:
                        break
                    while heap and heap[0][3].cancelled:
                        handle = pop(heap)[3]
                        release(handle)
                    if not heap:
                        break
                    if until is not None and heap[0][0] > until:
                        break
                    handle = pop(heap)[3]
                    self._now = handle.time
                    self._events_processed += 1
                    handle.callback(*handle.args)
                    executed += 1
                    release(handle)
            elif self._hook_end is None and self._hook_scheduled is None:
                # Begin-only monitor (e.g. the profiler): no end bracket to
                # guarantee and nothing reads ``_current`` (the scheduled
                # hook, its only consumer, is off), so the per-event
                # try/finally and current-event bookkeeping are skipped —
                # same shape as the fast path plus one hook call.
                hook_begin = self._hook_begin
                while True:
                    if max_events is not None and executed >= max_events:
                        break
                    while heap and heap[0][3].cancelled:
                        handle = pop(heap)[3]
                        release(handle)
                    if not heap:
                        break
                    if until is not None and heap[0][0] > until:
                        break
                    handle = pop(heap)[3]
                    self._now = handle.time
                    self._events_processed += 1
                    if hook_begin is not None:
                        hook_begin(handle)
                    handle.callback(*handle.args)
                    executed += 1
                    release(handle)
            else:
                hook_begin = self._hook_begin
                hook_end = self._hook_end
                while True:
                    if max_events is not None and executed >= max_events:
                        break
                    while heap and heap[0][3].cancelled:
                        handle = pop(heap)[3]
                        release(handle)
                    if not heap:
                        break
                    if until is not None and heap[0][0] > until:
                        break
                    handle = pop(heap)[3]
                    self._now = handle.time
                    self._events_processed += 1
                    self._current = handle
                    if hook_begin is not None:
                        hook_begin(handle)
                    try:
                        handle.callback(*handle.args)
                    finally:
                        if hook_end is not None:
                            hook_end(handle)
                        self._current = None
                    executed += 1
                    release(handle)
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain; guard against runaway loops."""
        self.run(max_events=max_events)
        if self._queue.peek_time() is not None:
            raise ClockError(
                f"kernel still busy after {max_events} events — runaway schedule?"
            )

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        if self._running:
            raise ClockError("cannot reset a running kernel")
        self._queue.clear()
        self._now = float(start_time)
        self._events_processed = 0
