"""The discrete-event kernel: a virtual clock and its pending-event set.

The kernel is single-threaded and deterministic. Time only advances inside
:meth:`SimKernel.run` / :meth:`SimKernel.step`, by jumping to the timestamp of
the next scheduled event. All higher layers (network medium, CPU resources,
MQTT broker, middleware classes) are plain callbacks scheduled here.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Protocol

from repro.errors import ClockError
from repro.sim.events import EventHandle, EventQueue

__all__ = ["CompositeMonitor", "KernelMonitor", "SimKernel"]


class KernelMonitor(Protocol):
    """Observer of the kernel's schedule, attached via ``kernel.monitor``.

    The schedule sanitizer (:mod:`repro.san`) implements this to build a
    happens-before graph: ``event_scheduled`` links every new event to the
    event during whose execution it was created (its *schedule parent*),
    and ``event_begin``/``event_end`` bracket handler execution so state
    accesses can be attributed to the running event.  ``kernel.monitor``
    is ``None`` in normal operation and every hook site guards on that, so
    the monitoring cost when disabled is one attribute load per event.
    """

    def event_scheduled(
        self, handle: EventHandle, parent: EventHandle | None
    ) -> None: ...

    def event_begin(self, handle: EventHandle) -> None: ...

    def event_end(self, handle: EventHandle) -> None: ...


class CompositeMonitor:
    """Fan-out :class:`KernelMonitor`: forwards every hook to each child.

    ``kernel.monitor`` is a single slot; when two observers need the
    schedule at once (the sanitizer and the profiler), they are chained
    through one of these. Children are invoked in attachment order for
    ``event_scheduled``/``event_begin`` and in reverse order for
    ``event_end``, so brackets nest.
    """

    __slots__ = ("monitors",)

    def __init__(self, monitors: tuple[KernelMonitor, ...]) -> None:
        self.monitors = monitors

    def event_scheduled(
        self, handle: EventHandle, parent: EventHandle | None
    ) -> None:
        for monitor in self.monitors:
            monitor.event_scheduled(handle, parent)

    def event_begin(self, handle: EventHandle) -> None:
        for monitor in self.monitors:
            monitor.event_begin(handle)

    def event_end(self, handle: EventHandle) -> None:
        for monitor in reversed(self.monitors):
            monitor.event_end(handle)


class SimKernel:
    """Deterministic discrete-event scheduler with a virtual clock.

    >>> k = SimKernel()
    >>> fired = []
    >>> _ = k.schedule(5.0, fired.append, "a")
    >>> _ = k.schedule(2.0, fired.append, "b")
    >>> k.run()
    >>> (fired, k.now)
    (['b', 'a'], 5.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._events_processed = 0
        #: Optional :class:`KernelMonitor`; ``None`` disables all hooks.
        self.monitor: KernelMonitor | None = None
        self._current: EventHandle | None = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for tests and sanity checks)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled husks)."""
        return len(self._queue)

    @property
    def current_event(self) -> EventHandle | None:
        """The event whose handler is executing right now, if any."""
        return self._current

    # ------------------------------------------------------------------
    # Schedule perturbation (see repro.san)
    # ------------------------------------------------------------------

    def perturb_ties(self, seed: int | None) -> None:
        """Install seeded permutation of equal-timestamp tie-breaking.

        With a seed, events scheduled from now on pop in a seeded
        pseudo-random order among equal timestamps instead of FIFO (the
        timestamps themselves are untouched, and the permuted schedule is
        itself exactly reproducible from the seed — see the ordering
        contract in :mod:`repro.sim.events`).  ``None`` restores FIFO.
        Only the sanitizer's perturbation replay uses this; it must be
        called before the events of interest are scheduled.
        """
        self._queue.set_perturbation(
            None if seed is None else random.Random(seed)
        )

    @property
    def perturbed(self) -> bool:
        """Whether equal-timestamp perturbation is currently installed."""
        return self._queue.perturbed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ClockError(f"cannot schedule in the past (delay={delay})")
        return self._push(self._now + delay, callback, args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        return self._push(time, callback, args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at the current instant, after pending
        same-instant events already queued."""
        return self._push(self._now, callback, args)

    def schedule_epilogue(
        self,
        callback: Callable[..., None],
        *args: Any,
        delay: float = 0.0,
        priority: int = 0,
    ) -> EventHandle:
        """Run ``callback(*args)`` at ``now + delay``, after **every**
        normal event scheduled for that instant — including ones not queued
        yet, and regardless of tie-break perturbation.  Epilogues at one
        instant run in ``priority`` order (then FIFO within a priority).

        This is the flush half of the buffer-then-flush pattern (e.g. the
        WLAN medium collects same-instant transmits and flushes them onto
        the channel in canonical order, at priority 0), which makes
        same-instant fan-in schedule-invariant by construction.  Higher
        priorities are for work that must deterministically follow those
        flushes — e.g. chaos fault application (priority 1), so a fault at
        *t* lands after the instant's normal traffic under every schedule.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule in the past (delay={delay})")
        return self._push(
            self._now + delay, callback, args, epilogue=True, priority=priority
        )

    def _push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        epilogue: bool = False,
        priority: int = 0,
    ) -> EventHandle:
        handle = self._queue.push(
            time, callback, args, epilogue=epilogue, priority=priority
        )
        if self.monitor is not None:
            self.monitor.event_scheduled(handle, self._current)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event. Returns False when drained."""
        handle = self._queue.pop()
        if handle is None:
            return False
        self._now = handle.time
        self._events_processed += 1
        if self.monitor is None:
            handle.callback(*handle.args)
            return True
        self._current = handle
        self.monitor.event_begin(handle)
        try:
            handle.callback(*handle.args)
        finally:
            self.monitor.event_end(handle)
            self._current = None
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so repeated ``run(until=...)``
        calls behave like wall-clock epochs.
        """
        if self._running:
            raise ClockError("kernel is already running (re-entrant run call)")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain; guard against runaway loops."""
        self.run(max_events=max_events)
        if self._queue.peek_time() is not None:
            raise ClockError(
                f"kernel still busy after {max_events} events — runaway schedule?"
            )

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        if self._running:
            raise ClockError("cannot reset a running kernel")
        self._queue.clear()
        self._now = float(start_time)
        self._events_processed = 0
