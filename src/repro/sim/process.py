"""Generator-style simulation processes.

Most of the system is callback-driven, but scenario scripts ("publish for 30
seconds, then kill node E, then wait for recovery") read far better as
sequential code. A :class:`Process` wraps a generator that yields:

* a ``float``/``int`` — sleep that many seconds of virtual time;
* a :class:`Signal` — suspend until someone calls :meth:`Signal.fire`.

Processes may also ``return`` a value, retrievable via :attr:`Process.result`
once :attr:`Process.done` is True.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import ProcessError
from repro.sim.kernel import SimKernel

__all__ = ["Signal", "Process"]


class Signal:
    """One-shot wakeup that processes can wait on and callbacks can fire.

    A signal carries an optional value; firing twice is an error (create a
    fresh signal per occurrence — they are cheap).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the signal fires (immediately if
        it already has)."""
        if self.fired:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking all waiters in registration order."""
        if self.fired:
            raise ProcessError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "pending"
        return f"Signal({self.name!r}, {state})"


class Process:
    """Drives a generator over a :class:`SimKernel`.

    >>> k = SimKernel()
    >>> log = []
    >>> def script():
    ...     log.append(("start", k.now))
    ...     yield 2.5
    ...     log.append(("after sleep", k.now))
    ...     return "done"
    >>> p = Process(k, script())
    >>> k.run()
    >>> (log, p.result)
    ([('start', 0.0), ('after sleep', 2.5)], 'done')
    """

    def __init__(
        self,
        kernel: SimKernel,
        generator: Generator[Any, Any, Any],
        name: str = "process",
    ) -> None:
        self._kernel = kernel
        self._gen = generator
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self._on_done: list[Callable[["Process"], None]] = []
        # Start on the next kernel tick so construction order does not leak
        # into event order at t=now.
        kernel.call_soon(self._advance, None)

    def on_done(self, callback: Callable[["Process"], None]) -> None:
        """Register ``callback(process)`` for when the generator finishes."""
        if self.done:
            callback(self)
        else:
            self._on_done.append(callback)

    def _advance(self, send_value: Any) -> None:
        if self.done:
            return
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - surfaced via .error
            self._finish(error=exc)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._finish(
                    error=ProcessError(f"{self.name}: negative sleep {yielded}")
                )
                return
            self._kernel.schedule(float(yielded), self._advance, None)
        elif isinstance(yielded, Signal):
            yielded.wait(lambda value: self._kernel.call_soon(self._advance, value))
        else:
            self._finish(
                error=ProcessError(
                    f"{self.name}: process yielded unsupported {type(yielded).__name__}"
                )
            )

    def _finish(
        self, result: Any = None, error: BaseException | None = None
    ) -> None:
        self.done = True
        self.result = result
        self.error = error
        callbacks, self._on_done = self._on_done, []
        for callback in callbacks:
            callback(self)
        if error is not None and not callbacks:
            raise ProcessError(f"process {self.name!r} failed: {error}") from error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"
