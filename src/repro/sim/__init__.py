"""Discrete-event simulation substrate.

The paper evaluates the middleware on six Raspberry Pis and a wireless LAN;
we do not have that hardware, so benchmarks run on this deterministic
discrete-event kernel instead (see DESIGN.md §2). The kernel is deliberately
small and classical:

* :class:`~repro.sim.kernel.SimKernel` — virtual clock + pending-event set.
* :class:`~repro.sim.process.Process` — optional generator-style processes
  for scenario scripting (``yield delay`` / ``yield signal``).
* :class:`~repro.sim.resources.CpuResource` — single-server FIFO queue used
  to model a Pi-class CPU; queueing delay under load is what produces the
  paper's latency blow-up between 20 and 40 Hz.
* :class:`~repro.sim.trace.Tracer` — structured event trace for debugging
  and assertions in tests.
"""

from repro.sim.events import EventHandle, EventQueue
from repro.sim.kernel import SimKernel
from repro.sim.process import Process, Signal
from repro.sim.resources import CpuResource, ResourceStats
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "CpuResource",
    "EventHandle",
    "EventQueue",
    "Process",
    "ResourceStats",
    "Signal",
    "SimKernel",
    "TraceRecord",
    "Tracer",
]
