"""Pending-event set for the discrete-event kernel.

Ordering contract
-----------------
The queue is a binary heap whose total order is the explicit triple

    ``(time, tiebreak, seq)``

* ``time`` — the virtual timestamp the event fires at;
* ``tiebreak`` — ``0.0`` for every normal event in normal operation, so
  it is inert; a *perturbed* queue (see :meth:`EventQueue.set_perturbation`)
  assigns each normal event a seeded pseudo-random value in ``[0, 1)``
  here instead, which permutes the pop order of equal-timestamp events
  while leaving the timestamps themselves untouched.  *Epilogue* events
  always use ``_EPILOGUE_BASE + priority`` (≥ 2.0), so they sort after
  every normal event at their instant — perturbed or not — and among
  themselves by priority;
* ``seq`` — a monotonic insertion sequence number, allocated by
  :meth:`EventQueue.push` and never reused.

With the default ``tiebreak == 0.0`` the order degenerates to
``(time, seq)``: **events scheduled for the same instant fire in exactly
the order they were scheduled (FIFO)**.  The rest of the system relies on
that for determinism, and the schedule sanitizer (:mod:`repro.san`)
relies on the *explicit* ``seq`` tiebreaker — never on incidental
comparison of callbacks or argument tuples — so that any two runs of the
same program produce the same schedule.  ``seq`` is also the event's
identity in the sanitizer's happens-before graph.

Under perturbation the order is still a deterministic function of the
(queue contents, perturbation seed) pair — ``seq`` remains the final
tiebreaker — so a perturbed replay is itself exactly reproducible.  Any
tie-break permutation yields a *causally valid* schedule: an event can
only be popped after the event that scheduled it has executed, because it
is not in the heap before then.

Cancellation is lazy: handles are flagged and skipped when popped, the
standard heapq idiom.

Hot-path layout
---------------
The heap stores ``(time, tiebreak, seq, handle)`` tuples rather than bare
handles: tuple comparison runs entirely in C and, because ``seq`` is
unique, never falls through to comparing handles.  ``EventHandle.__lt__``
is kept only for explicit ``sort_key`` comparisons in tests.

Event pooling
-------------
Fired (and popped-cancelled) handles can be *recycled* through a free
list, eliminating the dominant allocation in the simulation hot path.
Recycling a handle that user code still references would be unsound: a
later ``cancel()`` through the stale reference would cancel an unrelated
event.  The pool therefore only accepts a handle when
``sys.getrefcount`` proves the releasing call-chain holds the *only*
remaining references — any handle retained by a timer list, an in-flight
retry, or a test harness stays un-pooled forever.  That check is exact on
CPython; on other implementations pooling is disabled entirely.
``REPRO_EVENT_POOL=0`` force-disables it for differential testing.
"""

from __future__ import annotations

import heapq
import random
import sys
from typing import Any, Callable

from repro.util.flags import flag_enabled

__all__ = ["EventHandle", "EventQueue", "pooling_default"]

#: Tiebreak base reserved for *epilogue* events: an epilogue's tiebreak is
#: ``_EPILOGUE_BASE + priority``, so every epilogue sorts after every
#: normal event at the same timestamp (whose tiebreak is at most 1.0),
#: under perturbation included, and epilogues of different priority sort
#: among themselves by priority. See :meth:`EventQueue.push`.
_EPILOGUE_BASE = 2.0

#: Upper bound on pooled handles per queue; beyond this, released handles
#: are simply dropped (the pool is a cache, not an arena).
_POOL_CAP = 4096

class _ReleaseProbe:
    """Measures ``sys.getrefcount`` for the exact release call shape.

    The safety check in :meth:`EventQueue.release` compares against the
    refcount a handle has when the releasing call-chain (caller local →
    method argument → ``getrefcount`` argument) holds the *only*
    references.  That baseline depends on CPython's calling convention,
    which has shifted between minor versions, so it is probed at import
    with an identical call shape rather than hard-coded.  Any external
    holder can only *raise* the count, so an equality check against the
    probed baseline errs on the side of never recycling.
    """

    __slots__ = ()

    def release(self, handle: Any) -> int:
        return sys.getrefcount(handle)


def _probe_release_refs() -> int:
    probe = _ReleaseProbe()
    handle = object()
    return probe.release(handle)


#: ``sys.getrefcount`` at the release site when the releasing chain holds
#: the only references (probed; 3 on CPython 3.10–3.12).
_RELEASE_REFS = _probe_release_refs()


def pooling_default() -> bool:
    """Whether new queues pool event handles by default.

    True only on CPython (the refcount safety check is exact there) and
    when ``REPRO_EVENT_POOL`` is not ``0``.
    """
    if sys.implementation.name != "cpython":
        return False
    return flag_enabled("REPRO_EVENT_POOL")


class EventHandle:
    """Cancellable reference to one scheduled callback."""

    __slots__ = ("time", "seq", "tiebreak", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        tiebreak: float = 0.0,
    ) -> None:
        self.time = time
        self.seq = seq
        self.tiebreak = tiebreak
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True
        # Drop references so cancelled events pinned in the heap don't keep
        # large closures alive.
        self.callback = _noop
        self.args = ()

    def sort_key(self) -> tuple[float, float, int]:
        """The explicit ordering triple (see the module docstring)."""
        return (self.time, self.tiebreak, self.seq)

    @property
    def is_epilogue(self) -> bool:
        """Whether this is an end-of-instant epilogue event (guaranteed to
        fire after every normal event at its timestamp, even perturbed)."""
        return self.tiebreak >= _EPILOGUE_BASE

    @property
    def epilogue_priority(self) -> int | None:
        """This epilogue's priority, or ``None`` for a normal event."""
        if self.tiebreak < _EPILOGUE_BASE:
            return None
        return int(self.tiebreak - _EPILOGUE_BASE)

    def __lt__(self, other: "EventHandle") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class EventQueue:
    """Min-heap of scheduled events with deterministic ordering.

    See the module docstring for the ordering contract and the heap-entry
    layout. ``pool=None`` picks the platform default (see
    :func:`pooling_default`).
    """

    __slots__ = ("_heap", "_seq", "_perturb", "_pool", "_pooling")

    def __init__(self, pool: bool | None = None) -> None:
        #: Heap of ``(time, tiebreak, seq, handle)`` entries.
        self._heap: list[tuple[float, float, int, EventHandle]] = []
        self._seq = 0
        self._perturb: random.Random | None = None
        self._pool: list[EventHandle] = []
        self._pooling = pooling_default() if pool is None else bool(pool)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def pooling(self) -> bool:
        """Whether fired handles are recycled through the free list."""
        return self._pooling

    @property
    def pooled(self) -> int:
        """Number of handles currently parked in the free list."""
        return len(self._pool)

    def set_perturbation(self, rng: random.Random | None) -> None:
        """Install (or, with ``None``, remove) equal-timestamp perturbation.

        While installed, every subsequently pushed event draws its
        ``tiebreak`` from ``rng`` instead of the constant ``0.0``, so
        same-instant events pop in a seeded pseudo-random order rather than
        FIFO.  Events already in the heap keep the tiebreak they were
        pushed with.  Used by the schedule sanitizer's perturbation replay
        (:mod:`repro.san`); normal runs never call this.
        """
        self._perturb = rng

    @property
    def perturbed(self) -> bool:
        return self._perturb is not None

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        epilogue: bool = False,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at ``time``; return its handle.

        ``epilogue=True`` marks an *end-of-instant* event: its tiebreak is
        ``_EPILOGUE_BASE + priority``, so it pops only after every normal
        event at the same timestamp — perturbed or not — and after every
        epilogue of lower ``priority`` there.  Epilogues sharing a priority
        pop FIFO by ``seq``.  (A normal event pushed *while* an epilogue
        runs still precedes any epilogue pushed later; the contract is only
        meaningful for the buffer-then-flush pattern, where the epilogue
        schedules strictly-future work.)
        """
        if epilogue:
            if priority < 0:
                raise ValueError(f"epilogue priority must be >= 0, got {priority}")
            tiebreak = _EPILOGUE_BASE + priority
        elif self._perturb is None:
            tiebreak = 0.0
        else:
            tiebreak = self._perturb.random()
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.seq = seq
            handle.tiebreak = tiebreak
            handle.callback = callback
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(time, seq, callback, args, tiebreak=tiebreak)
        heapq.heappush(self._heap, (time, tiebreak, seq, handle))
        return handle

    def release(self, handle: EventHandle) -> None:
        """Offer a fired (or popped-cancelled) handle back to the pool.

        Only the kernel calls this, immediately after executing (or
        discarding) a popped event.  The handle is recycled only when the
        refcount proves no one else holds it — see the module docstring.
        """
        if (
            self._pooling
            and len(self._pool) < _POOL_CAP
            and sys.getrefcount(handle) == _RELEASE_REFS
        ):
            handle.callback = _noop
            handle.args = ()
            self._pool.append(handle)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        self._discard_cancelled()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> EventHandle | None:
        """Pop the next live event, or None if none remain."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]

    def _discard_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            handle = heapq.heappop(heap)[3]
            self.release(handle)

    def clear(self) -> None:
        self._heap.clear()
