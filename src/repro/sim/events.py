"""Pending-event set for the discrete-event kernel.

Ordering contract
-----------------
The queue is a binary heap whose total order is the explicit triple

    ``(time, tiebreak, seq)``

* ``time`` — the virtual timestamp the event fires at;
* ``tiebreak`` — ``0.0`` for every normal event in normal operation, so
  it is inert; a *perturbed* queue (see :meth:`EventQueue.set_perturbation`)
  assigns each normal event a seeded pseudo-random value in ``[0, 1)``
  here instead, which permutes the pop order of equal-timestamp events
  while leaving the timestamps themselves untouched.  *Epilogue* events
  always use ``_EPILOGUE_BASE + priority`` (≥ 2.0), so they sort after
  every normal event at their instant — perturbed or not — and among
  themselves by priority;
* ``seq`` — a monotonic insertion sequence number, allocated by
  :meth:`EventQueue.push` and never reused.

With the default ``tiebreak == 0.0`` the order degenerates to
``(time, seq)``: **events scheduled for the same instant fire in exactly
the order they were scheduled (FIFO)**.  The rest of the system relies on
that for determinism, and the schedule sanitizer (:mod:`repro.san`)
relies on the *explicit* ``seq`` tiebreaker — never on incidental
comparison of callbacks or argument tuples — so that any two runs of the
same program produce the same schedule.  ``seq`` is also the event's
identity in the sanitizer's happens-before graph.

Under perturbation the order is still a deterministic function of the
(queue contents, perturbation seed) pair — ``seq`` remains the final
tiebreaker — so a perturbed replay is itself exactly reproducible.  Any
tie-break permutation yields a *causally valid* schedule: an event can
only be popped after the event that scheduled it has executed, because it
is not in the heap before then.

Cancellation is lazy: handles are flagged and skipped when popped, the
standard heapq idiom.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable

__all__ = ["EventHandle", "EventQueue"]

#: Tiebreak base reserved for *epilogue* events: an epilogue's tiebreak is
#: ``_EPILOGUE_BASE + priority``, so every epilogue sorts after every
#: normal event at the same timestamp (whose tiebreak is at most 1.0),
#: under perturbation included, and epilogues of different priority sort
#: among themselves by priority. See :meth:`EventQueue.push`.
_EPILOGUE_BASE = 2.0


class EventHandle:
    """Cancellable reference to one scheduled callback."""

    __slots__ = ("time", "seq", "tiebreak", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        tiebreak: float = 0.0,
    ) -> None:
        self.time = time
        self.seq = seq
        self.tiebreak = tiebreak
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True
        # Drop references so cancelled events pinned in the heap don't keep
        # large closures alive.
        self.callback = _noop
        self.args = ()

    def sort_key(self) -> tuple[float, float, int]:
        """The explicit ordering triple (see the module docstring)."""
        return (self.time, self.tiebreak, self.seq)

    @property
    def is_epilogue(self) -> bool:
        """Whether this is an end-of-instant epilogue event (guaranteed to
        fire after every normal event at its timestamp, even perturbed)."""
        return self.tiebreak >= _EPILOGUE_BASE

    @property
    def epilogue_priority(self) -> int | None:
        """This epilogue's priority, or ``None`` for a normal event."""
        if self.tiebreak < _EPILOGUE_BASE:
            return None
        return int(self.tiebreak - _EPILOGUE_BASE)

    def __lt__(self, other: "EventHandle") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class EventQueue:
    """Min-heap of :class:`EventHandle` with deterministic ordering.

    See the module docstring for the ordering contract.
    """

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._perturb: random.Random | None = None

    def __len__(self) -> int:
        return len(self._heap)

    def set_perturbation(self, rng: random.Random | None) -> None:
        """Install (or, with ``None``, remove) equal-timestamp perturbation.

        While installed, every subsequently pushed event draws its
        ``tiebreak`` from ``rng`` instead of the constant ``0.0``, so
        same-instant events pop in a seeded pseudo-random order rather than
        FIFO.  Events already in the heap keep the tiebreak they were
        pushed with.  Used by the schedule sanitizer's perturbation replay
        (:mod:`repro.san`); normal runs never call this.
        """
        self._perturb = rng

    @property
    def perturbed(self) -> bool:
        return self._perturb is not None

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
        epilogue: bool = False,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at ``time``; return its handle.

        ``epilogue=True`` marks an *end-of-instant* event: its tiebreak is
        ``_EPILOGUE_BASE + priority``, so it pops only after every normal
        event at the same timestamp — perturbed or not — and after every
        epilogue of lower ``priority`` there.  Epilogues sharing a priority
        pop FIFO by ``seq``.  (A normal event pushed *while* an epilogue
        runs still precedes any epilogue pushed later; the contract is only
        meaningful for the buffer-then-flush pattern, where the epilogue
        schedules strictly-future work.)
        """
        if epilogue:
            if priority < 0:
                raise ValueError(f"epilogue priority must be >= 0, got {priority}")
            tiebreak = _EPILOGUE_BASE + priority
        elif self._perturb is None:
            tiebreak = 0.0
        else:
            tiebreak = self._perturb.random()
        handle = EventHandle(time, self._seq, callback, args, tiebreak=tiebreak)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        self._discard_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> EventHandle | None:
        """Pop the next live event, or None if none remain."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def clear(self) -> None:
        self._heap.clear()
