"""Pending-event set for the discrete-event kernel.

A binary heap keyed on ``(time, sequence)`` gives O(log n) insertion and
pop-min with FIFO tie-breaking — two events scheduled for the same instant
fire in the order they were scheduled, which the rest of the system relies on
for determinism. Cancellation is lazy: handles are flagged and skipped when
popped, the standard heapq idiom.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["EventHandle", "EventQueue"]


class EventHandle:
    """Cancellable reference to one scheduled callback."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent."""
        self.cancelled = True
        # Drop references so cancelled events pinned in the heap don't keep
        # large closures alive.
        self.callback = _noop
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class EventQueue:
    """Min-heap of :class:`EventHandle` with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self, time: float, callback: Callable[..., None], args: tuple[Any, ...] = ()
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at ``time``; return its handle."""
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        self._discard_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> EventHandle | None:
        """Pop the next live event, or None if none remain."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def clear(self) -> None:
        self._heap.clear()
