"""Structured event tracing.

Components emit ``(time, source, event, fields)`` records into a shared
:class:`Tracer`. Tests assert on traces; the benchmark harness derives
latency samples from them (e.g. matching ``sensor.sample`` against
``ml.trained`` records by sample id, exactly how the paper measures
"sensing → training" time).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry."""

    time: float
    source: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Append-only trace log with filtered iteration and live taps.

    Tracing can be disabled wholesale (``enabled=False``) for long benchmark
    runs where only tapped events matter; taps always fire.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []
        self._taps: dict[str, list[Callable[[TraceRecord], None]]] = {}

    def emit(
        self, time: float, source: str, event: str, **fields: Any
    ) -> None:
        """Record an event and notify any taps registered for it."""
        taps = self._taps.get(event)
        if not self.enabled and taps is None:
            return  # gate: no record is built when nobody will see it
        record = TraceRecord(time, source, event, fields)
        if self.enabled:
            self._records.append(record)
        if taps is not None:
            for tap in taps:
                tap(record)

    def tap(self, event: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback(record)`` whenever ``event`` is emitted."""
        self._taps.setdefault(event, []).append(callback)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self, event: str | None = None, source: str | None = None
    ) -> list[TraceRecord]:
        """Records matching the given event and/or source."""
        return [
            r
            for r in self._records
            if (event is None or r.event == event)
            and (source is None or r.source == source)
        ]

    def count(self, event: str) -> int:
        return sum(1 for r in self._records if r.event == event)

    def clear(self) -> None:
        self._records.clear()

    # ------------------------------------------------------------------
    # Offline analysis
    # ------------------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> int:
        """Dump the trace as JSON Lines; returns the record count.

        Each line is ``{"t": time, "src": source, "ev": event, "f": fields}``
        with fields recursively encoded: tuples are tagged (so they come
        back as tuples, not lists), dict keys are stringified, and any
        non-JSON value is repr'd — dumping never fails mid-run, and
        :meth:`from_jsonl` reproduces the original field structure for
        everything JSON-representable.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self._records:
                fh.write(
                    json.dumps(
                        {
                            "t": record.time,
                            "src": record.source,
                            "ev": record.event,
                            "f": {
                                key: _encode_field(value)
                                for key, value in record.fields.items()
                            },
                        },
                        sort_keys=True,
                    )
                )
                fh.write("\n")
        return len(self._records)

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "Tracer":
        """Rebuild a tracer from a :meth:`to_jsonl` dump.

        Also reads the legacy flat format (fields merged into the top-level
        object), which cannot distinguish tuples from lists.
        """
        tracer = cls()
        with Path(path).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                time = data.pop("t")
                source = data.pop("src")
                event = data.pop("ev")
                if "f" in data and isinstance(data["f"], dict) and len(data) == 1:
                    fields = {k: _decode_field(v) for k, v in data["f"].items()}
                else:
                    fields = data  # legacy flat format
                tracer.emit(time, source, event, **fields)
        return tracer


#: Tag marking an encoded tuple; chosen to be implausible as a real key.
_TUPLE_TAG = "__tuple__"


def _encode_field(value: Any) -> Any:
    """JSON-ready deep copy of one field value (see :meth:`Tracer.to_jsonl`)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int, float)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_field(v) for v in value]}
    if isinstance(value, list):
        return [_encode_field(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode_field(v) for k, v in value.items()}
    return repr(value)


def _decode_field(value: Any) -> Any:
    """Inverse of :func:`_encode_field` (tuples restored from their tag)."""
    if isinstance(value, dict):
        if len(value) == 1 and _TUPLE_TAG in value:
            return tuple(_decode_field(v) for v in value[_TUPLE_TAG])
        return {k: _decode_field(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_field(v) for v in value]
    return value
