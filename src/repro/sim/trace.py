"""Structured event tracing.

Components emit ``(time, source, event, fields)`` records into a shared
:class:`Tracer`. Tests assert on traces; the benchmark harness derives
latency samples from them (e.g. matching ``sensor.sample`` against
``ml.trained`` records by sample id, exactly how the paper measures
"sensing → training" time).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    source: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Append-only trace log with filtered iteration and live taps.

    Tracing can be disabled wholesale (``enabled=False``) for long benchmark
    runs where only tapped events matter; taps always fire.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []
        self._taps: dict[str, list[Callable[[TraceRecord], None]]] = {}

    def emit(
        self, time: float, source: str, event: str, **fields: Any
    ) -> None:
        """Record an event and notify any taps registered for it."""
        record = TraceRecord(time, source, event, fields)
        if self.enabled:
            self._records.append(record)
        for tap in self._taps.get(event, ()):
            tap(record)

    def tap(self, event: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback(record)`` whenever ``event`` is emitted."""
        self._taps.setdefault(event, []).append(callback)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def select(
        self, event: str | None = None, source: str | None = None
    ) -> list[TraceRecord]:
        """Records matching the given event and/or source."""
        return [
            r
            for r in self._records
            if (event is None or r.event == event)
            and (source is None or r.source == source)
        ]

    def count(self, event: str) -> int:
        return sum(1 for r in self._records if r.event == event)

    def clear(self) -> None:
        self._records.clear()

    # ------------------------------------------------------------------
    # Offline analysis
    # ------------------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> int:
        """Dump the trace as JSON Lines; returns the record count.

        Only JSON-encodable field values survive (others are repr'd), so
        dumping never fails mid-run.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self._records:
                fields = {}
                for key, value in record.fields.items():
                    try:
                        json.dumps(value)
                        fields[key] = value
                    except (TypeError, ValueError):
                        fields[key] = repr(value)
                fh.write(
                    json.dumps(
                        {
                            "t": record.time,
                            "src": record.source,
                            "ev": record.event,
                            **fields,
                        },
                        sort_keys=True,
                    )
                )
                fh.write("\n")
        return len(self._records)

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "Tracer":
        """Rebuild a tracer from a :meth:`to_jsonl` dump."""
        tracer = cls()
        with Path(path).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                time = data.pop("t")
                source = data.pop("src")
                event = data.pop("ev")
                tracer.emit(time, source, event, **data)
        return tracer
