"""Endpoint addressing.

An :class:`Address` names a service on a station: ``(station, service)``.
Stations correspond to physical devices (one WLAN association each); services
distinguish the listeners on a station (e.g. the MQTT broker vs. the
management agent). The textual form is ``station/service``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError

__all__ = ["Address"]


@dataclass(frozen=True, order=True)
class Address:
    """Immutable ``(station, service)`` endpoint name."""

    station: str
    service: str = "default"

    def __post_init__(self) -> None:
        if not self.station or "/" in self.station:
            raise AddressError(f"invalid station name: {self.station!r}")
        if not self.service or "/" in self.service:
            raise AddressError(f"invalid service name: {self.service!r}")

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Parse ``'station/service'`` (service defaults to ``'default'``)."""
        if not text:
            raise AddressError("empty address")
        head, sep, tail = text.partition("/")
        if not sep:
            return cls(head)
        if "/" in tail:
            raise AddressError(f"too many '/' in address: {text!r}")
        return cls(head, tail)

    def __str__(self) -> str:
        # Memoized: trace emission stringifies the same endpoints for
        # every frame. Not a dataclass field, so eq/hash/order see only
        # (station, service).
        text = self.__dict__.get("_text")
        if text is None:
            text = f"{self.station}/{self.service}"
            object.__setattr__(self, "_text", text)
        return text
