"""Shared-medium wireless LAN model.

The paper's testbed (Fig. 7) is six Raspberry Pis and a laptop on one
wireless LAN. All stations share a single channel, so we model the channel
as one FIFO airtime resource:

* every frame occupies ``per_frame_overhead + wire_size / bitrate`` seconds
  of airtime (the overhead term captures DIFS/backoff/ACK and dominates for
  the paper's 32-byte samples);
* transmissions serialize — a frame must wait for the channel to go idle,
  which is where contention delay at high sensing rates comes from;
* optional uniform jitter models scheduling noise, and an i.i.d. loss rate
  models corrupted frames (dropped *after* burning airtime, as in reality).

This deliberately abstracts away CSMA/CA binary exponential backoff: under
the paper's offered loads (tens to hundreds of small frames per second) the
channel operates far from collision collapse, and mean access delay is
captured by the FIFO + overhead model. The calibration (``repro.bench``)
fits the overhead to the paper's low-rate latency floor.

Fault modelling (used by :mod:`repro.chaos`): on top of the i.i.d. loss
model the medium supports

* **partitions** — per-station-pair reachability cuts inherited from
  :class:`~repro.net.medium.Medium`; partitioned frames burn airtime (the
  sender transmits into the void) but are never delivered;
* **link degradations** — windows during which frames touching a chosen
  station set suffer a two-state Gilbert–Elliott bursty loss process
  and/or a throttled bitrate, modelling interference bursts, rate
  adaptation fallback and marginal links.

All stochastic draws (jitter, i.i.d. loss, burst transitions) come from
named streams derived from one seed via :mod:`repro.util.rng`, so a run is
exactly reproducible — including its chaos schedule — from the runtime
seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.net.frame import Frame
from repro.net.medium import Medium
from repro.sim.kernel import SimKernel
from repro.sim.trace import Tracer
from repro.util.rng import RngRegistry
from repro.util.validate import require_in_range, require_non_negative, require_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.base import Runtime

__all__ = ["WlanConfig", "WlanMedium", "GilbertElliottConfig"]


class _NoRuntime:
    """Stand-in runtime for standalone media (sanitizer and profiler
    permanently off)."""

    san: Any = None
    prof: Any = None


_NO_RUNTIME = _NoRuntime()


@dataclass(frozen=True)
class WlanConfig:
    """Channel parameters.

    Defaults approximate a lightly managed 802.11n 2.4 GHz network of the
    2016 era: ~20 Mbit/s effective UDP goodput and ~1.2 ms of fixed
    per-frame channel occupancy for small datagrams.
    """

    bitrate_bps: float = 20e6
    per_frame_overhead_s: float = 1.2e-3
    jitter_s: float = 0.4e-3
    loss_rate: float = 0.0
    propagation_delay_s: float = 5e-6

    def validate(self) -> "WlanConfig":
        require_positive(self.bitrate_bps, "bitrate_bps")
        require_non_negative(self.per_frame_overhead_s, "per_frame_overhead_s")
        require_non_negative(self.jitter_s, "jitter_s")
        require_in_range(self.loss_rate, 0.0, 1.0, "loss_rate")
        require_non_negative(self.propagation_delay_s, "propagation_delay_s")
        return self

    def airtime(self, wire_size: int) -> float:
        """Deterministic airtime for a frame of ``wire_size`` bytes."""
        return self.per_frame_overhead_s + (wire_size * 8.0) / self.bitrate_bps


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Two-state bursty loss process (Gilbert–Elliott).

    The channel flips between a *good* and a *bad* state once per frame:
    from good it enters bad with probability ``p_enter``; from bad it
    returns with probability ``p_exit``. Frames are lost with
    ``loss_good`` / ``loss_bad`` depending on the state, producing the
    clustered losses real 802.11 links show under interference — which
    i.i.d. loss cannot reproduce (QoS 1 retransmissions that would always
    win against i.i.d. loss can die inside one long burst).

    Mean burst length is ``1 / p_exit`` frames; stationary bad-state
    probability is ``p_enter / (p_enter + p_exit)``.
    """

    p_enter: float
    p_exit: float
    loss_bad: float = 1.0
    loss_good: float = 0.0

    def validate(self) -> "GilbertElliottConfig":
        require_in_range(self.p_enter, 0.0, 1.0, "p_enter")
        require_positive(self.p_exit, "p_exit")
        require_in_range(self.p_exit, 0.0, 1.0, "p_exit")
        require_in_range(self.loss_bad, 0.0, 1.0, "loss_bad")
        require_in_range(self.loss_good, 0.0, 1.0, "loss_good")
        return self


class _GilbertElliott:
    """Mutable state machine for one :class:`GilbertElliottConfig`."""

    def __init__(self, config: GilbertElliottConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        self.bad = False
        self.transitions = 0

    def step(self) -> float:
        """Advance one frame; returns the loss rate governing that frame."""
        threshold = self.config.p_exit if self.bad else self.config.p_enter
        if self._rng.random() < threshold:
            self.bad = not self.bad
            self.transitions += 1
        return self.config.loss_bad if self.bad else self.config.loss_good


@dataclass
class _Degradation:
    """One active link degradation window."""

    handle: int
    stations: frozenset[str] | None  # None = whole channel
    bitrate_factor: float
    burst: _GilbertElliott | None
    until: float | None  # absolute end time; None = until restored

    def matches(self, frame: Frame) -> bool:
        if self.stations is None:
            return True
        return (
            frame.source.station in self.stations
            or frame.destination.station in self.stations
        )


class WlanMedium(Medium):
    """Single-channel shared medium over a simulation kernel.

    ``rng`` may be a plain :class:`random.Random` (legacy: one stream
    drives jitter, loss and bursts alike) or an
    :class:`~repro.util.rng.RngRegistry`, in which case jitter, i.i.d.
    loss and burst transitions draw from independent named streams — so a
    chaos schedule added to an experiment never perturbs the jitter draws
    of the baseline run. When omitted, streams are derived from seed 0 via
    :func:`repro.util.rng.derive_seed` (never a bare ``random.Random(0)``).
    """

    def __init__(
        self,
        kernel: SimKernel,
        config: WlanConfig | None = None,
        rng: random.Random | RngRegistry | None = None,
        tracer: Tracer | None = None,
        runtime: "Runtime | None" = None,
    ) -> None:
        super().__init__()
        self._kernel = kernel
        self.config = (config or WlanConfig()).validate()
        if rng is None:
            rng = RngRegistry(0).fork("wlan")
        if isinstance(rng, RngRegistry):
            self._jitter_rng = rng.stream("wlan.jitter")
            self._loss_rng = rng.stream("wlan.loss")
            self._burst_rng = rng.stream("wlan.burst")
        else:  # single legacy stream
            self._jitter_rng = self._loss_rng = self._burst_rng = rng
        self._tracer = tracer
        self._channel_free_at = 0.0
        self.frames_transmitted = 0
        self.frames_lost = 0
        self.frames_partitioned = 0
        self.total_airtime = 0.0
        self._interference: list[tuple[float, float, float]] = []
        self._degradations: list[_Degradation] = []
        self._next_degradation_handle = 0
        # Same-instant frames are buffered and flushed by one kernel
        # epilogue in canonical (station, frame_id) order, so the channel
        # slot assignment and the shared jitter/loss/burst RNG draw order
        # are invariant to the schedule order of concurrent senders.
        self._pending: list[Frame] = []
        self._flush_scheduled = False
        # Deferred import: repro.runtime imports this module at package
        # init, so the cycle is only safe to close at construction time.
        from repro.runtime.state import tracked_state

        owner: Any = runtime if runtime is not None else _NO_RUNTIME
        # Kept for the profiler hook: airtime grants are charged to
        # ``runtime.prof`` when profiling is enabled.
        self._owner_runtime = owner
        # The pending buffer is commutative by construction: the canonical
        # flush sort erases append order.
        self._pending_cell = tracked_state(owner, "wlan", "pending")  # repro: san-ok[SAN001]
        self._channel_cell = tracked_state(owner, "wlan", "channel")

    def schedule_interference(
        self, start: float, duration: float, loss_rate: float
    ) -> None:
        """Degrade the channel during ``[start, start+duration)``.

        Models a microwave oven, a neighbouring network or a passing truck:
        frames transmitted while a window is active are lost with
        ``loss_rate`` (the worst active window wins, and the configured
        baseline loss still applies outside windows).
        """
        require_non_negative(start, "start")
        require_positive(duration, "duration")
        require_in_range(loss_rate, 0.0, 1.0, "loss_rate")
        self._interference.append((start, start + duration, loss_rate))

    # ------------------------------------------------------------------
    # Link degradation (bursty loss + throttling)
    # ------------------------------------------------------------------

    def degrade_link(
        self,
        stations: "frozenset[str] | set[str] | None" = None,
        bitrate_factor: float = 1.0,
        burst: GilbertElliottConfig | None = None,
        duration_s: float | None = None,
    ) -> int:
        """Start a degradation window; returns a handle for
        :meth:`restore_link`.

        ``stations`` limits the effect to frames touching any named
        station (``None`` degrades the whole channel). ``bitrate_factor``
        scales the effective bitrate (0.25 = rate adaptation fell back to
        a quarter of nominal). ``burst`` adds a Gilbert–Elliott loss
        process on top of the configured i.i.d. loss. ``duration_s``
        auto-expires the window; ``None`` keeps it until restored.
        """
        require_in_range(bitrate_factor, 1e-6, 1.0, "bitrate_factor")
        if burst is not None:
            burst.validate()
        if duration_s is not None:
            require_positive(duration_s, "duration_s")
        # Degradation windows change how every in-flight frame is priced
        # and dropped — that is channel state, same as the contention queue.
        self._channel_cell.note_write()
        handle = self._next_degradation_handle
        self._next_degradation_handle += 1
        self._degradations.append(
            _Degradation(
                handle=handle,
                stations=frozenset(stations) if stations is not None else None,
                bitrate_factor=bitrate_factor,
                burst=_GilbertElliott(burst, self._burst_rng) if burst else None,
                until=None if duration_s is None else self._kernel.now + duration_s,
            )
        )
        return handle

    def restore_link(self, handle: int) -> bool:
        """End the degradation window ``handle``. Returns True if found."""
        self._channel_cell.note_write()
        before = len(self._degradations)
        self._degradations = [d for d in self._degradations if d.handle != handle]
        return len(self._degradations) < before

    @property
    def degradations_active(self) -> int:
        """Unexpired degradation windows (for tests/inspection)."""
        return len(self._active_degradations(self._kernel.now))

    def _active_degradations(self, now: float) -> list[_Degradation]:
        if not self._degradations:
            return []
        live = [d for d in self._degradations if d.until is None or now < d.until]
        if len(live) != len(self._degradations):
            self._degradations = live
        return live

    def _loss_rate_at(self, t: float) -> float:
        rate = self.config.loss_rate
        for start, end, window_rate in self._interference:
            if start <= t < end:
                rate = max(rate, window_rate)
        return rate

    def transmit(self, frame: Frame) -> None:
        """Accept ``frame`` for transmission at the current instant.

        Frames are not put on the air immediately: they join a per-instant
        buffer that a kernel *epilogue* event (see
        :meth:`repro.sim.SimKernel.schedule_epilogue`) flushes onto the
        channel in canonical ``(source station, frame_id)`` order.  Since
        ``frame_id`` is the sender interface's monotonic counter, the
        canonical order — and therefore channel slot assignment and every
        draw from the shared jitter/loss/burst streams — depends only on
        *which* frames were offered during the instant, not on the
        schedule order of the events that offered them.
        """
        self._pending_cell.note_write()
        self._pending.append(frame)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._kernel.schedule_epilogue(self._flush)

    def _flush(self) -> None:
        """Put all frames offered during this instant on the air."""
        self._flush_scheduled = False
        self._pending_cell.note_read()
        pending = sorted(
            self._pending, key=lambda f: (f.source.station, f.frame_id)
        )
        self._pending.clear()
        for frame in pending:
            self._transmit_now(frame)

    def _transmit_now(self, frame: Frame) -> None:
        """Occupy the channel with ``frame`` and schedule its delivery."""
        now = self._kernel.now
        degradations: list[_Degradation] = []
        if self._degradations:
            degradations = [
                d for d in self._active_degradations(now) if d.matches(frame)
            ]
        bitrate_factor = 1.0
        for degradation in degradations:
            bitrate_factor = min(bitrate_factor, degradation.bitrate_factor)
        airtime = self.config.per_frame_overhead_s + (frame.wire_size * 8.0) / (
            self.config.bitrate_bps * bitrate_factor
        )
        if self.config.jitter_s > 0.0:
            airtime += self._jitter_rng.uniform(0.0, self.config.jitter_s)
        self._channel_cell.note_read()
        start = max(now, self._channel_free_at)
        finish = start + airtime
        self._channel_cell.note_write()
        self._channel_free_at = finish
        self.frames_transmitted += 1
        self.total_airtime += airtime
        runtime = self._owner_runtime
        prof = None if runtime is None else runtime.prof
        if prof is not None:
            prof.on_airtime(frame.source.station, start, airtime)
        delivery_time = finish + self.config.propagation_delay_s

        # A partitioned sender still transmits (burning airtime), but the
        # destination cannot hear it.
        partitioned = self.is_blocked(
            frame.source.station, frame.destination.station
        )
        lost = False
        if not partitioned:
            loss_rate = self._loss_rate_at(start)
            for degradation in degradations:
                if degradation.burst is not None:
                    loss_rate = max(loss_rate, degradation.burst.step())
            lost = loss_rate > 0.0 and self._loss_rng.random() < loss_rate
        if self._tracer is not None:
            self._tracer.emit(
                now,
                "wlan",
                "wlan.transmit",
                frame_id=frame.frame_id,
                src=str(frame.source),
                dst=str(frame.destination),
                size=frame.wire_size,
                queued_s=start - now,
                lost=lost or partitioned,
                **({"reason": "partition"} if partitioned else {}),
            )
        if partitioned:
            self.frames_partitioned += 1
            return
        if lost:
            self.frames_lost += 1
            return
        self._kernel.schedule_at(delivery_time, self._deliver, frame)

    def _deliver(self, frame: Frame) -> None:
        interface = self._interfaces.get(frame.destination.station)
        if interface is None:
            return  # station detached while the frame was in flight
        interface.deliver(frame)

    @property
    def channel_backlog(self) -> float:
        """Seconds of airtime currently queued ahead of a new frame."""
        return max(0.0, self._channel_free_at - self._kernel.now)

    def utilization(self) -> float:
        """Fraction of elapsed virtual time the channel has been busy."""
        elapsed = self._kernel.now
        return self.total_airtime / elapsed if elapsed > 0 else 0.0
