"""Shared-medium wireless LAN model.

The paper's testbed (Fig. 7) is six Raspberry Pis and a laptop on one
wireless LAN. All stations share a single channel, so we model the channel
as one FIFO airtime resource:

* every frame occupies ``per_frame_overhead + wire_size / bitrate`` seconds
  of airtime (the overhead term captures DIFS/backoff/ACK and dominates for
  the paper's 32-byte samples);
* transmissions serialize — a frame must wait for the channel to go idle,
  which is where contention delay at high sensing rates comes from;
* optional uniform jitter models scheduling noise, and an i.i.d. loss rate
  models corrupted frames (dropped *after* burning airtime, as in reality).

This deliberately abstracts away CSMA/CA binary exponential backoff: under
the paper's offered loads (tens to hundreds of small frames per second) the
channel operates far from collision collapse, and mean access delay is
captured by the FIFO + overhead model. The calibration (``repro.bench``)
fits the overhead to the paper's low-rate latency floor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.frame import Frame
from repro.net.medium import Medium
from repro.sim.kernel import SimKernel
from repro.sim.trace import Tracer
from repro.util.validate import require_in_range, require_non_negative, require_positive

__all__ = ["WlanConfig", "WlanMedium"]


@dataclass(frozen=True)
class WlanConfig:
    """Channel parameters.

    Defaults approximate a lightly managed 802.11n 2.4 GHz network of the
    2016 era: ~20 Mbit/s effective UDP goodput and ~1.2 ms of fixed
    per-frame channel occupancy for small datagrams.
    """

    bitrate_bps: float = 20e6
    per_frame_overhead_s: float = 1.2e-3
    jitter_s: float = 0.4e-3
    loss_rate: float = 0.0
    propagation_delay_s: float = 5e-6

    def validate(self) -> "WlanConfig":
        require_positive(self.bitrate_bps, "bitrate_bps")
        require_non_negative(self.per_frame_overhead_s, "per_frame_overhead_s")
        require_non_negative(self.jitter_s, "jitter_s")
        require_in_range(self.loss_rate, 0.0, 1.0, "loss_rate")
        require_non_negative(self.propagation_delay_s, "propagation_delay_s")
        return self

    def airtime(self, wire_size: int) -> float:
        """Deterministic airtime for a frame of ``wire_size`` bytes."""
        return self.per_frame_overhead_s + (wire_size * 8.0) / self.bitrate_bps


class WlanMedium(Medium):
    """Single-channel shared medium over a simulation kernel."""

    def __init__(
        self,
        kernel: SimKernel,
        config: WlanConfig | None = None,
        rng: random.Random | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__()
        self._kernel = kernel
        self.config = (config or WlanConfig()).validate()
        self._rng = rng or random.Random(0)
        self._tracer = tracer
        self._channel_free_at = 0.0
        self.frames_transmitted = 0
        self.frames_lost = 0
        self.total_airtime = 0.0
        self._interference: list[tuple[float, float, float]] = []

    def schedule_interference(
        self, start: float, duration: float, loss_rate: float
    ) -> None:
        """Degrade the channel during ``[start, start+duration)``.

        Models a microwave oven, a neighbouring network or a passing truck:
        frames transmitted while a window is active are lost with
        ``loss_rate`` (the worst active window wins, and the configured
        baseline loss still applies outside windows).
        """
        require_non_negative(start, "start")
        require_positive(duration, "duration")
        require_in_range(loss_rate, 0.0, 1.0, "loss_rate")
        self._interference.append((start, start + duration, loss_rate))

    def _loss_rate_at(self, t: float) -> float:
        rate = self.config.loss_rate
        for start, end, window_rate in self._interference:
            if start <= t < end:
                rate = max(rate, window_rate)
        return rate

    def transmit(self, frame: Frame) -> None:
        """Queue ``frame`` on the channel and schedule its delivery."""
        now = self._kernel.now
        airtime = self.config.airtime(frame.wire_size)
        if self.config.jitter_s > 0.0:
            airtime += self._rng.uniform(0.0, self.config.jitter_s)
        start = max(now, self._channel_free_at)
        finish = start + airtime
        self._channel_free_at = finish
        self.frames_transmitted += 1
        self.total_airtime += airtime
        delivery_time = finish + self.config.propagation_delay_s
        loss_rate = self._loss_rate_at(start)
        lost = loss_rate > 0.0 and self._rng.random() < loss_rate
        if self._tracer is not None:
            self._tracer.emit(
                now,
                "wlan",
                "wlan.transmit",
                frame_id=frame.frame_id,
                src=str(frame.source),
                dst=str(frame.destination),
                size=frame.wire_size,
                queued_s=start - now,
                lost=lost,
            )
        if lost:
            self.frames_lost += 1
            return
        self._kernel.schedule_at(delivery_time, self._deliver, frame)

    def _deliver(self, frame: Frame) -> None:
        interface = self._interfaces.get(frame.destination.station)
        if interface is None:
            return  # station detached while the frame was in flight
        interface.deliver(frame)

    @property
    def channel_backlog(self) -> float:
        """Seconds of airtime currently queued ahead of a new frame."""
        return max(0.0, self._channel_free_at - self._kernel.now)

    def utilization(self) -> float:
        """Fraction of elapsed virtual time the channel has been busy."""
        elapsed = self._kernel.now
        return self.total_airtime / elapsed if elapsed > 0 else 0.0
