"""Network substrate: addresses, frames, and transmission media.

Two interchangeable media implement :class:`~repro.net.medium.Medium`:

* :class:`~repro.net.wlan.WlanMedium` — the simulated shared wireless LAN of
  the paper's testbed (Fig. 7): one channel, airtime serialization,
  per-frame MAC overhead, optional jitter and loss.
* :class:`~repro.net.inproc.InprocNetwork` — in-process delivery for the
  real (asyncio) runtime used by the examples.

Everything above this layer (MQTT, middleware) sees only
:class:`~repro.net.medium.NetworkInterface`.
"""

from repro.net.address import Address
from repro.net.frame import Frame
from repro.net.inproc import InprocNetwork
from repro.net.medium import Medium, NetworkInterface
from repro.net.wlan import WlanConfig, WlanMedium

__all__ = [
    "Address",
    "Frame",
    "InprocNetwork",
    "Medium",
    "NetworkInterface",
    "WlanConfig",
    "WlanMedium",
]
