"""Abstract transmission medium and the per-station network interface.

A :class:`Medium` connects stations; :meth:`Medium.attach` yields a
:class:`NetworkInterface` bound to one station name. Interfaces provide
fire-and-forget datagram ``send`` with per-destination FIFO ordering (both
media implementations preserve global transmit order, which is stronger).
Loss is possible (the WLAN model can drop frames); reliability where needed
is provided above this layer by MQTT QoS 1.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable

from repro.errors import AddressError, TransportError
from repro.net.address import Address
from repro.net.frame import Frame

__all__ = ["Medium", "NetworkInterface", "Receiver"]

#: Signature of the per-service receive callback: ``(source, payload)``.
Receiver = Callable[[Address, bytes], None]


class NetworkInterface:
    """One station's attachment point to a medium.

    Services register receivers by name; inbound frames are dispatched on
    ``frame.destination.service``. Outbound frames are handed to the medium,
    which owns timing and delivery.
    """

    def __init__(self, medium: "Medium", station: str) -> None:
        self._medium = medium
        self.station = station
        self._receivers: dict[str, Receiver] = {}
        self._source_addresses: dict[str, Address] = {}
        self._next_frame_id = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def bind(self, service: str, receiver: Receiver) -> None:
        """Register ``receiver`` for frames addressed to ``service``."""
        if service in self._receivers:
            raise TransportError(
                f"{self.station}: service {service!r} already bound"
            )
        self._receivers[service] = receiver

    def unbind(self, service: str) -> None:
        self._receivers.pop(service, None)

    def send(
        self, source_service: str, destination: Address, payload: bytes
    ) -> None:
        """Transmit ``payload`` to ``destination`` (fire-and-forget)."""
        source = self._source_addresses.get(source_service)
        if source is None:
            source = Address(self.station, source_service)
            self._source_addresses[source_service] = source
        frame = Frame(
            source=source,
            destination=destination,
            payload=payload,
            frame_id=self._next_frame_id,
        )
        self._next_frame_id += 1
        self.frames_sent += 1
        self.bytes_sent += frame.wire_size
        self._medium.transmit(frame)

    def deliver(self, frame: Frame) -> None:
        """Called by the medium when a frame arrives for this station."""
        receiver = self._receivers.get(frame.destination.service)
        if receiver is None:
            # Mirrors UDP: datagrams to unbound ports vanish. The medium
            # already counted the airtime; higher layers detect silence.
            return
        self.frames_received += 1
        self.bytes_received += frame.wire_size
        receiver(frame.source, frame.payload)


class Medium(ABC):
    """A set of attached stations plus a frame transmission discipline.

    Besides attachment bookkeeping, the base class owns the *partition
    mask*: an unordered set of station pairs that currently cannot hear
    each other. Partitions model layer-2 reachability faults (a wall, a
    failed access point, a split between rooms); concrete media consult
    :meth:`is_blocked` on every transmission and drop frames crossing a
    cut. Partitions are symmetric and purely additive — healing restores
    exactly the pre-partition connectivity.
    """

    def __init__(self) -> None:
        self._interfaces: dict[str, NetworkInterface] = {}
        self._blocked_pairs: set[frozenset[str]] = set()

    def attach(self, station: str) -> NetworkInterface:
        """Attach a new station and return its interface."""
        if station in self._interfaces:
            raise AddressError(f"station {station!r} already attached")
        interface = NetworkInterface(self, station)
        self._interfaces[station] = interface
        return interface

    def detach(self, station: str) -> None:
        """Remove a station; future frames to it are dropped silently."""
        self._interfaces.pop(station, None)

    def interface(self, station: str) -> NetworkInterface:
        try:
            return self._interfaces[station]
        except KeyError:
            raise AddressError(f"unknown station {station!r}") from None

    @property
    def stations(self) -> list[str]:
        return sorted(self._interfaces)

    # ------------------------------------------------------------------
    # Partition mask (chaos / fault injection)
    # ------------------------------------------------------------------

    def partition(
        self, group_a: "Iterable[str]", group_b: "Iterable[str]"
    ) -> None:
        """Cut connectivity between every station in ``group_a`` and every
        station in ``group_b`` (both directions). Stations may be named
        before they attach; traffic *within* each group is unaffected."""
        pairs = _cross_pairs(group_a, group_b)
        if not pairs:
            raise AddressError("partition needs two non-overlapping groups")
        self._blocked_pairs |= pairs

    def heal(
        self,
        group_a: "Iterable[str] | None" = None,
        group_b: "Iterable[str] | None" = None,
    ) -> None:
        """Remove a partition. With no arguments, heal every cut."""
        if group_a is None and group_b is None:
            self._blocked_pairs.clear()
            return
        self._blocked_pairs -= _cross_pairs(group_a or (), group_b or ())

    def is_blocked(self, station_a: str, station_b: str) -> bool:
        """True when a partition currently separates the two stations."""
        if not self._blocked_pairs:
            return False
        return frozenset((station_a, station_b)) in self._blocked_pairs

    @property
    def partitioned_pairs(self) -> int:
        """Number of station pairs currently cut (for tests/inspection)."""
        return len(self._blocked_pairs)

    @abstractmethod
    def transmit(self, frame: Frame) -> None:
        """Accept ``frame`` for (eventual) delivery."""


def _cross_pairs(
    group_a: "Iterable[str]", group_b: "Iterable[str]"
) -> set[frozenset[str]]:
    a, b = set(group_a), set(group_b)
    return {frozenset((x, y)) for x in a for y in b if x != y}
