"""In-process medium for the real (asyncio) runtime.

Frames are delivered through the event loop's ``call_soon`` (or, when a
fixed latency is configured, ``call_later``), preserving global send order.
This is the transport the runnable examples use: the same middleware classes
that run on the simulated WLAN run here under wall-clock time.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.net.frame import Frame
from repro.net.medium import Medium
from repro.util.validate import require_non_negative

__all__ = ["InprocNetwork"]


class InprocNetwork(Medium):
    """Loss-free, ordered in-process frame delivery.

    Parameters
    ----------
    loop:
        The asyncio loop to deliver through. When ``None`` (the default) the
        running loop is looked up at transmit time, so the medium can be
        constructed before the loop starts.
    latency_s:
        Fixed one-way delivery latency; 0 delivers on the next loop tick.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop | None = None,
        latency_s: float = 0.0,
    ) -> None:
        super().__init__()
        self._loop = loop
        self.latency_s = require_non_negative(latency_s, "latency_s")
        self.frames_transmitted = 0

    def _resolve_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is not None:
            return self._loop
        return asyncio.get_event_loop()

    def transmit(self, frame: Frame) -> None:
        self.frames_transmitted += 1
        if self.is_blocked(frame.source.station, frame.destination.station):
            return  # partitioned: the datagram vanishes, as on a real cut
        loop = self._resolve_loop()
        deliver: Callable[[Frame], None] = self._deliver
        if self.latency_s > 0.0:
            loop.call_later(self.latency_s, deliver, frame)
        else:
            loop.call_soon(deliver, frame)

    def _deliver(self, frame: Frame) -> None:
        interface = self._interfaces.get(frame.destination.station)
        if interface is None:
            return
        interface.deliver(frame)
