"""Wire frames.

A :class:`Frame` is the unit the medium transmits: source, destination,
payload bytes, and a monotonically increasing id assigned by the sender's
interface. ``wire_size`` adds the link-layer header so airtime charges
reflect real overhead (the paper's 32-byte samples do not travel for free).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.address import Address

__all__ = ["Frame", "LINK_HEADER_BYTES"]

#: Link-layer framing overhead charged per frame (approximates 802.11
#: MAC + LLC/SNAP + IP + UDP headers for a small datagram).
LINK_HEADER_BYTES = 64


@dataclass(frozen=True)
class Frame:
    """One link-layer frame in flight."""

    source: Address
    destination: Address
    payload: bytes
    frame_id: int = 0
    metadata: dict = field(default_factory=dict, compare=False)

    @property
    def wire_size(self) -> int:
        """Bytes occupying airtime: payload plus link headers."""
        return len(self.payload) + LINK_HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Frame(#{self.frame_id} {self.source} -> {self.destination}, "
            f"{len(self.payload)}B)"
        )
