"""Deterministic identifier generation.

The simulator must be fully replayable, so identifiers are sequential per
namespace rather than random UUIDs. ``IdGenerator`` hands out ids like
``node-0``, ``node-1``, ``msg-0`` ... and can be reset between experiments.
"""

from __future__ import annotations

from collections import defaultdict


class IdGenerator:
    """Sequential id factory with one counter per namespace.

    >>> gen = IdGenerator()
    >>> gen.next("node")
    'node-0'
    >>> gen.next("node")
    'node-1'
    >>> gen.next("msg")
    'msg-0'
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = defaultdict(int)

    def next(self, namespace: str) -> str:
        """Return the next id in ``namespace`` (``'<namespace>-<n>'``)."""
        value = self._counters[namespace]
        self._counters[namespace] = value + 1
        return f"{namespace}-{value}"

    def next_int(self, namespace: str) -> int:
        """Return the next integer in ``namespace`` (0, 1, 2, ...)."""
        value = self._counters[namespace]
        self._counters[namespace] = value + 1
        return value

    def peek(self, namespace: str) -> int:
        """Return the value the next ``next_int`` call would produce."""
        return self._counters[namespace]

    def reset(self, namespace: str | None = None) -> None:
        """Reset one namespace, or all of them when ``namespace`` is None."""
        if namespace is None:
            self._counters.clear()
        else:
            self._counters.pop(namespace, None)
