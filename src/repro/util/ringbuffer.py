"""Fixed-capacity ring buffer.

Flow-analysis classes keep bounded windows over unbounded streams — the whole
point of the paper's "process without accumulating/storing" requirement
(§IV-B-3). ``RingBuffer`` provides O(1) append with oldest-first eviction and
snapshot iteration in insertion order.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")

__all__ = ["RingBuffer"]


class RingBuffer(Generic[T]):
    """Bounded FIFO buffer that evicts the oldest item when full.

    >>> buf = RingBuffer(capacity=3)
    >>> for i in range(5):
    ...     _ = buf.append(i)
    >>> list(buf)
    [2, 3, 4]
    """

    def __init__(self, capacity: int, items: Iterable[T] = ()) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._data: list[T | None] = [None] * capacity
        self._start = 0
        self._size = 0
        for item in items:
            self.append(item)

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self._capacity

    def append(self, item: T) -> T | None:
        """Append ``item``; return the evicted element, if any."""
        evicted: T | None = None
        if self._size == self._capacity:
            evicted = self._data[self._start]  # type: ignore[assignment]
            self._data[self._start] = item
            self._start = (self._start + 1) % self._capacity
        else:
            index = (self._start + self._size) % self._capacity
            self._data[index] = item
            self._size += 1
        return evicted

    def __getitem__(self, index: int) -> T:
        """Item at logical ``index`` (0 = oldest). Supports negatives."""
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        return self._data[(self._start + index) % self._capacity]  # type: ignore[return-value]

    def __iter__(self) -> Iterator[T]:
        for i in range(self._size):
            yield self[i]

    def newest(self) -> T:
        """The most recently appended item."""
        if self._size == 0:
            raise IndexError("ring buffer is empty")
        return self[-1]

    def oldest(self) -> T:
        """The least recently appended item."""
        if self._size == 0:
            raise IndexError("ring buffer is empty")
        return self[0]

    def clear(self) -> None:
        self._data = [None] * self._capacity
        self._start = 0
        self._size = 0

    def to_list(self) -> list[T]:
        """Snapshot of contents, oldest first."""
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingBuffer(capacity={self._capacity}, items={self.to_list()!r})"
