"""Central registry for ``REPRO_*`` environment flags.

Every runtime toggle the middleware reads from the environment is
declared here, once, with its default and a docstring. Code elsewhere
must go through :func:`flag_enabled` / :func:`flag_value` instead of
touching ``os.environ`` directly — the ``FLG001`` lint rule enforces
this, so the table below stays the complete inventory.

Values are read from the environment *at call time* (never cached at
import), so tests can flip flags with ``monkeypatch.setenv`` and module
reloads keep working.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["EnvFlag", "FLAGS", "flag", "flag_enabled", "flag_value"]


@dataclass(frozen=True)
class EnvFlag:
    """One declared environment flag.

    ``default`` is the value assumed when the variable is unset.
    Boolean flags use :meth:`enabled`: the flag is on unless its value
    is empty or ``"0"``.
    """

    name: str
    default: str
    doc: str

    def raw(self) -> str:
        """Current value from the environment (or the default)."""
        return os.environ.get(self.name, self.default)

    def enabled(self) -> bool:
        """Boolean reading: on unless unset-default/empty/``"0"``."""
        return self.raw() not in ("", "0")


#: The complete inventory of environment flags, keyed by variable name.
FLAGS: dict[str, EnvFlag] = {
    flag.name: flag
    for flag in (
        EnvFlag(
            "REPRO_EVENT_POOL",
            "1",
            "Free-list pooling of sim event handles (PR 7). On by default "
            "on CPython, where the refcount safety probe is exact; set to "
            "0 to force unpooled queues for differential testing. "
            "Read by repro.sim.events.pooling_default().",
        ),
        EnvFlag(
            "REPRO_WIRE_FASTPATH",
            "1",
            "Encoded MQTT wire bytes carry their Packet so decode can "
            "bypass JSON (PR 7). Byte counts and airtime are unchanged; "
            "set to 0 to exercise the real decode path. Read by "
            "repro.mqtt.packets.wire_fastpath_default().",
        ),
        EnvFlag(
            "REPRO_BENCH_OUT",
            "",
            "Directory where pytest benchmark runs additionally write "
            "schema-versioned BENCH_<name>.json records "
            "(repro.bench.continuous). Empty disables the export. Read "
            "by benchmarks/conftest.py record_rows().",
        ),
        EnvFlag(
            "REPRO_SLO",
            "1",
            "Online SLO engine master switch (PR 10). With 0, "
            "repro.obs.slo.enable_slo is a no-op and runtime.slo stays "
            "None — the differential equivalence suite uses this to "
            "prove the engine-off trace is byte-identical. Read by "
            "repro.obs.slo.enable_slo().",
        ),
        EnvFlag(
            "REPRO_REGEN_GOLDEN",
            "0",
            "Set to 1 to regenerate the committed golden trace digests "
            "instead of asserting against them. Read by "
            "tests/obs/test_golden_traces.py.",
        ),
    )
}


def flag(name: str) -> EnvFlag:
    """Look up a declared flag; raises ``KeyError`` for undeclared names."""
    try:
        return FLAGS[name]
    except KeyError:
        raise KeyError(
            f"undeclared environment flag {name!r}; declare it in "
            "repro.util.flags.FLAGS"
        ) from None


def flag_enabled(name: str) -> bool:
    """Boolean value of a declared flag (see :meth:`EnvFlag.enabled`)."""
    return flag(name).enabled()


def flag_value(name: str) -> str:
    """String value of a declared flag (environment or default)."""
    return flag(name).raw()
