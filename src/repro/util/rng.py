"""Named, seeded random streams.

Every stochastic element of an experiment (WLAN jitter, sensor noise, event
injection ...) draws from its own named stream derived from one root seed.
Adding a new random consumer therefore never perturbs the draws seen by
existing consumers, which keeps benchmark results stable across versions.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    The derivation is stable across processes and Python versions (it does
    not rely on ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Registry of independent ``random.Random`` streams under one root seed.

    >>> reg = RngRegistry(seed=7)
    >>> a = reg.stream("wlan.jitter")
    >>> b = reg.stream("sensor.noise")
    >>> a is reg.stream("wlan.jitter")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams are derived from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) random stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose root seed is derived from ``name``.

        Useful for giving a sub-system (e.g. one node) its own namespace of
        streams without coordinating stream names globally.
        """
        return RngRegistry(derive_seed(self._seed, f"fork:{name}"))

    def reset(self) -> None:
        """Drop all streams; subsequent draws replay from the beginning."""
        self._streams.clear()
