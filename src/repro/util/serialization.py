"""Compact payload encoding for flow records.

The paper's experiment sends 32-byte sensor samples as MQTT payloads. We
encode payloads as canonical JSON (UTF-8) — dependency-free, deterministic,
and debuggable — and expose :func:`payload_size` so the network model charges
airtime for the *actual* wire size of every message.

Values survive a round trip exactly for: ``None``, ``bool``, ``int``,
``float``, ``str``, and (nested) ``list``/``dict`` of those. Tuples are
encoded as lists (the usual JSON lossy-ness) — callers that care use lists.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.errors import SerializationError

__all__ = ["encode_payload", "decode_payload", "payload_size"]

_ALLOWED_SCALARS = (type(None), bool, int, float, str)


def _check_encodable(value: Any, path: str = "$") -> None:
    """Slow validation pass that names the offending path — error cases only."""
    if isinstance(value, _ALLOWED_SCALARS):
        if isinstance(value, float) and not math.isfinite(value):
            raise SerializationError(f"non-finite float at {path}: {value!r}")
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _check_encodable(item, f"{path}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(f"non-string key at {path}: {key!r}")
            _check_encodable(item, f"{path}.{key}")
        return
    raise SerializationError(f"unencodable type at {path}: {type(value).__name__}")


def _keys_ok(value: Any) -> bool:
    """Iterative dict-key check, visiting container nodes only.

    ``json.dumps`` itself rejects every other invalid input (unknown
    types raise ``TypeError``, NaN/Inf raise ``ValueError`` under
    ``allow_nan=False``) — but it silently *stringifies* int/float/bool/
    None dict keys instead of rejecting them, which would corrupt
    canonical wire bytes. This is the one check that must run up front.
    """
    stack = [value]
    pop = stack.pop
    push = stack.append
    while stack:
        node = pop()
        if type(node) is dict or isinstance(node, dict):
            for key, item in node.items():
                if type(key) is not str and not isinstance(key, str):
                    return False
                t = type(item)
                if t is dict or t is list or t is tuple:
                    push(item)
        else:
            for item in node:
                t = type(item)
                if t is dict or t is list or t is tuple:
                    push(item)
    return True


def encode_payload(value: Any) -> bytes:
    """Encode ``value`` to canonical UTF-8 JSON bytes.

    Raises :class:`~repro.errors.SerializationError` for unsupported types
    and non-finite floats (NaN/Inf are not valid JSON and would silently
    corrupt downstream analysis).
    """
    t = type(value)
    if (t is dict or t is list or t is tuple or isinstance(value, (dict, list, tuple))) and not _keys_ok(value):
        _check_encodable(value)  # raises with the offending path
        raise SerializationError(f"non-string dict key in {value!r}")  # pragma: no cover
    try:
        text = json.dumps(
            value, separators=(",", ":"), sort_keys=True, allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        _check_encodable(value)  # raises with the offending path
        raise SerializationError(str(exc)) from exc
    return text.encode("utf-8")


def decode_payload(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_payload`."""
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"undecodable payload: {exc}") from exc


def payload_size(value: Any) -> int:
    """Wire size in bytes of ``value`` once encoded."""
    return len(encode_payload(value))
