"""Compact payload encoding for flow records.

The paper's experiment sends 32-byte sensor samples as MQTT payloads. We
encode payloads as canonical JSON (UTF-8) — dependency-free, deterministic,
and debuggable — and expose :func:`payload_size` so the network model charges
airtime for the *actual* wire size of every message.

Values survive a round trip exactly for: ``None``, ``bool``, ``int``,
``float``, ``str``, and (nested) ``list``/``dict`` of those. Tuples are
encoded as lists (the usual JSON lossy-ness) — callers that care use lists.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.errors import SerializationError

__all__ = ["encode_payload", "decode_payload", "payload_size"]

_ALLOWED_SCALARS = (type(None), bool, int, float, str)


def _check_encodable(value: Any, path: str = "$") -> None:
    if isinstance(value, _ALLOWED_SCALARS):
        if isinstance(value, float) and not math.isfinite(value):
            raise SerializationError(f"non-finite float at {path}: {value!r}")
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _check_encodable(item, f"{path}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(f"non-string key at {path}: {key!r}")
            _check_encodable(item, f"{path}.{key}")
        return
    raise SerializationError(f"unencodable type at {path}: {type(value).__name__}")


def encode_payload(value: Any) -> bytes:
    """Encode ``value`` to canonical UTF-8 JSON bytes.

    Raises :class:`~repro.errors.SerializationError` for unsupported types
    and non-finite floats (NaN/Inf are not valid JSON and would silently
    corrupt downstream analysis).
    """
    _check_encodable(value)
    try:
        text = json.dumps(
            value, separators=(",", ":"), sort_keys=True, allow_nan=False
        )
    except (TypeError, ValueError) as exc:  # defense in depth
        raise SerializationError(str(exc)) from exc
    return text.encode("utf-8")


def decode_payload(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_payload`."""
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"undecodable payload: {exc}") from exc


def payload_size(value: Any) -> int:
    """Wire size in bytes of ``value`` once encoded."""
    return len(encode_payload(value))
