"""General-purpose utilities shared across the IFoT reproduction.

Submodules
----------
ids
    Deterministic, human-readable identifier generation.
rng
    Named, seeded random streams so every experiment is replayable.
stats
    Streaming statistics (Welford mean/variance, percentiles, histograms).
ringbuffer
    Fixed-capacity ring buffer for bounded stream windows.
serialization
    Compact, dependency-free payload encoding for flow records.
validate
    Small argument-checking helpers used across constructors.
"""

from repro.util.ids import IdGenerator
from repro.util.ringbuffer import RingBuffer
from repro.util.rng import RngRegistry, derive_seed
from repro.util.stats import Histogram, LatencyRecorder, RunningStats
from repro.util.serialization import (
    decode_payload,
    encode_payload,
    payload_size,
)

__all__ = [
    "Histogram",
    "IdGenerator",
    "LatencyRecorder",
    "RingBuffer",
    "RngRegistry",
    "RunningStats",
    "decode_payload",
    "derive_seed",
    "encode_payload",
    "payload_size",
]
