"""Streaming statistics used by the benchmark harness and the middleware.

``RunningStats`` implements Welford's numerically stable online mean/variance.
``LatencyRecorder`` keeps the raw samples (experiments are small enough) and
reports the average/max columns used in the paper's Tables II and III, plus
percentiles for the supplementary benches. ``Histogram`` buckets samples for
compact textual display.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["RunningStats", "LatencyRecorder", "Histogram", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` (0 <= q <= 100, linear interp).

    Accepts the samples in any order (they are sorted here); returns NaN
    for an empty list. Shared by :class:`LatencyRecorder` and the metrics
    layer's histogram quantiles.
    """
    if not samples:
        return math.nan
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # This form (rather than a*(1-f) + b*f) cannot exceed [a, b] under
    # floating-point rounding, keeping percentiles within min..max.
    return ordered[low] + frac * (ordered[high] - ordered[low])


class RunningStats:
    """Welford online mean / variance / min / max.

    >>> s = RunningStats()
    >>> for x in (1.0, 2.0, 3.0):
    ...     s.add(x)
    >>> s.mean
    2.0
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the statistics."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "RunningStats") -> None:
        """Fold another ``RunningStats`` into this one (parallel Welford)."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else math.nan

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self._count if self._count else math.nan

    @property
    def stddev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN check

    @property
    def minimum(self) -> float:
        return self._min if self._count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._count else math.nan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self._count}, mean={self.mean:.4g}, "
            f"std={self.stddev:.4g}, min={self.minimum:.4g}, max={self.maximum:.4g})"
        )


class LatencyRecorder:
    """Collects latency samples and reports paper-style summary rows.

    Samples are stored raw so exact percentiles can be computed. All values
    are in the unit the caller uses (the harness uses milliseconds to match
    the paper's tables).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: list[float] = []
        self._stats = RunningStats()

    def add(self, value: float) -> None:
        """Record one latency sample."""
        self._samples.append(value)
        self._stats.add(value)

    def extend(self, values: list[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._stats.count

    @property
    def average(self) -> float:
        return self._stats.mean

    @property
    def maximum(self) -> float:
        return self._stats.maximum

    @property
    def minimum(self) -> float:
        return self._stats.minimum

    @property
    def stddev(self) -> float:
        return self._stats.stddev

    @property
    def samples(self) -> list[float]:
        """A copy of the raw samples in arrival order."""
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (0 <= q <= 100, linear interp)."""
        return percentile(self._samples, q)

    def summary(self) -> dict[str, float]:
        """Summary dict with the columns used across EXPERIMENTS.md."""
        return {
            "count": float(self.count),
            "avg": self.average,
            "max": self.maximum,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


@dataclass
class Histogram:
    """Fixed-width histogram for compact textual reporting.

    >>> h = Histogram(lower=0.0, upper=10.0, bins=5)
    >>> h.add(1.0); h.add(9.5); h.add(42.0)
    >>> h.counts
    [1, 0, 0, 0, 1]
    >>> h.overflow
    1
    """

    lower: float
    upper: float
    bins: int
    counts: list[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0

    def __post_init__(self) -> None:
        if self.bins <= 0:
            raise ValueError("bins must be positive")
        if self.upper <= self.lower:
            raise ValueError("upper must exceed lower")
        if not self.counts:
            self.counts = [0] * self.bins

    def add(self, value: float) -> None:
        if value < self.lower:
            self.underflow += 1
            return
        if value >= self.upper:
            self.overflow += 1
            return
        width = (self.upper - self.lower) / self.bins
        index = int((value - self.lower) / width)
        self.counts[min(index, self.bins - 1)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def render(self, width: int = 40) -> str:
        """Render an ASCII bar chart, one line per bin."""
        peak = max(self.counts) if any(self.counts) else 1
        step = (self.upper - self.lower) / self.bins
        lines = []
        for i, count in enumerate(self.counts):
            lo = self.lower + i * step
            bar = "#" * int(round(width * count / peak))
            lines.append(f"[{lo:10.3f}, {lo + step:10.3f}) {count:6d} {bar}")
        return "\n".join(lines)
