"""Validation helpers and the shared :class:`Diagnostic` report type.

Constructors across the package perform the same checks (positive rates,
non-empty names, ranges). Centralizing them keeps error messages uniform and
the call sites one line.

:class:`Diagnostic` is the one currency every static validation pass in the
package reports in — the determinism linter (:mod:`repro.lint`), the recipe
static checker, and chaos-plan validation (:meth:`repro.chaos.plan.FaultPlan
.diagnose`) all emit the same dataclass, so callers render, filter and gate
on findings uniformly regardless of which checker produced them.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any, Iterable, TypeVar

from repro.errors import ConfigurationError

Number = TypeVar("Number", int, float)

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_name",
    "Severity",
    "Diagnostic",
    "max_severity",
    "blocking",
]


class Severity(enum.IntEnum):
    """How bad a diagnostic is. Integer-ordered so severities compare."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ConfigurationError(
                f"unknown severity {text!r} (known: info, warning, error)"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static check.

    Location is either a source position (``file``/``line``/``col``, used
    by the lint engine) or a free-form ``where`` (used by artifact checkers:
    ``"task anomaly-body"``, ``"events[2] partition"``).
    """

    rule: str
    severity: Severity
    message: str
    file: str | None = None
    line: int | None = None
    col: int | None = None
    where: str = ""
    hint: str = ""

    @property
    def location(self) -> str:
        if self.file is not None:
            loc = self.file
            if self.line is not None:
                loc += f":{self.line}"
                if self.col is not None:
                    loc += f":{self.col}"
            return loc
        return self.where or "<artifact>"

    @property
    def sort_key(self) -> tuple[str, str, int, int, str]:
        return (self.file or "", self.where, self.line or 0, self.col or 0, self.rule)

    def format(self) -> str:
        text = f"{self.location}: {self.severity}[{self.rule}] {self.message}"
        if self.hint:
            text += f"  ({self.hint})"
        return text

    def replace(self, **changes: Any) -> "Diagnostic":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location,
        }
        if self.file is not None:
            payload["file"] = self.file
            payload["line"] = self.line
            payload["col"] = self.col
        if self.where:
            payload["where"] = self.where
        if self.hint:
            payload["hint"] = self.hint
        return payload


def max_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """Highest severity present, or None for an empty run."""
    worst: Severity | None = None
    for diag in diagnostics:
        if worst is None or diag.severity > worst:
            worst = diag.severity
    return worst


def blocking(
    diagnostics: Iterable[Diagnostic], strict: bool = False
) -> list[Diagnostic]:
    """The diagnostics that should fail a gated run.

    Errors always block; with ``strict`` warnings block too.
    """
    floor = Severity.WARNING if strict else Severity.ERROR
    return [d for d in diagnostics if d.severity >= floor]


def require_positive(value: Number, name: str) -> Number:
    """Return ``value`` if strictly positive, else raise ConfigurationError."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(value: Number, name: str) -> Number:
    """Return ``value`` if >= 0, else raise ConfigurationError."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def require_in_range(value: Number, low: float, high: float, name: str) -> Number:
    """Return ``value`` if ``low <= value <= high``, else raise."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def require_name(value: str, name: str) -> str:
    """Return ``value`` if a non-empty string without whitespace padding."""
    if not isinstance(value, str) or not value or value != value.strip():
        raise ConfigurationError(
            f"{name} must be a non-empty, unpadded string, got {value!r}"
        )
    return value
