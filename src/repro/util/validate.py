"""Small argument-validation helpers.

Constructors across the package perform the same checks (positive rates,
non-empty names, ranges). Centralizing them keeps error messages uniform and
the call sites one line.
"""

from __future__ import annotations

from typing import TypeVar

from repro.errors import ConfigurationError

Number = TypeVar("Number", int, float)

__all__ = ["require_positive", "require_non_negative", "require_in_range", "require_name"]


def require_positive(value: Number, name: str) -> Number:
    """Return ``value`` if strictly positive, else raise ConfigurationError."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(value: Number, name: str) -> Number:
    """Return ``value`` if >= 0, else raise ConfigurationError."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def require_in_range(value: Number, low: float, high: float, name: str) -> Number:
    """Return ``value`` if ``low <= value <= high``, else raise."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def require_name(value: str, name: str) -> str:
    """Return ``value`` if a non-empty string without whitespace padding."""
    if not isinstance(value, str) or not value or value != value.strip():
        raise ConfigurationError(
            f"{name} must be a non-empty, unpadded string, got {value!r}"
        )
    return value
