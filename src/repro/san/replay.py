"""Perturbation replay: demonstrate races as observable divergence.

The happens-before analysis (:mod:`repro.san.recorder`) reasons about
*potential* reorderings; replay makes them real. A scenario is re-run
with :meth:`repro.sim.SimKernel.perturb_ties` installed under a handful
of seeds — each seed is a different but causally valid tie-breaking of
equal-timestamp events — and the traces are fingerprinted with a
*schedule-stable digest*:

* records are rendered exactly like
  :func:`repro.chaos.scenarios.trace_digest` renders them;
* but within each identical timestamp the rendered lines are **sorted**
  before hashing.

Sorting inside an instant makes the digest invariant to the one thing a
benign tie-break permutation is allowed to change — the emission order of
records *within* an instant — while staying sensitive to everything a
real race changes: record content, timing, count, or records moving
across instants. A digest mismatch against the unperturbed run is
therefore an observable schedule race (rule ``SAN010``), reproducible
from the perturbation seed.
"""

from __future__ import annotations

import hashlib

from repro.sim.trace import Tracer

__all__ = ["schedule_stable_digest"]


def schedule_stable_digest(tracer: Tracer) -> str:
    """SHA-256 of the trace, insensitive to within-instant record order."""
    digest = hashlib.sha256()
    instant: list[str] = []
    instant_time: float | None = None

    def flush() -> None:
        for line in sorted(instant):
            digest.update(line.encode())
        instant.clear()

    for record in tracer:
        if record.time != instant_time:
            flush()
            instant_time = record.time
        instant.append(
            f"{record.time!r}|{record.source}|{record.event}"
            f"|{sorted(record.fields.items())!r}\n"
        )
    flush()
    return digest.hexdigest()
