"""Scenario registry and orchestration for ``repro san``.

A *sanitizer scenario* is a named, deterministic simulation the sanitizer
knows how to run under a prepare hook: the Fig. 5 watching experiment
plus every chaos scenario. For each requested scenario the runner does

1. a **base run** with :class:`~repro.san.recorder.SimSan` installed —
   the happens-before pass, yielding SAN001/SAN002 race diagnostics;
2. ``--perturb N`` **replay runs**, each with seeded equal-timestamp
   tie-break perturbation, diffing schedule-stable digests against the
   base run (:mod:`repro.san.replay`) — divergence is SAN010.

Everything is in-process and derived from fixed seeds: no golden files
are consulted, so the gate cannot go stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.san.recorder import RaceFinding, SimSan
from repro.san.replay import schedule_stable_digest
from repro.san.rules import SAN_RULES
from repro.sim.trace import Tracer
from repro.util.validate import Diagnostic

__all__ = [
    "SanScenario",
    "SAN_SCENARIOS",
    "ScenarioSanResult",
    "SanReport",
    "get_san_scenario",
    "sanitize_scenario",
    "run_sanitizer",
]

#: Hook the runner passes into a scenario builder; receives the bare
#: SimRuntime before any component exists.
PrepareHook = Callable[[Any], None]


@dataclass(frozen=True)
class SanScenario:
    """One named simulation the sanitizer can drive."""

    name: str
    description: str
    #: Build and run the scenario under ``prepare``; return its tracer.
    run: Callable[[PrepareHook], Tracer]


def _run_fig5(prepare: PrepareHook) -> Tracer:
    from repro.bench.scenarios import run_fig5_experiment

    # observe=False: the sanitizer fingerprints the raw event trace; span
    # scaffolding would only slow the replay runs down.
    runtime = run_fig5_experiment(observe=False, prepare=prepare)
    return runtime.tracer


def _chaos_runner(name: str) -> Callable[[PrepareHook], Tracer]:
    def run(prepare: PrepareHook) -> Tracer:
        from repro.chaos.scenarios import run_scenario

        result = run_scenario(name, seed=0, observe=False, prepare=prepare)
        assert result.tracer is not None
        return result.tracer

    return run


def _build_registry() -> dict[str, SanScenario]:
    from repro.chaos.scenarios import SCENARIOS as CHAOS_SCENARIOS

    registry = {
        "fig5": SanScenario(
            name="fig5",
            description="the Fig. 5 watching experiment (fall at t=20 s)",
            run=_run_fig5,
        )
    }
    for name, chaos in CHAOS_SCENARIOS.items():
        registry[name] = SanScenario(
            name=name,
            description=f"chaos: {chaos.description}",
            run=_chaos_runner(name),
        )
    return registry


SAN_SCENARIOS: dict[str, SanScenario] = _build_registry()


def get_san_scenario(name: str) -> SanScenario:
    try:
        return SAN_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sanitizer scenario {name!r} (known: {sorted(SAN_SCENARIOS)})"
        ) from None


@dataclass
class ScenarioSanResult:
    """Everything the sanitizer learned about one scenario."""

    scenario: str
    events: int
    cells: int
    findings: list[RaceFinding]
    suppressed: int
    diagnostics: list[Diagnostic]
    base_digest: str
    #: (perturbation seed, schedule-stable digest) per replay run.
    perturbed: list[tuple[int, str]] = field(default_factory=list)

    @property
    def diverged_seeds(self) -> list[int]:
        return [seed for seed, digest in self.perturbed if digest != self.base_digest]


@dataclass
class SanReport:
    """Aggregated result over every requested scenario."""

    results: list[ScenarioSanResult]

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return [d for result in self.results for d in result.diagnostics]

    @property
    def suppressed(self) -> int:
        return sum(result.suppressed for result in self.results)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenarios": [
                {
                    "name": result.scenario,
                    "events": result.events,
                    "cells": result.cells,
                    "race_pairs": len(
                        [f for f in result.findings if not f.suppressed]
                    ),
                    "suppressed_pairs": result.suppressed,
                    "base_digest": result.base_digest,
                    "perturbed": [
                        {"seed": seed, "digest": digest, "diverged": digest != result.base_digest}
                        for seed, digest in result.perturbed
                    ],
                    "diagnostics": [d.to_dict() for d in result.diagnostics],
                }
                for result in self.results
            ],
        }


def _with_profiling(prepare: PrepareHook) -> PrepareHook:
    """Compose a prepare hook with profiler installation.

    The profiler's ``prof.sample`` records land in the trace, so running
    it under both the base and every perturbed run folds profile
    determinism into the schedule-stable digest: a profiler whose output
    depended on tie-break order would surface as SAN010.
    """

    def hook(runtime: Any) -> None:
        prepare(runtime)
        from repro.prof import enable_profiling

        enable_profiling(runtime)

    return hook


def sanitize_scenario(
    scenario: SanScenario | str, perturb: int = 3, profile: bool = False
) -> ScenarioSanResult:
    """Run the HB pass and ``perturb`` replay runs for one scenario.

    ``profile=True`` additionally installs the sim-time profiler in every
    run (base and perturbed), proving profiles are race-free under
    tie-break perturbation.
    """
    if isinstance(scenario, str):
        scenario = get_san_scenario(scenario)
    san = SimSan()
    base_prepare: PrepareHook = san.install
    if profile:
        base_prepare = _with_profiling(base_prepare)
    tracer = scenario.run(base_prepare)
    findings = san.analyze()
    diagnostics, suppressed = san.diagnostics(findings)
    base_digest = schedule_stable_digest(tracer)
    result = ScenarioSanResult(
        scenario=scenario.name,
        events=san.events_observed,
        cells=san.cells_touched,
        findings=findings,
        suppressed=suppressed,
        diagnostics=diagnostics,
        base_digest=base_digest,
    )
    for seed in range(1, perturb + 1):
        replay_prepare: PrepareHook = (
            lambda runtime, _seed=seed: runtime.kernel.perturb_ties(_seed)
        )
        if profile:
            replay_prepare = _with_profiling(replay_prepare)
        perturbed_tracer = scenario.run(replay_prepare)
        digest = schedule_stable_digest(perturbed_tracer)
        result.perturbed.append((seed, digest))
        if digest != base_digest:
            rule = SAN_RULES["SAN010"]
            result.diagnostics.append(
                Diagnostic(
                    rule="SAN010",
                    severity=rule.severity,
                    message=(
                        f"scenario {scenario.name!r}: tie-break perturbation "
                        f"seed {seed} diverged (base {base_digest[:12]}…, "
                        f"perturbed {digest[:12]}…)"
                    ),
                    where=f"scenario {scenario.name}",
                    hint=rule.hint,
                )
            )
    return result


def run_sanitizer(
    scenarios: "list[str] | None" = None, perturb: int = 3, profile: bool = False
) -> SanReport:
    """Sanitize the named scenarios (default: every registered one)."""
    names = scenarios if scenarios else sorted(SAN_SCENARIOS)
    return SanReport(
        results=[
            sanitize_scenario(name, perturb=perturb, profile=profile)
            for name in names
        ]
    )
