"""``# repro: san-ok[RULE]`` annotations on tracked-state declarations.

A race on a state cell is sometimes *benign by construction* — e.g. the
WLAN pending buffer, whose same-instant appends are erased by the
canonical flush sort. Such cells carry a ``# repro: san-ok[SAN001]``
comment on the line of their :func:`repro.runtime.state.tracked_state`
declaration; the sanitizer then drops matching findings (counting them as
suppressed, never silently).

Parsing reuses the lint suppression tokenizer
(:func:`repro.lint.suppress.parse_suppressions` with ``marker="san-ok"``),
so the comment grammar — bare marker, rule lists, ``-file`` scope — is
identical to ``# repro: lint-ok``.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.suppress import Suppressions, parse_suppressions

__all__ = ["SanOkRegistry"]


class SanOkRegistry:
    """Lazily parsed ``san-ok`` annotations, cached per source file."""

    def __init__(self) -> None:
        self._by_file: dict[str, Suppressions] = {}

    def _suppressions(self, filename: str) -> Suppressions:
        cached = self._by_file.get(filename)
        if cached is None:
            try:
                source = Path(filename).read_text(encoding="utf-8")
            except OSError:
                source = ""
            cached = parse_suppressions(source, marker="san-ok")
            self._by_file[filename] = cached
        return cached

    def is_suppressed(self, rule: str, site: tuple[str, int]) -> bool:
        """Whether ``rule`` is annotated away at declaration ``site``."""
        filename, line = site
        return self._suppressions(filename).is_suppressed(rule, line)
