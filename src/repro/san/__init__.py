"""Schedule sanitizer: happens-before race detection + perturbation replay.

The determinism linter (:mod:`repro.lint`) catches *sources* of
nondeterminism statically; this package catches *schedule-order races*
dynamically. A race here is not a threading bug — the kernel is
single-threaded — but a **hidden ordering dependency**: two events at the
same virtual instant whose relative order is a FIFO accident, yet whose
order changes program state. Such code is deterministic today and silently
changes behaviour the day an unrelated edit perturbs scheduling order.

Two complementary passes (see :mod:`repro.san.recorder` and
:mod:`repro.san.replay`), surfaced by ``repro san`` and gated in CI:

1. **Happens-before analysis** — instrument the kernel and every tracked
   state cell, report unordered conflicting same-instant accesses
   (``SAN001``/``SAN002``).
2. **Perturbation replay** — re-run the scenario under seeded
   equal-timestamp tie-breaking and diff schedule-stable trace digests;
   divergence (``SAN010``) is a race made observable.

Benign-by-construction cells are annotated ``# repro: san-ok[RULE]`` at
their declaration (:mod:`repro.san.suppress`).
"""

from repro.san.recorder import RaceFinding, SimSan
from repro.san.replay import schedule_stable_digest
from repro.san.rules import SAN_RULES, SanRule
from repro.san.runner import (
    SAN_SCENARIOS,
    SanReport,
    SanScenario,
    ScenarioSanResult,
    get_san_scenario,
    run_sanitizer,
    sanitize_scenario,
)
from repro.san.suppress import SanOkRegistry

__all__ = [
    "RaceFinding",
    "SAN_RULES",
    "SAN_SCENARIOS",
    "SanOkRegistry",
    "SanReport",
    "SanRule",
    "SanScenario",
    "ScenarioSanResult",
    "SimSan",
    "get_san_scenario",
    "run_sanitizer",
    "sanitize_scenario",
    "schedule_stable_digest",
]
