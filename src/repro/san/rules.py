"""The sanitizer's rule catalog (SAN0xx).

Mirrors :mod:`repro.lint.rules` in spirit: every diagnostic the schedule
sanitizer can emit is declared here with a stable id, a severity and a
hint, so ``repro san --list`` and the docs never drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validate import Severity

__all__ = ["SanRule", "SAN_RULES"]


@dataclass(frozen=True)
class SanRule:
    """One schedule-sanitizer rule."""

    rule_id: str
    severity: Severity
    description: str
    hint: str


SAN_RULES: dict[str, SanRule] = {
    rule.rule_id: rule
    for rule in (
        SanRule(
            rule_id="SAN001",
            severity=Severity.ERROR,
            description=(
                "write-write schedule race: two events at the same virtual "
                "instant both write a state cell with no happens-before "
                "path between them — their order is a scheduling accident"
            ),
            hint=(
                "order the writes causally (schedule one from the other), "
                "move one to a kernel epilogue, or annotate the cell "
                "declaration '# repro: san-ok[SAN001]' if provably "
                "commutative"
            ),
        ),
        SanRule(
            rule_id="SAN002",
            severity=Severity.WARNING,
            description=(
                "read-write schedule race: an unordered same-instant "
                "reader observes a cell another event writes — whether it "
                "sees the old or new value is a scheduling accident"
            ),
            hint=(
                "make the read depend on the write (or vice versa), or "
                "annotate the cell declaration '# repro: san-ok[SAN002]' "
                "if either value is acceptable"
            ),
        ),
        SanRule(
            rule_id="SAN020",
            severity=Severity.ERROR,
            description=(
                "undeclared schedule-reachable state: a method reachable "
                "from scheduled handlers mutates an instance attribute of "
                "a class that declares no tracked_state cell at all — the "
                "dynamic sanitizer is blind to every race on it"
            ),
            hint=(
                "declare the state with tracked_state(...) (repro.runtime."
                "state) so SAN001/SAN002 can see it, or annotate the "
                "mutation '# repro: san-ok[SAN020]' if it is init-only or "
                "commutative by construction"
            ),
        ),
        SanRule(
            rule_id="SAN021",
            severity=Severity.WARNING,
            description=(
                "partially tracked state: the class declares tracked_state "
                "cells, but this schedule-reachable mutation is in a "
                "method with no cell access on any path from a covered "
                "method — races on it are invisible to the sanitizer"
            ),
            hint=(
                "note the mutation through an existing cell (note_write), "
                "declare a cell for the attribute, or annotate "
                "'# repro: san-ok[SAN021]' if the attribute is init-only "
                "or commutative by construction"
            ),
        ),
        SanRule(
            rule_id="SAN010",
            severity=Severity.ERROR,
            description=(
                "perturbation divergence: re-running the scenario with "
                "seeded equal-timestamp tie-breaking produced a different "
                "schedule-stable trace digest — a schedule-order race is "
                "observable in the output"
            ),
            hint=(
                "the diverging run's perturbation seed reproduces it "
                "deterministically; use the SAN001/SAN002 findings to "
                "locate the racing state"
            ),
        ),
    )
}
