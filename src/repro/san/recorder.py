"""SimSan: the happens-before schedule sanitizer.

:class:`SimSan` implements the kernel's :class:`~repro.sim.kernel.KernelMonitor`
protocol and the runtime's ``san`` hook simultaneously:

* the kernel reports every *event* — when it was scheduled, by whom (its
  schedule parent), and when its handler ran;
* tracked state cells (:mod:`repro.runtime.state`) report every *access*
  — which cell, read or write — which SimSan attributes to the event
  whose handler is executing.

From those two streams it builds a happens-before relation at event
granularity and reports **schedule races**: pairs of events at the same
virtual instant that touch the same cell (at least one writing) with no
happens-before path between them. Such pairs execute in an order that is
an accident of scheduling — the FIFO tiebreak of the event queue — and a
different but equally valid tie-breaking (see
:meth:`repro.sim.SimKernel.perturb_ties`) may reorder them and change
program behaviour.

Happens-before edges
--------------------
1. **Schedule parentage** — an event happens-after the event during whose
   execution it was scheduled. This single edge kind transitively covers
   message causality (send → channel flush → deliver are all schedule
   chains) because an event cannot enter the heap before its creator runs.
2. **Epilogue contract** — a normal event at time *t* happens-before every
   epilogue event at *t* (the kernel guarantees epilogues pop last at
   their instant, under perturbation included).

Events at *different* instants are always ordered by the virtual clock,
so only same-instant pairs are ever candidate races.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.san.rules import SAN_RULES
from repro.san.suppress import SanOkRegistry
from repro.sim.events import EventHandle
from repro.util.validate import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.state import StateCell
    from repro.sim.kernel import SimKernel

__all__ = ["RaceFinding", "SimSan"]


@dataclass(frozen=True)
class RaceFinding:
    """One unordered conflicting same-instant event pair on one cell."""

    rule: str  # SAN001 (write-write) or SAN002 (read-write)
    cell: str  # the cell's owner:name key
    site: tuple[str, int]  # tracked_state declaration (file, line)
    time: float  # the shared virtual instant
    #: (event seq, access kind, handler label) for both events, seq-ordered.
    access_a: tuple[int, str, str]
    access_b: tuple[int, str, str]
    suppressed: bool = False


class _EventInfo:
    __slots__ = ("time", "parent", "epilogue_priority", "label")

    def __init__(
        self,
        time: float,
        parent: int | None,
        epilogue_priority: "int | None",
        label: str,
    ) -> None:
        self.time = time
        self.parent = parent
        self.epilogue_priority = epilogue_priority
        self.label = label


def _label_of(handle: EventHandle) -> str:
    callback = handle.callback
    label = getattr(callback, "__qualname__", None)
    if label is None:  # pragma: no cover - exotic callables
        label = getattr(type(callback), "__qualname__", repr(callback))
    return str(label)


class SimSan:
    """Recorder + analyzer for one simulation run.

    Install with :meth:`install` on a fresh runtime *before* components
    are built, run the scenario, then call :meth:`analyze` /
    :meth:`diagnostics`.
    """

    def __init__(self, suppressions: SanOkRegistry | None = None) -> None:
        self._events: dict[int, _EventInfo] = {}
        self._current: int | None = None
        #: cell key -> {event seq -> "read" | "write"} ("write" wins).
        self._accesses: dict[str, dict[int, str]] = {}
        self._cells: dict[str, "StateCell"] = {}
        self.suppressions = suppressions if suppressions is not None else (
            SanOkRegistry()
        )
        self.accesses_recorded = 0

    def install(self, runtime: Any) -> None:
        """Attach to ``runtime`` (a SimRuntime): become both the kernel's
        monitor and the runtime's ``san`` hook."""
        kernel: "SimKernel" = runtime.kernel
        kernel.monitor = self
        runtime.san = self

    # ------------------------------------------------------------------
    # KernelMonitor protocol
    # ------------------------------------------------------------------

    def event_scheduled(
        self, handle: EventHandle, parent: EventHandle | None
    ) -> None:
        self._events[handle.seq] = _EventInfo(
            handle.time,
            parent.seq if parent is not None else None,
            handle.epilogue_priority,
            _label_of(handle),
        )

    def event_begin(self, handle: EventHandle) -> None:
        if handle.seq not in self._events:
            # Scheduled before the monitor was installed: no parent known.
            self._events[handle.seq] = _EventInfo(
                handle.time, None, handle.epilogue_priority, _label_of(handle)
            )
        self._current = handle.seq

    def event_end(self, handle: EventHandle) -> None:
        self._current = None

    # ------------------------------------------------------------------
    # runtime.san hook (called by StateCell)
    # ------------------------------------------------------------------

    def on_access(self, cell: "StateCell", kind: str) -> None:
        seq = self._current
        if seq is None:
            # Setup/teardown code outside any event: it runs strictly
            # before (after) the whole schedule, so it cannot race.
            return
        self.accesses_recorded += 1
        self._cells.setdefault(cell.key, cell)
        by_event = self._accesses.setdefault(cell.key, {})
        if kind == "write" or by_event.get(seq) != "write":
            by_event[seq] = kind

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    @property
    def events_observed(self) -> int:
        return len(self._events)

    @property
    def cells_touched(self) -> int:
        return len(self._accesses)

    def _epilogue_chain(self, seq: int) -> list[int]:
        """Epilogue ancestors of ``seq`` at its instant, outermost first
        (``seq`` itself included when it is an epilogue).

        Within one instant the kernel executes in *waves*: pending normal
        events always drain before any epilogue pops, and each epilogue's
        same-instant spawn runs before the next epilogue. An event's
        position is therefore determined by the chain of epilogues its
        schedule ancestry passed through — its *phase*.
        """
        t = self._events[seq].time
        chain: list[int] = []
        cursor: "int | None" = seq
        while cursor is not None:
            info = self._events.get(cursor)
            if info is None or info.time != t:
                break
            if info.epilogue_priority is not None:
                chain.append(cursor)
            cursor = info.parent
        chain.reverse()
        return chain

    def _happens_before(self, a: int, b: int) -> bool:
        """Whether same-instant events ``a`` and ``b`` are HB-ordered."""
        # Epilogue contract: compare the two phases (epilogue-ancestor
        # chains). Past the common prefix,
        # * one chain extending the other means the deeper event descends
        #   through an epilogue that pops only after the shallower event's
        #   wave has drained — deterministically ordered;
        # * two *different* epilogues at the first divergence are siblings
        #   of one wave: both are in the heap before either pops, so
        #   differing priorities order them (and everything below them)
        #   deterministically, while equal priorities pop in seq order —
        #   a schedule accident, hence no edge.
        chain_a, chain_b = self._epilogue_chain(a), self._epilogue_chain(b)
        i = 0
        while i < len(chain_a) and i < len(chain_b) and chain_a[i] == chain_b[i]:
            i += 1
        if i == len(chain_a) or i == len(chain_b):
            if len(chain_a) != len(chain_b):
                return True
        else:
            prio_a = self._events[chain_a[i]].epilogue_priority
            prio_b = self._events[chain_b[i]].epilogue_priority
            if prio_a != prio_b:
                return True
        t = self._events[b].time
        # Schedule-parent ancestry. Each event has exactly one parent and
        # parents never have later times, so an ancestor at the same
        # instant is reachable through a chain of same-instant parents.
        for start, target in ((b, a), (a, b)):
            cursor = self._events[start].parent
            while cursor is not None:
                info = self._events.get(cursor)
                if info is None or info.time != t:
                    break
                if cursor == target:
                    return True
                cursor = info.parent
        return False

    def analyze(self) -> list[RaceFinding]:
        """All conflicting unordered same-instant access pairs."""
        findings: list[RaceFinding] = []
        for key in sorted(self._accesses):
            by_event = self._accesses[key]
            cell = self._cells[key]
            by_time: dict[float, list[int]] = {}
            for seq in by_event:
                info = self._events.get(seq)
                if info is None:  # pragma: no cover - defensive
                    continue
                by_time.setdefault(info.time, []).append(seq)
            for time in sorted(by_time):
                group = sorted(by_time[time])
                if len(group) < 2:
                    continue
                for i, a in enumerate(group):
                    for b in group[i + 1 :]:
                        kind_a, kind_b = by_event[a], by_event[b]
                        if kind_a != "write" and kind_b != "write":
                            continue  # read-read never conflicts
                        if self._happens_before(a, b):
                            continue
                        rule = (
                            "SAN001"
                            if kind_a == "write" and kind_b == "write"
                            else "SAN002"
                        )
                        findings.append(
                            RaceFinding(
                                rule=rule,
                                cell=key,
                                site=cell.site,
                                time=time,
                                access_a=(a, kind_a, self._events[a].label),
                                access_b=(b, kind_b, self._events[b].label),
                                suppressed=self.suppressions.is_suppressed(
                                    rule, cell.site
                                ),
                            )
                        )
        return findings

    def diagnostics(
        self, findings: "list[RaceFinding] | None" = None
    ) -> tuple[list[Diagnostic], int]:
        """Aggregate findings into per-(cell, rule) diagnostics.

        Returns ``(diagnostics, suppressed_finding_count)``. One
        :class:`~repro.util.validate.Diagnostic` is emitted per racing
        (cell, rule) pair — anchored at the cell's declaration — naming
        the first conflicting event pair and the total number of pairs,
        so a hot cell cannot flood the report.
        """
        if findings is None:
            findings = self.analyze()
        suppressed = sum(1 for f in findings if f.suppressed)
        grouped: dict[tuple[str, str], list[RaceFinding]] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            grouped.setdefault((finding.cell, finding.rule), []).append(finding)
        diagnostics: list[Diagnostic] = []
        for (cell_key, rule_id), group in sorted(grouped.items()):
            rule = SAN_RULES[rule_id]
            first = group[0]
            seq_a, kind_a, label_a = first.access_a
            seq_b, kind_b, label_b = first.access_b
            pair_note = (
                f"{len(group)} unordered pair{'s' if len(group) != 1 else ''}"
            )
            diagnostics.append(
                Diagnostic(
                    rule=rule_id,
                    severity=rule.severity,
                    message=(
                        f"cell {cell_key!r}: {pair_note}, first at "
                        f"t={first.time:g}: event #{seq_a} ({label_a}, "
                        f"{kind_a}) vs event #{seq_b} ({label_b}, {kind_b})"
                    ),
                    file=first.site[0],
                    line=first.site[1],
                    where=cell_key,
                    hint=rule.hint,
                )
            )
        return diagnostics, suppressed
