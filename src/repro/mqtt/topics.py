"""MQTT topic names, filters, and the broker's subscription trie.

Semantics follow the MQTT 3.1.1 specification:

* topic *names* (used when publishing) are ``/``-separated UTF-8 levels and
  may not contain wildcards;
* topic *filters* (used when subscribing) may use ``+`` (exactly one level)
  and ``#`` (any number of trailing levels, only as the last level);
* matching is per level; an empty level is legal (``a//b`` has three
  levels); ``#`` also matches its parent (``sport/#`` matches ``sport``).

:class:`TopicTree` stores values under filters in a trie and answers
"which values match this topic name" in time proportional to the topic
depth times the branching, independent of total subscription count.

The validators and :func:`topic_matches` are on the publish hot path
(every broker fan-out re-validates), so successful results are memoized
in small bounded caches. Only *valid* strings are cached — error paths
always re-run the full check so messages stay exact.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.errors import TopicError

T = TypeVar("T")

__all__ = ["validate_topic", "validate_filter", "topic_matches", "TopicTree"]

_WILDCARDS = ("+", "#")

#: Bound on each memo cache; topics in a deployment are a small closed set,
#: so in practice these never fill. Caches stop admitting (rather than
#: evict) at the cap — correctness never depends on a hit.
_CACHE_CAP = 4096

_valid_topics: set[str] = set()
_valid_filters: set[str] = set()
_match_cache: dict[tuple[str, str], bool] = {}


def _split(topic: str) -> list[str]:
    if not topic:
        raise TopicError("topic must be non-empty")
    if "\x00" in topic:
        raise TopicError("topic may not contain NUL")
    return topic.split("/")


def validate_topic(topic: str) -> str:
    """Validate a publishable topic name; returns it unchanged."""
    if topic in _valid_topics:
        return topic
    for level in _split(topic):
        for wildcard in _WILDCARDS:
            if wildcard in level:
                raise TopicError(
                    f"wildcard {wildcard!r} not allowed in topic name {topic!r}"
                )
    if len(_valid_topics) < _CACHE_CAP:
        _valid_topics.add(topic)
    return topic


def validate_filter(topic_filter: str) -> str:
    """Validate a subscription filter; returns it unchanged."""
    if topic_filter in _valid_filters:
        return topic_filter
    levels = _split(topic_filter)
    for i, level in enumerate(levels):
        if level == "#":
            if i != len(levels) - 1:
                raise TopicError(f"'#' must be the last level in {topic_filter!r}")
        elif level == "+":
            continue
        elif "+" in level or "#" in level:
            raise TopicError(
                f"wildcard must occupy a whole level in {topic_filter!r}"
            )
    if len(_valid_filters) < _CACHE_CAP:
        _valid_filters.add(topic_filter)
    return topic_filter


def topic_matches(topic_filter: str, topic: str) -> bool:
    """Does ``topic_filter`` match the concrete ``topic``?

    >>> topic_matches("sensor/+/temp", "sensor/room1/temp")
    True
    >>> topic_matches("sensor/#", "sensor")
    True
    >>> topic_matches("sensor/+", "sensor/a/b")
    False
    """
    key = (topic_filter, topic)
    cached = _match_cache.get(key)
    if cached is not None:
        return cached
    validate_filter(topic_filter)
    validate_topic(topic)
    result = _matches(topic_filter.split("/"), topic.split("/"))
    if len(_match_cache) < _CACHE_CAP:
        _match_cache[key] = result
    return result


def _matches(filter_levels: list[str], topic_levels: list[str]) -> bool:
    for i, flevel in enumerate(filter_levels):
        if flevel == "#":
            return True
        if i >= len(topic_levels):
            return False
        if flevel == "+":
            continue
        if flevel != topic_levels[i]:
            return False
    return len(topic_levels) <= len(filter_levels)


class _TrieNode(Generic[T]):
    __slots__ = ("children", "values")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode[T]] = {}
        self.values: list[T] = []

    @property
    def empty(self) -> bool:
        return not self.children and not self.values


class TopicTree(Generic[T]):
    """Subscription trie mapping topic filters to lists of values."""

    def __init__(self) -> None:
        self._root: _TrieNode[T] = _TrieNode()
        self._count = 0

    def __len__(self) -> int:
        """Number of (filter, value) entries stored."""
        return self._count

    def insert(self, topic_filter: str, value: T) -> None:
        """Store ``value`` under ``topic_filter``. Duplicates are kept."""
        validate_filter(topic_filter)
        node = self._root
        for level in topic_filter.split("/"):
            node = node.children.setdefault(level, _TrieNode())
        node.values.append(value)
        self._count += 1

    def remove(self, topic_filter: str, value: T) -> bool:
        """Remove one occurrence of ``value`` under ``topic_filter``.

        Returns True if something was removed; prunes empty trie branches.
        """
        validate_filter(topic_filter)
        levels = topic_filter.split("/")
        path: list[tuple[_TrieNode[T], str]] = []
        node = self._root
        for level in levels:
            child = node.children.get(level)
            if child is None:
                return False
            path.append((node, level))
            node = child
        try:
            node.values.remove(value)
        except ValueError:
            return False
        self._count -= 1
        for parent, level in reversed(path):
            child = parent.children[level]
            if child.empty:
                del parent.children[level]
            else:
                break
        return True

    def match(self, topic: str) -> list[T]:
        """All values whose filter matches ``topic``, in insertion order
        within each filter (cross-filter order is traversal order)."""
        validate_topic(topic)
        levels = topic.split("/")
        results: list[T] = []
        self._collect(self._root, levels, 0, results)
        return results

    def _collect(
        self,
        node: _TrieNode[T],
        levels: list[str],
        depth: int,
        results: list[T],
    ) -> None:
        hash_child = node.children.get("#")
        if hash_child is not None:
            results.extend(hash_child.values)
        if depth == len(levels):
            results.extend(node.values)
            return
        level = levels[depth]
        exact = node.children.get(level)
        if exact is not None:
            self._collect(exact, levels, depth + 1, results)
        plus = node.children.get("+")
        if plus is not None:
            self._collect(plus, levels, depth + 1, results)

    def filters(self) -> Iterator[str]:
        """Yield every stored filter (once per filter with values)."""

        def walk(node: _TrieNode[T], prefix: list[str]) -> Iterator[str]:
            if node.values:
                yield "/".join(prefix)
            for level, child in node.children.items():
                yield from walk(child, prefix + [level])

        yield from walk(self._root, [])
