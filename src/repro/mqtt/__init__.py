"""MQTT-style publish/subscribe substrate (Mosquitto substitute).

The paper's flow-distribution mechanism is built on Mosquitto, "a
lightweight communications scheme by MQTT protocol" (§V-A). This package is
a from-scratch reimplementation of the protocol features the middleware
needs, written against the runtime abstraction so it runs simulated or real:

* hierarchical topics with ``+`` and ``#`` wildcards
  (:mod:`repro.mqtt.topics`);
* a broker with sessions, per-topic subscription routing, retained
  messages, and keep-alive expiry (:mod:`repro.mqtt.broker`);
* a client with QoS 0 (at-most-once) and QoS 1 (at-least-once with
  retransmission and dup-flagging) (:mod:`repro.mqtt.client`).
"""

from repro.mqtt.broker import Broker, BrokerStats
from repro.mqtt.client import MqttClient, Subscription
from repro.mqtt.packets import Packet, PacketType
from repro.mqtt.topics import TopicTree, topic_matches, validate_filter, validate_topic

__all__ = [
    "Broker",
    "BrokerStats",
    "MqttClient",
    "Packet",
    "PacketType",
    "Subscription",
    "TopicTree",
    "topic_matches",
    "validate_filter",
    "validate_topic",
]
