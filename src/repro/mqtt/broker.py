"""The MQTT broker (the paper's *Broker class*, Fig. 4).

One broker instance runs as a component on a neuron module (module D in the
paper's experiment, Fig. 9) and "manages the distribution of data in
accordance with the topic the subscription class specifies" (§IV-C-3).

Supported protocol surface: CONNECT/CONNACK with clean or persistent
sessions, PUBLISH at QoS 0/1 (with broker-side retransmission towards
subscribers), SUBSCRIBE/UNSUBSCRIBE with wildcards, retained messages,
PINGREQ/PINGRESP, DISCONNECT, and keep-alive-based session expiry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.address import Address
from repro.mqtt.packets import Packet, PacketType
from repro.mqtt.topics import TopicTree, topic_matches, validate_topic
from repro.obs.context import FlowContext
from repro.runtime.base import TimerHandle
from repro.runtime.component import Component
from repro.runtime.node import Node
from repro.runtime.state import StateCell, tracked_state
from repro.errors import ProtocolError

__all__ = ["Broker", "BrokerStats", "BROKER_SERVICE"]

#: Service name the broker binds on its node.
BROKER_SERVICE = "mqtt"


@dataclass
class BrokerStats:
    """Counters exposed for tests and the benchmark harness."""

    connects: int = 0
    publishes_in: int = 0
    publishes_out: int = 0
    pubacks_in: int = 0
    retransmissions: int = 0
    drops_give_up: int = 0
    sessions_expired: int = 0
    retained_stored: int = 0
    wills_published: int = 0


@dataclass
class _Inflight:
    packet: Packet
    destination: Address
    retries_left: int
    timer: TimerHandle | None = None


@dataclass
class _Session:
    client_id: str
    address: Address
    clean: bool
    keepalive_s: float
    last_seen: float
    subscriptions: dict[str, int] = field(default_factory=dict)
    inflight: dict[int, _Inflight] = field(default_factory=dict)
    next_packet_id: int = 1
    connected: bool = True
    will: dict[str, Any] | None = None
    #: Highest boot count seen in this client's stamped keep-alives. A
    #: ping stamped below it belongs to a dead incarnation (it was in
    #: flight across a restart) and must not pass for liveness.
    incarnation: int = 0
    #: Sanitizer tag for this session's protocol state (packet-id counter,
    #: inflight queue, liveness) — set by the broker on session creation.
    cell: StateCell | None = None

    def allocate_packet_id(self) -> int:
        pid = self.next_packet_id
        self.next_packet_id = pid % 65535 + 1
        return pid


@dataclass(frozen=True)
class _Retained:
    payload: Any
    qos: int
    headers: dict[str, Any]


class Broker(Component):
    """Topic-based message router with sessions and QoS 0/1 delivery."""

    def __init__(
        self,
        node: Node,
        name: str = "broker",
        retry_interval_s: float = 2.0,
        max_retries: int = 5,
        keepalive_grace: float = 1.5,
        sweep_interval_s: float = 5.0,
    ) -> None:
        super().__init__(node, name)
        self.retry_interval_s = retry_interval_s
        self.max_retries = max_retries
        self.keepalive_grace = keepalive_grace
        self.sweep_interval_s = sweep_interval_s
        self.stats = BrokerStats()
        self._sessions: dict[str, _Session] = {}
        self._address_index: dict[Address, str] = {}
        self._subscriptions: TopicTree[str] = TopicTree()  # filter -> client ids
        # Fan-out resolution cache: topic -> deduped [(client_id, sub_qos)]
        # in trie traversal order, exactly what the per-publish matching
        # pass would compute. Invalidated whole on any subscription change
        # (subscribe, unsubscribe, session drop) — publishes vastly
        # outnumber those, so one matching pass serves a whole run.
        self._resolution: dict[str, list[tuple[str, int]]] = {}
        self._retained: dict[str, _Retained] = {}
        self._handlers = {
            PacketType.CONNECT: self._on_connect,
            PacketType.PUBLISH: self._on_publish,
            PacketType.PUBACK: self._on_puback,
            PacketType.SUBSCRIBE: self._on_subscribe,
            PacketType.UNSUBSCRIBE: self._on_unsubscribe,
            PacketType.PINGREQ: self._on_pingreq,
            PacketType.DISCONNECT: self._on_disconnect,
        }
        # Sanitizer tags (repro.runtime.state): the broker's shared stores
        # are native containers; these cells record read/write order at the
        # access choke points so the schedule sanitizer can detect
        # schedule-order races between concurrent client packets.
        self._retained_cell = tracked_state(self.runtime, f"broker.{name}", "retained")
        self._subscriptions_cell = tracked_state(
            self.runtime, f"broker.{name}", "subscriptions"
        )
        node.bind(BROKER_SERVICE, self._on_datagram)
        self.every(sweep_interval_s, self._sweep_sessions)

    @property
    def address(self) -> Address:
        """Where clients should send their packets."""
        return self.node.address(BROKER_SERVICE)

    def session_count(self) -> int:
        return len(self._sessions)

    def inflight_count(self) -> int:
        """QoS 1 messages awaiting PUBACK across all sessions."""
        return sum(
            len(self._sessions[cid].inflight) for cid in sorted(self._sessions)
        )

    def prof_gauges(self) -> dict[str, float]:
        """Occupancy sampled by the sim-time profiler (``repro.prof``)."""
        return {
            "broker.inflight": float(self.inflight_count()),
            "broker.sessions": float(len(self._sessions)),
        }

    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def retained_topics(self) -> list[str]:
        return sorted(self._retained)

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------

    def _on_datagram(self, source: Address, data: bytes) -> None:
        try:
            packet = Packet.decode(data)
        except ProtocolError:
            self.trace("mqtt.broker.garbage", source=str(source))
            return
        # Routing work occupies the broker node's CPU.
        self.node.execute(
            "mqtt.route", self._handle, source, packet, nbytes=len(data)
        )

    def _handle(self, source: Address, packet: Packet) -> None:
        session = self._touch(source)
        handler = self._handlers.get(packet.type)
        if handler is None:
            self.trace("mqtt.broker.unexpected", type=packet.type.value)
            return
        handler(source, session, packet)

    def _touch(self, source: Address) -> _Session | None:
        client_id = self._address_index.get(source)
        if client_id is None:
            return None
        session = self._sessions.get(client_id)
        if session is not None:
            # last_seen is deliberately not a tracked write: same-instant
            # packets all store the identical timestamp, so the order of
            # these writes can never matter.
            session.last_seen = self.runtime.now
        return session

    def _send(self, destination: Address, packet: Packet) -> None:
        self.node.send(BROKER_SERVICE, destination, packet.encode())

    # ------------------------------------------------------------------
    # CONNECT / DISCONNECT / PING
    # ------------------------------------------------------------------

    def _on_connect(
        self, source: Address, _session: _Session | None, packet: Packet
    ) -> None:
        client_id = packet["client_id"]
        clean = bool(packet.get("clean_session", True))
        keepalive = float(packet.get("keepalive_s", 60.0))
        will = packet.get("will")  # {topic, payload, qos, retain} or None
        self.stats.connects += 1

        existing = self._sessions.get(client_id)
        session_present = existing is not None and not clean
        if existing is not None:
            # Take over: drop the old address binding and pause inflight
            # retransmissions (they resume towards the new address below).
            self._address_index.pop(existing.address, None)
            self._pause_inflight(existing)
            if clean:
                self._cancel_inflight(existing, reason="clean_takeover")
                self._drop_subscriptions(existing)
                existing = None
        if existing is None:
            session = _Session(
                client_id=client_id,
                address=source,
                clean=clean,
                keepalive_s=keepalive,
                last_seen=self.runtime.now,
                will=dict(will) if will else None,
            )
            self._sessions[client_id] = session
        else:
            session = existing
            session.address = source
            session.keepalive_s = keepalive
            session.last_seen = self.runtime.now
            session.connected = True
            session.will = dict(will) if will else None
        if session.cell is None:
            session.cell = tracked_state(
                self.runtime, f"broker.{self.name}", f"session.{client_id}"
            )
        session.cell.note_write()
        self._address_index[source] = client_id
        self.trace("mqtt.broker.connect", client=client_id, clean=clean)
        self._send(source, Packet.connack(session_present=session_present))
        if session_present:
            # MQTT 3.1.1 §4.4: unacknowledged PUBLISH packets are resent
            # (dup-flagged) when a persistent session resumes.
            self._resume_inflight(session)

    def _on_disconnect(
        self, _source: Address, session: _Session | None, _packet: Packet
    ) -> None:
        if session is None:
            return
        self.trace("mqtt.broker.disconnect", client=session.client_id)
        session.will = None  # clean disconnects never fire the will
        self._remove_session(session, expired=False)

    def _on_pingreq(
        self, source: Address, session: _Session | None, packet: Packet
    ) -> None:
        if session is None:
            return
        incarnation = packet.get("incarnation")
        if incarnation is not None:
            incarnation = int(incarnation)
            if incarnation < session.incarnation:
                self.trace(
                    "mqtt.broker.stale_ping",
                    client=session.client_id,
                    incarnation=incarnation,
                    current=session.incarnation,
                )
                return
            session.incarnation = incarnation
        self._send(source, Packet.pingresp())

    # ------------------------------------------------------------------
    # SUBSCRIBE / UNSUBSCRIBE
    # ------------------------------------------------------------------

    def _on_subscribe(
        self, source: Address, session: _Session | None, packet: Packet
    ) -> None:
        if session is None:
            return  # not connected; MQTT closes the socket, we drop
        self._subscriptions_cell.note_write()
        self._resolution.clear()
        if session.cell is not None:
            session.cell.note_write()
        granted: list[int] = []
        for topic_filter, qos in packet["filters"]:
            qos = min(int(qos), 1)
            if topic_filter not in session.subscriptions:
                self._subscriptions.insert(topic_filter, session.client_id)
            session.subscriptions[topic_filter] = qos
            granted.append(qos)
            self.trace(
                "mqtt.broker.subscribe",
                client=session.client_id,
                filter=topic_filter,
                qos=qos,
            )
        self._send(source, Packet.suback(packet["packet_id"], granted))
        # Retained messages are delivered after the SUBACK, per spec intent.
        for topic_filter, _qos in packet["filters"]:
            self._deliver_retained(session, topic_filter)

    def _on_unsubscribe(
        self, source: Address, session: _Session | None, packet: Packet
    ) -> None:
        if session is None:
            return
        self._subscriptions_cell.note_write()
        self._resolution.clear()
        if session.cell is not None:
            session.cell.note_write()
        for topic_filter in packet["filters"]:
            if topic_filter in session.subscriptions:
                del session.subscriptions[topic_filter]
                self._subscriptions.remove(topic_filter, session.client_id)
                self.trace(
                    "mqtt.broker.unsubscribe",
                    client=session.client_id,
                    filter=topic_filter,
                )
        self._send(source, Packet.unsuback(packet["packet_id"]))

    def _deliver_retained(self, session: _Session, topic_filter: str) -> None:
        sub_qos = session.subscriptions.get(topic_filter)
        if sub_qos is None:
            return
        self._retained_cell.note_read()
        for topic, retained in sorted(self._retained.items()):
            if topic_matches(topic_filter, topic):
                self._forward(
                    session,
                    topic,
                    retained.payload,
                    min(retained.qos, sub_qos),
                    retained.headers,
                    retain=True,
                )

    # ------------------------------------------------------------------
    # PUBLISH path
    # ------------------------------------------------------------------

    def _on_publish(
        self, source: Address, session: _Session | None, packet: Packet
    ) -> None:
        topic = validate_topic(packet["topic"])
        qos = int(packet.get("qos", 0))
        payload = packet.get("payload")
        headers = packet.get("headers") or {}
        self.stats.publishes_in += 1

        obs = self.runtime.obs
        if obs is not None:
            parent = FlowContext.from_wire(headers.get("obs"))
            if parent is not None:
                # Routing hop: one broker span per inbound publish, and the
                # forwarded copies (retained ones included) carry *its*
                # context. Header rewrite is on a copy — the publisher's
                # packet is never mutated.
                ctx = obs.point("broker", self.node, parent=parent, topic=topic)
                headers = {**headers, "obs": ctx.to_wire()}

        if packet.get("retain", False):
            self._retained_cell.note_write()
            if payload is None:
                self._retained.pop(topic, None)
            else:
                self._retained[topic] = _Retained(payload, qos, dict(headers))
                self.stats.retained_stored += 1

        # Acknowledge the publisher first (QoS 1 publisher-side is complete
        # once the broker owns the message).
        if qos == 1 and session is not None:
            self._send(source, Packet.puback(packet["packet_id"]))

        # One delivery per client even with overlapping subscriptions (the
        # client side then dispatches to every matching local callback).
        self._subscriptions_cell.note_read()
        entries = self._resolution.get(topic)
        if entries is None:
            entries = self._resolve(topic)
            self._resolution[topic] = entries
        for client_id, sub_qos in entries:
            subscriber = self._sessions.get(client_id)
            if subscriber is None or not subscriber.connected:
                continue
            if subscriber.cell is not None:
                subscriber.cell.note_read()
            self._forward(
                subscriber, topic, payload, min(qos, sub_qos), headers, retain=False
            )

    def _resolve(self, topic: str) -> list[tuple[str, int]]:
        """One matching pass: deduped subscribers of ``topic`` with their
        effective (max over matching filters) subscription QoS, in trie
        traversal order — byte-for-byte the per-publish computation the
        cache replaces."""
        entries: list[tuple[str, int]] = []
        seen: set[str] = set()
        for client_id in self._subscriptions.match(topic):
            if client_id in seen:
                continue
            seen.add(client_id)
            session = self._sessions.get(client_id)
            sub_qos = 0
            if session is not None:
                sub_qos = max(
                    (
                        q
                        for f, q in session.subscriptions.items()
                        if topic_matches(f, topic)
                    ),
                    default=0,
                )
            entries.append((client_id, sub_qos))
        return entries

    def _forward(
        self,
        session: _Session,
        topic: str,
        payload: Any,
        qos: int,
        headers: dict[str, Any],
        retain: bool,
    ) -> None:
        if qos == 1 and session.cell is not None:
            # Allocating a packet id and queueing the inflight entry mutate
            # the session; forward order decides the id sequence.
            session.cell.note_write()
        packet_id = session.allocate_packet_id() if qos == 1 else None
        packet = Packet.publish(
            topic=topic,
            payload=payload,
            qos=qos,
            retain=retain,
            packet_id=packet_id,
            headers=headers,
        )
        fwd_id: str | None = None
        if qos == 1:
            # Packet ids recycle (and restart from 1 after a broker
            # restart); the fwd_id uniquely names this delivery attempt so
            # end-to-end accounting can pair forwards with outcomes.
            fwd_id = self.runtime.ids.next("mqtt.fwd")
            packet.fields["fwd_id"] = fwd_id
        self.stats.publishes_out += 1
        self.trace(
            "mqtt.broker.forward",
            client=session.client_id,
            topic=topic,
            qos=qos,
            **({"fwd_id": fwd_id} if fwd_id is not None else {}),
        )
        if qos == 1 and packet_id is not None:
            inflight = _Inflight(
                packet=packet,
                destination=session.address,
                retries_left=self.max_retries,
            )
            session.inflight[packet_id] = inflight
            self._arm_retry(session, packet_id, inflight)
        # Fan-out transmission is per-subscriber broker work.
        self.node.execute(
            "mqtt.forward", self._send, session.address, packet
        )

    def _arm_retry(
        self, session: _Session, packet_id: int, inflight: _Inflight
    ) -> None:
        inflight.timer = self.after(
            self.retry_interval_s, self._retry, session, packet_id
        )

    def _retry(self, session: _Session, packet_id: int) -> None:
        if session.cell is not None:
            session.cell.note_write()
        inflight = session.inflight.get(packet_id)
        if inflight is None:
            return
        if inflight.retries_left <= 0:
            del session.inflight[packet_id]
            self.stats.drops_give_up += 1
            self.trace(
                "mqtt.broker.give_up",
                client=session.client_id,
                packet_id=packet_id,
                fwd_id=inflight.packet.get("fwd_id"),
            )
            return
        inflight.retries_left -= 1
        self.stats.retransmissions += 1
        dup = Packet(
            PacketType.PUBLISH, {**inflight.packet.fields, "dup": True}
        )
        inflight.packet = dup
        self._send(inflight.destination, dup)
        self._arm_retry(session, packet_id, inflight)

    def _on_puback(
        self, _source: Address, session: _Session | None, packet: Packet
    ) -> None:
        if session is None:
            return
        # The inflight-window state itself is noted on session.cell below.
        self.stats.pubacks_in += 1  # repro: san-ok[SAN021] commutative counter
        if session.cell is not None:
            session.cell.note_write()
        inflight = session.inflight.pop(packet["packet_id"], None)
        if inflight is not None and inflight.timer is not None:
            inflight.timer.cancel()

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def _sweep_sessions(self) -> None:
        now = self.runtime.now
        expired = [
            s
            for s in self._sessions.values()
            if s.connected
            and s.keepalive_s > 0
            and now - s.last_seen > s.keepalive_s * self.keepalive_grace
        ]
        for session in expired:
            self.stats.sessions_expired += 1
            self.trace("mqtt.broker.expire", client=session.client_id)
            self._publish_will(session)
            self._remove_session(session, expired=True)

    def _publish_will(self, session: _Session) -> None:
        """Deliver a dead client's last-will message (MQTT 3.1.1 §3.1.2.5).

        The will behaves like a publish *from* the departed session, so it
        reaches subscribers and can set/clear retained state — which is how
        module agents tombstone their registry entry on crash.
        """
        will = session.will
        if not will:
            return
        session.will = None
        self.stats.wills_published += 1
        packet = Packet.publish(
            topic=str(will["topic"]),
            payload=will.get("payload"),
            qos=min(int(will.get("qos", 0)), 1),
            retain=bool(will.get("retain", False)),
        )
        self.trace("mqtt.broker.will", client=session.client_id, topic=will["topic"])
        self._on_publish(session.address, session, packet)

    def _remove_session(self, session: _Session, expired: bool) -> None:
        if session.cell is not None:
            session.cell.note_write()
        self._address_index.pop(session.address, None)
        if session.clean:
            self._cancel_inflight(
                session, reason="expired" if expired else "disconnect"
            )
            self._drop_subscriptions(session)
            self._sessions.pop(session.client_id, None)
        else:
            # Persistent session: keep subscriptions AND unacknowledged
            # QoS 1 messages (retransmission resumes on reconnect), mark
            # disconnected.
            self._pause_inflight(session)
            session.connected = False

    def _pause_inflight(self, session: _Session) -> None:
        """Stop retransmission timers but keep the messages queued."""
        for inflight in session.inflight.values():
            if inflight.timer is not None:
                inflight.timer.cancel()
                inflight.timer = None

    def _resume_inflight(self, session: _Session) -> None:
        """Re-send every queued QoS 1 message (dup-flagged) and re-arm."""
        for packet_id, inflight in list(session.inflight.items()):
            inflight.destination = session.address
            dup = Packet(PacketType.PUBLISH, {**inflight.packet.fields, "dup": True})
            inflight.packet = dup
            self.stats.retransmissions += 1
            self._send(session.address, dup)
            self._arm_retry(session, packet_id, inflight)

    def _cancel_inflight(self, session: _Session, reason: str = "teardown") -> None:
        """Drop all queued QoS 1 messages for ``session``.

        Never silent: the dropped ``fwd_id`` set is traced so end-to-end
        accounting (``repro.chaos.invariants``) can distinguish an
        *explained* loss (session ended, broker restarted) from a bug.
        """
        for inflight in session.inflight.values():
            if inflight.timer is not None:
                inflight.timer.cancel()
        if session.inflight:
            self.trace(
                "mqtt.broker.inflight_dropped",
                client=session.client_id,
                reason=reason,
                fwd_ids=sorted(
                    str(i.packet.get("fwd_id"))
                    for i in session.inflight.values()
                    if i.packet.get("fwd_id") is not None
                ),
            )
        session.inflight.clear()

    def inflight_fwd_ids(self) -> list[str]:
        """fwd_ids of every QoS 1 message still awaiting a PUBACK."""
        ids = [
            str(inflight.packet.get("fwd_id"))
            for session in self._sessions.values()
            for inflight in session.inflight.values()
            if inflight.packet.get("fwd_id") is not None
        ]
        return sorted(ids)

    def _drop_subscriptions(self, session: _Session) -> None:
        self._subscriptions_cell.note_write()
        self._resolution.clear()
        for topic_filter in session.subscriptions:
            self._subscriptions.remove(topic_filter, session.client_id)
        session.subscriptions.clear()

    def on_stop(self) -> None:
        for session in list(self._sessions.values()):
            self._cancel_inflight(session, reason="broker_stop")
        self.node.unbind(BROKER_SERVICE)
