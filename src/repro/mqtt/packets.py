"""MQTT control packets.

Packets travel as canonical-JSON datagrams (see
:mod:`repro.util.serialization`). The encoding is not MQTT's binary wire
format — the middleware never interoperates with a real broker — but the
packet *vocabulary* and state machines mirror MQTT 3.1.1, and every byte is
charged to the network model, so timing behaviour is faithful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ProtocolError
from repro.util.flags import flag_enabled
from repro.util.serialization import decode_payload, encode_payload

__all__ = ["PacketType", "Packet", "wire_fastpath_default"]


def wire_fastpath_default() -> bool:
    """Whether encoded wire bytes carry their packet for decode bypass.

    ``REPRO_WIRE_FASTPATH=0`` disables it for differential testing.
    """
    return flag_enabled("REPRO_WIRE_FASTPATH")


#: Module-level switch read on every encode/decode so tests can flip it.
WIRE_FASTPATH = wire_fastpath_default()


class _Wire(bytes):
    """Wire bytes that remember the :class:`Packet` they encode.

    Byte-for-byte identical to a plain ``bytes`` payload — same length,
    hash, equality, slicing — so every airtime/cost computation is
    unchanged. :meth:`Packet.decode` recognizes the exact type and returns
    the remembered packet, skipping the JSON round trip. Safe because
    packets are frozen, the network layer never mutates or reslices
    payload bytes (frames are dropped whole), and every receiver copies
    field contents it mutates.
    """

    _packet: "Packet"


class PacketType(str, enum.Enum):
    """Subset of MQTT 3.1.1 control packet types used by the middleware."""

    CONNECT = "connect"
    CONNACK = "connack"
    PUBLISH = "publish"
    PUBACK = "puback"
    SUBSCRIBE = "subscribe"
    SUBACK = "suback"
    UNSUBSCRIBE = "unsubscribe"
    UNSUBACK = "unsuback"
    PINGREQ = "pingreq"
    PINGRESP = "pingresp"
    DISCONNECT = "disconnect"


@dataclass(frozen=True)
class Packet:
    """One MQTT control packet.

    ``fields`` carries the per-type variable header and payload:

    =========== ================================================================
    Type        Fields
    =========== ================================================================
    CONNECT     ``client_id``, ``clean_session``, ``keepalive_s``,
                optional ``will`` ({topic, payload, qos, retain})
    CONNACK     ``session_present``, ``return_code`` (0 = accepted)
    PUBLISH     ``topic``, ``payload`` (JSON value), ``qos``, ``retain``,
                ``dup``, ``packet_id`` (QoS 1 only), ``headers`` (dict the
                middleware uses for timestamps/ids)
    PUBACK      ``packet_id``
    SUBSCRIBE   ``packet_id``, ``filters`` ([[filter, qos], ...])
    SUBACK      ``packet_id``, ``granted`` ([qos, ...])
    UNSUBSCRIBE ``packet_id``, ``filters`` ([filter, ...])
    UNSUBACK    ``packet_id``
    =========== ================================================================
    """

    type: PacketType
    fields: dict[str, Any] = field(default_factory=dict)

    def encode(self) -> bytes:
        """Serialize to wire bytes."""
        body = dict(self.fields)
        body["_t"] = self.type.value
        data = encode_payload(body)
        if WIRE_FASTPATH:
            wire = _Wire(data)
            wire._packet = self
            return wire
        return data

    @classmethod
    def decode(cls, data: bytes) -> "Packet":
        """Parse wire bytes; raises ProtocolError on malformed packets."""
        if type(data) is _Wire:
            return data._packet
        body = decode_payload(data)
        if not isinstance(body, dict) or "_t" not in body:
            raise ProtocolError(f"not an MQTT packet: {body!r}")
        type_tag = body.pop("_t")
        try:
            packet_type = PacketType(type_tag)
        except ValueError:
            raise ProtocolError(f"unknown packet type {type_tag!r}") from None
        return cls(packet_type, body)

    def __getitem__(self, key: str) -> Any:
        try:
            return self.fields[key]
        except KeyError:
            raise ProtocolError(
                f"{self.type.value} packet missing field {key!r}"
            ) from None

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    # ------------------------------------------------------------------
    # Constructors for each packet type, so call sites read like protocol
    # ------------------------------------------------------------------

    @classmethod
    def connect(
        cls,
        client_id: str,
        clean_session: bool = True,
        keepalive_s: float = 60.0,
        will: dict[str, Any] | None = None,
    ) -> "Packet":
        fields: dict[str, Any] = {
            "client_id": client_id,
            "clean_session": clean_session,
            "keepalive_s": keepalive_s,
        }
        if will is not None:
            fields["will"] = will
        return cls(PacketType.CONNECT, fields)

    @classmethod
    def connack(cls, session_present: bool, return_code: int = 0) -> "Packet":
        return cls(
            PacketType.CONNACK,
            {"session_present": session_present, "return_code": return_code},
        )

    @classmethod
    def publish(
        cls,
        topic: str,
        payload: Any,
        qos: int = 0,
        retain: bool = False,
        dup: bool = False,
        packet_id: int | None = None,
        headers: dict[str, Any] | None = None,
    ) -> "Packet":
        if qos not in (0, 1):
            raise ProtocolError(f"unsupported QoS {qos} (QoS 2 not implemented)")
        if qos == 1 and packet_id is None:
            raise ProtocolError("QoS 1 publish requires a packet_id")
        fields: dict[str, Any] = {
            "topic": topic,
            "payload": payload,
            "qos": qos,
            "retain": retain,
            "dup": dup,
            "headers": headers or {},
        }
        if packet_id is not None:
            fields["packet_id"] = packet_id
        return cls(PacketType.PUBLISH, fields)

    @classmethod
    def puback(cls, packet_id: int) -> "Packet":
        return cls(PacketType.PUBACK, {"packet_id": packet_id})

    @classmethod
    def subscribe(cls, packet_id: int, filters: list[tuple[str, int]]) -> "Packet":
        return cls(
            PacketType.SUBSCRIBE,
            {"packet_id": packet_id, "filters": [[f, q] for f, q in filters]},
        )

    @classmethod
    def suback(cls, packet_id: int, granted: list[int]) -> "Packet":
        return cls(PacketType.SUBACK, {"packet_id": packet_id, "granted": granted})

    @classmethod
    def unsubscribe(cls, packet_id: int, filters: list[str]) -> "Packet":
        return cls(
            PacketType.UNSUBSCRIBE, {"packet_id": packet_id, "filters": filters}
        )

    @classmethod
    def unsuback(cls, packet_id: int) -> "Packet":
        return cls(PacketType.UNSUBACK, {"packet_id": packet_id})

    @classmethod
    def pingreq(cls, incarnation: int | None = None) -> "Packet":
        # Keep-alives stamp the sender's boot count (announcements already
        # do), so liveness consumers can discard heartbeats a dead
        # incarnation left queued in the network.
        if incarnation is None:
            return cls(PacketType.PINGREQ)
        return cls(PacketType.PINGREQ, {"incarnation": incarnation})

    @classmethod
    def pingresp(cls) -> "Packet":
        return cls(PacketType.PINGRESP)

    @classmethod
    def disconnect(cls) -> "Packet":
        return cls(PacketType.DISCONNECT)
