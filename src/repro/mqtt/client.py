"""MQTT client.

The middleware's *Publish class* and *Subscribe class* (Fig. 4) are thin
wrappers over this client. It provides:

* ``connect`` / ``disconnect`` with CONNACK tracking and op queueing —
  operations issued before the CONNACK are buffered and flushed in order;
* ``publish`` at QoS 0/1, with client-side retransmission (dup flag) until
  the broker's PUBACK arrives;
* ``subscribe(filter, callback)`` with client-side wildcard dispatch and
  automatic PUBACK for QoS 1 inbound messages;
* periodic PINGREQ keep-alives;
* optional auto-reconnect: broker silence beyond two keep-alive periods
  triggers a fresh CONNECT, and if the broker lost the session (restart,
  clean takeover) the client replays all of its subscriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import NotConnectedError, ProtocolError
from repro.mqtt.packets import Packet, PacketType
from repro.mqtt.topics import TopicTree, validate_filter, validate_topic
from repro.net.address import Address
from repro.runtime.base import TimerHandle
from repro.runtime.component import Component
from repro.runtime.node import Node
from repro.runtime.state import tracked_state

__all__ = ["MqttClient", "Subscription"]

#: Callback signature for inbound messages: (topic, payload, packet).
MessageCallback = Callable[[str, Any, Packet], None]


@dataclass
class Subscription:
    """One client-side subscription entry."""

    topic_filter: str
    callback: MessageCallback
    qos: int


@dataclass
class _PendingPublish:
    packet: Packet
    retries_left: int
    timer: TimerHandle | None = None


class MqttClient(Component):
    """A client session against one broker."""

    def __init__(
        self,
        node: Node,
        broker: Address,
        client_id: str | None = None,
        clean_session: bool = True,
        keepalive_s: float = 30.0,
        retry_interval_s: float = 2.0,
        max_retries: int = 5,
        will: dict[str, Any] | None = None,
        auto_reconnect: bool = False,
        reconnect_initial_s: float | None = None,
        reconnect_max_s: float | None = None,
    ) -> None:
        client_id = client_id or node.runtime.ids.next(f"{node.name}.mqtt")
        super().__init__(node, f"mqtt.client.{client_id}")
        self.client_id = client_id
        self.broker = broker
        self.clean_session = clean_session
        self.keepalive_s = keepalive_s
        self.retry_interval_s = retry_interval_s
        self.max_retries = max_retries
        #: Exponential reconnect backoff bounds. ``None`` derives them from
        #: the keep-alive at attempt time (½× initial, 4× cap) so they stay
        #: sensible when ``keepalive_s`` is tuned after construction.
        self.reconnect_initial_s = reconnect_initial_s
        self.reconnect_max_s = reconnect_max_s
        #: Last-will testament: {"topic", "payload", "qos", "retain"},
        #: published by the broker if this session dies without DISCONNECT.
        #: May be (re)set before connect().
        self.will = dict(will) if will else None

        # Tracked: "is the session up" is exactly the kind of state a
        # publish path reads while a watchdog writes it at the same instant
        # — the sanitizer must see those accesses.
        self._connected = tracked_state(
            node.runtime, f"mqtt.client.{client_id}", "connected", False
        )
        self._connecting = False
        self._service = f"mqttc.{client_id}"
        self._subscriptions: list[Subscription] = []
        self._dispatch: TopicTree[Subscription] = TopicTree()
        self._pending_ops: list[Callable[[], None]] = []
        #: Bound on ops buffered while disconnected with auto-reconnect
        #: armed; beyond it the oldest buffered op is dropped (counted).
        self.max_pending_ops = 1024
        self.ops_dropped_disconnected = 0
        self._inflight: dict[int, _PendingPublish] = {}
        self._next_packet_id = 1
        self._ping_timer = None
        self._on_connected: list[Callable[[], None]] = []
        #: Fired after every CONNACK that re-establishes a session (i.e.
        #: not the first connect). Orchestration layers use this to
        #: re-announce/re-subscribe without polling.
        self.reconnect_listeners: list[Callable[[], None]] = []
        self.messages_received = 0
        self.messages_published = 0
        self.reconnects = 0
        self.connect_attempts = 0
        self.pubacks_received = 0
        self.publishes_abandoned = 0
        self.callback_errors = 0
        self._last_inbound = self.runtime.now
        self._ever_connected = False
        self._watchdog = None
        self._backoff_s: float | None = None
        self._reconnect_timer: TimerHandle | None = None
        self._backoff_rng = node.runtime.rng.stream(f"mqtt.backoff.{client_id}")
        self._retry_rng = node.runtime.rng.stream(f"mqtt.retry.{client_id}")
        if auto_reconnect:
            self.enable_auto_reconnect()
        node.bind(self._service, self._on_datagram)

    @property
    def address(self) -> Address:
        return self.node.address(self._service)

    @property
    def connected(self) -> bool:
        return bool(self._connected.value)

    @connected.setter
    def connected(self, up: bool) -> None:
        self._connected.value = up

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self, on_connected: Callable[[], None] | None = None) -> None:
        """Send CONNECT; buffered operations flush after the CONNACK."""
        if on_connected is not None:
            self._on_connected.append(on_connected)
        if self.connected or self._connecting:
            return
        self._connecting = True
        self._send(
            Packet.connect(
                client_id=self.client_id,
                clean_session=self.clean_session,
                keepalive_s=self.keepalive_s,
                will=self.will,
            )
        )

    def enable_auto_reconnect(self) -> None:
        """Arm the silence watchdog (idempotent).

        While connected, the broker answers PINGREQs at least every
        ``keepalive_s / 2``; inbound silence for more than two keep-alive
        periods therefore means the session (or broker) is gone. The
        watchdog then starts exponential-backoff reconnect attempts
        (jittered, capped); once a CONNACK reporting no prior session
        state arrives, all subscriptions are replayed.
        """
        if self._watchdog is not None:
            return
        # Seeded phase offset: a check loop synchronized to the keep-alive
        # period would tick at the exact instants application timers of the
        # same period fire, making "did the publish beat the session-lost
        # verdict" an accident of event ordering.
        phase = self._retry_rng.uniform(0.05, 0.95) * self.keepalive_s
        self._watchdog = self.every(
            self.keepalive_s, self._check_liveness, start_delay=phase
        )

    def _check_liveness(self) -> None:
        if not self.connected:
            # Either a CONNECT is outstanding and unanswered, or an earlier
            # backoff attempt failed: schedule the next attempt (no-op when
            # one is already pending).
            self._begin_reconnect()
            return
        silence = self.runtime.now - self._last_inbound
        if silence > 2.0 * self.keepalive_s:
            self.trace("mqtt.client.session_lost", silence_s=silence)
            self.connected = False
            self._connecting = False
            if self._ping_timer is not None:
                self._ping_timer.cancel()
                self._ping_timer = None
            self.reconnects += 1
            self._begin_reconnect()

    # ------------------------------------------------------------------
    # Exponential-backoff reconnect
    # ------------------------------------------------------------------

    def _begin_reconnect(self) -> None:
        """Schedule the next reconnect attempt (idempotent while pending)."""
        if self._reconnect_timer is not None or self.connected:
            return
        delay = self._next_backoff()
        self.trace("mqtt.client.backoff", delay_s=round(delay, 6))
        self._reconnect_timer = self.after(delay, self._attempt_reconnect)

    def _next_backoff(self) -> float:
        initial = self.reconnect_initial_s
        if initial is None:
            initial = max(self.keepalive_s / 2.0, 1e-3)
        cap = self.reconnect_max_s
        if cap is None:
            cap = max(4.0 * self.keepalive_s, initial)
        if self._backoff_s is None:
            self._backoff_s = initial
        else:
            self._backoff_s = min(self._backoff_s * 2.0, cap)
        # ±15% jitter (seeded stream) de-synchronizes a fleet of clients
        # reconnecting after a broker restart.
        return self._backoff_s * self._backoff_rng.uniform(0.85, 1.15)

    def _attempt_reconnect(self) -> None:
        self._reconnect_timer = None
        if self.connected:
            return
        self.connect_attempts += 1
        self._connecting = False  # resend even if an old CONNECT is pending
        self.connect()

    def refresh_session(self) -> None:
        """Re-send CONNECT with the current ``will``/``keepalive_s``.

        The broker treats a CONNECT on a live session as a takeover and
        adopts the new parameters. Used by components that decide on a will
        after the session was first opened (e.g. the module agent, which is
        constructed after its module's client).
        """
        self._send(
            Packet.connect(
                client_id=self.client_id,
                clean_session=False,  # keep subscriptions across the refresh
                keepalive_s=self.keepalive_s,
                will=self.will,
            )
        )

    def disconnect(self) -> None:
        if not self.connected:
            return
        self._send(Packet.disconnect())
        self.connected = False
        if self._ping_timer is not None:
            self._ping_timer.cancel()
            self._ping_timer = None

    # ------------------------------------------------------------------
    # Publish / subscribe API
    # ------------------------------------------------------------------

    def publish(
        self,
        topic: str,
        payload: Any,
        qos: int = 0,
        retain: bool = False,
        headers: dict[str, Any] | None = None,
    ) -> None:
        """Publish ``payload`` on ``topic``.

        ``headers`` ride along with the message; the middleware stamps
        sensing timestamps and sample ids there, which is how the benchmark
        harness measures sensing-to-X latency exactly as the paper does.
        """
        validate_topic(topic)
        if qos not in (0, 1):
            raise ProtocolError(f"unsupported QoS {qos}")
        self._when_connected(lambda: self._do_publish(topic, payload, qos, retain, headers))

    def _do_publish(
        self,
        topic: str,
        payload: Any,
        qos: int,
        retain: bool,
        headers: dict[str, Any] | None,
    ) -> None:
        packet_id = self._allocate_packet_id() if qos == 1 else None
        packet = Packet.publish(
            topic=topic,
            payload=payload,
            qos=qos,
            retain=retain,
            packet_id=packet_id,
            headers=headers,
        )
        self.messages_published += 1
        if qos == 1 and packet_id is not None:
            pending = _PendingPublish(packet=packet, retries_left=self.max_retries)
            self._inflight[packet_id] = pending
            self._arm_retry(packet_id, pending)
        self._send(packet)

    def subscribe(
        self, topic_filter: str, callback: MessageCallback, qos: int = 0
    ) -> Subscription:
        """Register ``callback`` for messages matching ``topic_filter``."""
        validate_filter(topic_filter)
        subscription = Subscription(topic_filter, callback, min(qos, 1))
        self._subscriptions.append(subscription)
        self._dispatch.insert(topic_filter, subscription)
        self._when_connected(
            lambda: self._send(
                Packet.subscribe(
                    self._allocate_packet_id(), [(topic_filter, subscription.qos)]
                )
            )
        )
        return subscription

    def subscribe_many(
        self, entries: "list[tuple[str, MessageCallback]]", qos: int = 0
    ) -> list[Subscription]:
        """Register several filters, announced in a single SUBSCRIBE.

        Functionally equivalent to calling :meth:`subscribe` once per
        entry, but the broker sees one packet instead of N — a joining
        module registers its whole control plane without multiplying
        the connect storm on the shared medium.
        """
        subscriptions: list[Subscription] = []
        for topic_filter, callback in entries:
            validate_filter(topic_filter)
            subscription = Subscription(topic_filter, callback, min(qos, 1))
            self._subscriptions.append(subscription)
            self._dispatch.insert(topic_filter, subscription)
            subscriptions.append(subscription)
        filters = [(s.topic_filter, s.qos) for s in subscriptions]
        self._when_connected(
            lambda: self._send(
                Packet.subscribe(self._allocate_packet_id(), filters)
            )
        )
        return subscriptions

    def unsubscribe(self, subscription: Subscription) -> None:
        if subscription not in self._subscriptions:
            return
        self._subscriptions.remove(subscription)
        self._dispatch.remove(subscription.topic_filter, subscription)
        still_used = any(
            s.topic_filter == subscription.topic_filter for s in self._subscriptions
        )
        if not still_used:
            self._when_connected(
                lambda: self._send(
                    Packet.unsubscribe(
                        self._allocate_packet_id(), [subscription.topic_filter]
                    )
                )
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _when_connected(self, op: Callable[[], None]) -> None:
        if self.connected:
            op()
        elif self._connecting or self._watchdog is not None:
            # Connecting, or auto-reconnect is armed and will re-establish
            # the session: buffer the operation (bounded, oldest dropped —
            # fresh sensor data beats stale during an outage).
            if len(self._pending_ops) >= self.max_pending_ops:
                self._pending_ops.pop(0)
                self.ops_dropped_disconnected += 1
            self._pending_ops.append(op)
        else:
            raise NotConnectedError(
                f"client {self.client_id!r}: call connect() first"
            )

    def _allocate_packet_id(self) -> int:
        pid = self._next_packet_id
        self._next_packet_id = pid % 65535 + 1
        return pid

    def _send(self, packet: Packet) -> None:
        data = packet.encode()
        self.node.execute(
            "mqtt.send",
            self.node.send,
            self._service,
            self.broker,
            data,
            nbytes=len(data),
        )

    def _arm_retry(self, packet_id: int, pending: _PendingPublish) -> None:
        # ±10% jitter (seeded stream) keeps retransmissions from phase-
        # locking with the publish cadence: a fixed interval that is a
        # multiple of the sample period fires dup resends at the exact
        # instant of a fresh publish, a classic synchronized-retry artifact.
        interval = self.retry_interval_s * self._retry_rng.uniform(0.9, 1.1)
        pending.timer = self.after(interval, self._retry, packet_id)

    def _retry(self, packet_id: int) -> None:
        pending = self._inflight.get(packet_id)
        if pending is None:
            return
        if pending.retries_left <= 0:
            del self._inflight[packet_id]
            self.publishes_abandoned += 1
            self.trace("mqtt.client.give_up", packet_id=packet_id)
            return
        pending.retries_left -= 1
        dup = Packet(PacketType.PUBLISH, {**pending.packet.fields, "dup": True})
        pending.packet = dup
        self._send(dup)
        self._arm_retry(packet_id, pending)

    def _on_datagram(self, _source: Address, data: bytes) -> None:
        self._last_inbound = self.runtime.now
        try:
            packet = Packet.decode(data)
        except ProtocolError:
            self.trace("mqtt.client.garbage")
            return
        self.node.execute("mqtt.recv", self._handle, packet, nbytes=len(data))

    def _handle(self, packet: Packet) -> None:
        if packet.type is PacketType.CONNACK:
            self._on_connack(packet)
        elif packet.type is PacketType.PUBLISH:
            self._on_publish(packet)
        elif packet.type is PacketType.PUBACK:
            self.pubacks_received += 1
            pending = self._inflight.pop(packet["packet_id"], None)
            if pending is not None and pending.timer is not None:
                pending.timer.cancel()
        elif packet.type in (
            PacketType.SUBACK,
            PacketType.UNSUBACK,
            PacketType.PINGRESP,
        ):
            pass  # acknowledgements with no client-side state to update
        else:
            self.trace("mqtt.client.unexpected", type=packet.type.value)

    def _on_connack(self, packet: Packet) -> None:
        if int(packet.get("return_code", 0)) != 0:
            self.trace("mqtt.client.refused", code=packet.get("return_code"))
            self._connecting = False
            return
        session_present = bool(packet.get("session_present", False))
        was_reconnect = self._ever_connected
        self._ever_connected = True
        self.connected = True
        self._connecting = False
        self._backoff_s = None  # healthy again: next outage starts small
        if self._reconnect_timer is not None:
            self._reconnect_timer.cancel()
            self._reconnect_timer = None
        if self.keepalive_s > 0 and self._ping_timer is None:
            self._ping_timer = self.every(
                self.keepalive_s / 2.0,
                lambda: self._send(
                    Packet.pingreq(incarnation=self.node.incarnation)
                ),
            )
        if not session_present and self._subscriptions and was_reconnect:
            # The broker holds no state for us: replay every subscription
            # in one SUBSCRIBE so recovery doesn't flood the medium.
            self._send(
                Packet.subscribe(
                    self._allocate_packet_id(),
                    [(s.topic_filter, s.qos) for s in self._subscriptions],
                )
            )
            self.trace(
                "mqtt.client.resubscribed", count=len(self._subscriptions)
            )
        ops, self._pending_ops = self._pending_ops, []
        for op in ops:
            op()
        callbacks, self._on_connected = self._on_connected, []
        for callback in callbacks:
            callback()
        if was_reconnect:
            for listener in list(self.reconnect_listeners):
                listener()

    def _on_publish(self, packet: Packet) -> None:
        topic = packet["topic"]
        if int(packet.get("qos", 0)) == 1:
            self._send(Packet.puback(packet["packet_id"]))
        obs = self.runtime.obs
        if (
            obs is not None
            and obs.metrics is not None
            and bool(packet.get("dup", False))
        ):
            obs.metrics.counter("mqtt.redeliveries", node=self.node.name).inc()
        fwd_id = packet.get("fwd_id")
        if fwd_id is not None:
            # End-to-end QoS 1 accounting: this delivery attempt reached
            # the subscriber (possibly as a dup-flagged retransmission).
            self.trace(
                "mqtt.client.deliver",
                topic=topic,
                fwd_id=fwd_id,
                dup=bool(packet.get("dup", False)),
            )
        self.messages_received += 1
        for subscription in self._dispatch.match(topic):
            try:
                subscription.callback(topic, packet.get("payload"), packet)
            except Exception as exc:  # noqa: BLE001 - fault isolation
                # A broken handler must not block other subscriptions or
                # crash the delivery path.
                self.callback_errors += 1
                self.trace(
                    "mqtt.client.callback_error",
                    topic=topic,
                    error=f"{type(exc).__name__}: {exc}",
                )

    def on_stop(self) -> None:
        self.disconnect()
        if self._reconnect_timer is not None:
            self._reconnect_timer.cancel()
            self._reconnect_timer = None
        for pending in self._inflight.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._inflight.clear()
        self.node.unbind(self._service)
