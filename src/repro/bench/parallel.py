"""Parallel multi-seed runner: one worker process per seed, merged deterministically.

The simulations themselves are single-threaded and deterministic, so the
only safe parallelism is *across* runs: each seed is an independent
simulation executed in its own worker process, and the merged result is
a pure function of the (task, spec, seeds) request — byte-identical
whether it ran serially or on any number of workers.

Two contracts make that safe:

* **Tasks are module-level functions** registered in :data:`PARALLEL_TASKS`
  under a short name. They take ``(spec, seed)`` and return a JSON-able
  summary dict. Module-level is not a style preference: worker processes
  receive the function by pickled reference, so closures and lambdas
  cannot cross the process boundary.
* **Merging is keyed by seed.** Results are reassembled in the caller's
  seed order regardless of worker completion order, and a worker failure
  (an exception *or* a dead process) is a hard :class:`ParallelRunError`
  naming the seed — a merged result never silently omits a seed.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, IFoTError

__all__ = [
    "PARALLEL_TASKS",
    "ParallelRunError",
    "merge_digest",
    "run_parallel",
]


class ParallelRunError(IFoTError):
    """A worker process failed; the merged result would be incomplete."""


def _chaos_task(spec: str, seed: int) -> dict[str, Any]:
    """Run one chaos scenario at one seed; summarize the run."""
    from repro.chaos import run_scenario

    result = run_scenario(spec, seed=seed)
    return {
        "scenario": result.name,
        "seed": result.seed,
        "duration_s": result.duration_s,
        "faults_applied": result.faults_applied,
        "trace_records": result.trace_records,
        "trace_digest": result.trace_digest,
        "invariants_ok": result.report.ok,
    }


def _fig5_task(spec: str, seed: int) -> dict[str, Any]:
    """Run the Fig. 5 experiment at one seed; summarize the profiled run.

    ``spec`` is the duration in seconds (empty string for the default).
    """
    from repro.bench.calibration import pi_cost_model
    from repro.bench.scenarios import run_fig5_experiment
    from repro.prof import enable_profiling, profile_digest

    duration_s = float(spec) if spec else 30.0
    runtime = run_fig5_experiment(
        seed=seed,
        duration_s=duration_s,
        observe=False,
        prepare=lambda rt: enable_profiling(rt),
        cost_model=pi_cost_model(),
    )
    profiler = runtime.prof
    assert profiler is not None
    return {
        "scenario": "fig5",
        "seed": seed,
        "duration_s": duration_s,
        "trace_records": len(runtime.tracer),
        "events_executed": profiler.events_profiled,
        "profile_digest": profile_digest(profiler),
        "wlan_utilization": round(profiler.wlan_utilization(), 9),
    }


#: name -> module-level task function ``(spec, seed) -> summary dict``.
PARALLEL_TASKS: dict[str, Callable[[str, int], dict[str, Any]]] = {
    "chaos": _chaos_task,
    "fig5": _fig5_task,
}


def run_parallel(
    task: str,
    spec: str,
    seeds: Sequence[int],
    workers: int = 1,
) -> list[dict[str, Any]]:
    """Run ``task`` once per seed and merge the results keyed by seed.

    ``workers <= 1`` runs serially in-process (the reference execution);
    otherwise seeds are distributed over a pool of worker processes. The
    returned list follows the caller's seed order exactly, so serial and
    parallel runs of the same request are byte-identical.

    Raises :class:`ParallelRunError` if any worker raises or dies — the
    merged list never silently drops a seed.
    """
    try:
        fn = PARALLEL_TASKS[task]
    except KeyError:
        raise ConfigurationError(
            f"unknown parallel task {task!r} (known: {sorted(PARALLEL_TASKS)})"
        ) from None
    seeds = list(seeds)
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError(f"duplicate seeds in {seeds!r}")
    if workers <= 1:
        return [fn(spec, seed) for seed in seeds]
    results: dict[int, dict[str, Any]] = {}
    with ProcessPoolExecutor(max_workers=min(workers, len(seeds) or 1)) as pool:
        futures = {seed: pool.submit(fn, spec, seed) for seed in seeds}
        wait(futures.values(), return_when=FIRST_EXCEPTION)
        for seed, future in futures.items():
            try:
                results[seed] = future.result()
            except BrokenProcessPool as exc:
                raise ParallelRunError(
                    f"worker process for seed {seed} died: {exc}"
                ) from exc
            except Exception as exc:
                raise ParallelRunError(
                    f"task {task!r} failed for seed {seed}: {exc}"
                ) from exc
    missing = [seed for seed in seeds if seed not in results]
    if missing:  # pragma: no cover - futures either resolve or raise above
        raise ParallelRunError(f"no result for seeds {missing!r}")
    return [results[seed] for seed in seeds]


def merge_digest(results: list[dict[str, Any]]) -> str:
    """Canonical digest of a merged multi-seed result list.

    Serial and parallel runs of the same request produce the same digest;
    tests and the CLI use it as the one-line equality check.
    """
    canonical = json.dumps(results, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
