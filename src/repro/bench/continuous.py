"""Continuous benchmarking: schema-versioned records and a regression gate.

A *bench record* (``BENCH_<name>.json``) captures one named benchmark run
in two strictly separated halves:

* ``sim`` — everything derived from virtual time: latencies, event and
  trace counts, utilizations, the profile digest. These are pure
  functions of (scenario, seed) and the gate compares them **byte-exact**
  (via canonical sorted-key JSON); any drift is a real behaviour change.
* ``wall`` — host throughput (events simulated per wall second). This
  depends on the machine, so records carry an environment fingerprint
  and the gate applies a **tolerance band** only when the fingerprints
  match; across differing environments wall metrics are reported but
  never gate.

``repro bench <names> --compare <baseline-dir>`` runs the named
benchmarks, writes fresh records, and exits nonzero on any sim mismatch
or out-of-band wall regression — that is the CI gate. Refreshing the
committed baseline is ``repro bench <names> --out benchmarks/baselines``
(review the diff like any other golden file).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "BenchComparison",
    "BENCH_RUNNERS",
    "compare_bench",
    "environment_fingerprint",
    "load_bench",
    "run_bench",
    "write_bench",
]

#: Bump when the record layout changes; the gate refuses to compare
#: records with differing schema versions.
#: v2: fig5/failover records carry ``sim.op_busy`` (per-op CPU busy
#: accounting) feeding the cost-model drift gate (RCP230).
#: v3: records carry per-flow end-to-end latency summaries
#: (``sim.flows`` / per-rate ``flows``: count + p50/p95/p99/max ms)
#: feeding the latency-bound soundness gate (RCP243/RCP244).
BENCH_SCHEMA_VERSION = 3

#: Default relative tolerance on wall-clock events/sec (same-env only).
DEFAULT_WALL_TOLERANCE = 0.35


def environment_fingerprint() -> dict[str, str]:
    """The host properties that make wall-clock numbers comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


@dataclass
class BenchRecord:
    """One benchmark run, ready to serialize as ``BENCH_<name>.json``."""

    name: str
    schema_version: int = BENCH_SCHEMA_VERSION
    #: Virtual-time results — compared byte-exact.
    sim: dict[str, Any] = field(default_factory=dict)
    #: Host throughput — tolerance-banded, same-environment only.
    wall: dict[str, Any] = field(default_factory=dict)
    env: dict[str, str] = field(default_factory=environment_fingerprint)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "schema_version": self.schema_version,
            "sim": self.sim,
            "wall": self.wall,
            "env": self.env,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchRecord":
        return cls(
            name=data["name"],
            schema_version=data["schema_version"],
            sim=data.get("sim", {}),
            wall=data.get("wall", {}),
            env=data.get("env", {}),
        )


def canonical_sim_json(record: BenchRecord) -> str:
    """The byte-exact comparison form of the record's sim half."""
    return json.dumps(record.sim, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Benchmark runners
# ---------------------------------------------------------------------------
# Each runner executes one named scenario with profiling attached and
# returns a BenchRecord. Sim metrics are rounded once, here, so the
# serialized record is the canonical form.


def _op_busy(profiler: Any) -> dict[str, dict[str, Any]]:
    """Node-summed per-op CPU busy: ``{op: {"busy_s", "count"}}``.

    This is the half of the profile the static drift gate
    (:func:`repro.lint.dataflow.check_cost_drift`) replays against the
    calibrated cost model, so it rounds exactly once, here.
    """
    totals: dict[str, list[float]] = {}
    for (node, domain, op), (seconds, count) in profiler.busy.items():
        if domain != "cpu":
            continue
        entry = totals.setdefault(op, [0.0, 0])
        entry[0] += seconds
        entry[1] += count
    return {
        op: {"busy_s": round(seconds, 9), "count": int(count)}
        for op, (seconds, count) in sorted(totals.items())
    }


def _round_flows(
    flows: dict[str, dict[str, float]]
) -> dict[str, dict[str, Any]]:
    """Canonical serialized form of a per-flow latency summary."""
    return {
        stage: {
            key: int(value) if key == "count" else round(float(value), 6)
            for key, value in sorted(summary.items())
        }
        for stage, summary in sorted(flows.items())
    }


def _recorder_summary(recorder: Any) -> dict[str, float]:
    """Flow-summary shape from a harness :class:`LatencyRecorder` (ms)."""
    return {
        "count": recorder.count,
        "p50_ms": recorder.percentile(50),
        "p95_ms": recorder.percentile(95),
        "p99_ms": recorder.percentile(99),
        "max_ms": recorder.maximum,
    }


def _tracer_flows(tracer: Any) -> dict[str, dict[str, Any]]:
    """Per-flow latency summaries from an observed run's tracer.

    The observed companion run exists purely to measure flow latencies:
    observation piggybacks span context on records, so its event counts
    differ from the unobserved run that produces every other sim metric.
    Both runs are pure functions of (scenario, seed), so the summaries
    are still compared byte-exact.
    """
    from repro.obs.breakdown import (
        flow_latency_summary,
        spans_from_tracer,
        stage_breakdown,
    )

    breakdown = stage_breakdown(spans_from_tracer(tracer))
    return _round_flows(flow_latency_summary(breakdown))


def _bench_fig5() -> BenchRecord:
    """The Fig. 5 watching experiment, profiled under the Pi calibration."""
    from repro.bench.calibration import pi_cost_model
    from repro.bench.scenarios import run_fig5_experiment
    from repro.prof import enable_profiling, profile_digest

    started = time.perf_counter()  # repro: lint-ok[DET001] - wall-clock half of the bench record
    runtime = run_fig5_experiment(
        seed=55,
        duration_s=30.0,
        observe=False,
        prepare=lambda rt: enable_profiling(rt),
        cost_model=pi_cost_model(),
    )
    elapsed = time.perf_counter() - started  # repro: lint-ok[DET001] - wall-clock half of the bench record
    profiler = runtime.prof
    record = BenchRecord(name="fig5")
    record.sim = {
        "seed": 55,
        "duration_s": 30.0,
        "trace_records": len(runtime.tracer),
        "events_executed": profiler.events_profiled if profiler else 0,
        "profile_digest": profile_digest(profiler) if profiler else "",
        "cpu_utilization": {
            node: round(profiler.cpu_utilization(node), 9)
            for node in profiler.cpu_nodes()
        }
        if profiler
        else {},
        "wlan_utilization": round(profiler.wlan_utilization(), 9)
        if profiler
        else 0.0,
        "op_busy": _op_busy(profiler) if profiler else {},
    }
    observed = run_fig5_experiment(
        seed=55, duration_s=30.0, observe=True, cost_model=pi_cost_model()
    )
    record.sim["flows"] = _tracer_flows(observed.tracer)
    events = record.sim["events_executed"]
    record.wall = {
        "elapsed_s": round(elapsed, 4),
        "events_per_s": round(events / elapsed, 1) if elapsed > 0 else 0.0,
    }
    return record


def _bench_saturation() -> BenchRecord:
    """The Tables II/III rate sweep at the saturation-relevant rates."""
    from repro.bench.harness import run_paper_experiment

    rates = (5.0, 20.0, 40.0)
    record = BenchRecord(name="saturation")
    rows: dict[str, Any] = {}
    total_events = 0
    started = time.perf_counter()  # repro: lint-ok[DET001] - wall-clock half of the bench record
    for rate in rates:
        result = run_paper_experiment(
            rate, duration_s=2.5, seed=1, profile=True
        )
        profiler = result.profiler
        total_events += profiler.events_profiled
        rows[f"{rate:g}hz"] = {
            "train_avg_ms": round(result.training.average, 6),
            "train_max_ms": round(result.training.maximum, 6),
            "predict_avg_ms": round(result.predicting.average, 6),
            "predict_max_ms": round(result.predicting.maximum, 6),
            "samples_sensed": result.samples_sensed,
            "cpu_utilization": dict(result.cpu_utilization),
            "wlan_utilization": round(result.wlan_utilization, 9),
            "flows": _round_flows(
                {
                    "train": _recorder_summary(result.training),
                    "predict": _recorder_summary(result.predicting),
                }
            ),
        }
    elapsed = time.perf_counter() - started  # repro: lint-ok[DET001] - wall-clock half of the bench record
    record.sim = {"seed": 1, "duration_s": 2.5, "rates": rows}
    record.wall = {
        "elapsed_s": round(elapsed, 4),
        "events_per_s": round(total_events / elapsed, 1) if elapsed > 0 else 0.0,
    }
    return record


def _bench_failover() -> BenchRecord:
    """The self-healing path: crash -> failover -> rejoin -> live fail-back.

    Pins the recovery latencies and the QoS 1 / ML delivery accounting of
    the ``failover`` chaos scenario, so a regression in detection speed,
    handoff duration, or exactly-once bookkeeping fails the bench gate
    even when every invariant still technically passes.
    """
    from repro.chaos.scenarios import run_scenario

    started = time.perf_counter()  # repro: lint-ok[DET001] - wall-clock half of the bench record
    result = run_scenario("failover", seed=0, profile=True)
    elapsed = time.perf_counter() - started  # repro: lint-ok[DET001] - wall-clock half of the bench record
    metrics = result.report.metrics
    tracer = result.tracer
    migrations_done = len(list(tracer.select(event="migrate.done"))) if tracer else 0
    failover_moves = (
        len(list(tracer.select(event="mgmt.failover_moved"))) if tracer else 0
    )
    record = BenchRecord(name="failover")
    profiler = result.profiler
    record.sim = {
        "seed": 0,
        "duration_s": result.duration_s,
        "trace_records": result.trace_records,
        "trace_digest": result.trace_digest,
        "invariants_ok": result.report.ok,
        "recovery_s": {
            "node_crash": round(metrics.get("recovery_s:node_crash", 0.0), 6),
            "node_restart": round(metrics.get("recovery_s:node_restart", 0.0), 6),
        },
        "qos1": {
            "forwarded": int(metrics.get("qos1_forwarded", 0)),
            "delivered": int(metrics.get("qos1_delivered", 0)),
            "dropped_explained": int(metrics.get("qos1_dropped_explained", 0)),
            "unaccounted": int(metrics.get("qos1_unaccounted", 0)),
            "duplicate_deliveries": int(
                metrics.get("qos1_duplicate_deliveries", 0)
            ),
        },
        "ml_records": int(metrics.get("ml_records", 0)),
        "ml_cross_instance_duplicates": int(
            metrics.get("ml_cross_instance_duplicates", 0)
        ),
        "failover_moves": failover_moves,
        "migrations_completed": migrations_done,
        "op_busy": _op_busy(profiler) if profiler else {},
    }
    observed = run_scenario("failover", seed=0, observe=True)
    record.sim["flows"] = (
        _tracer_flows(observed.tracer) if observed.tracer else {}
    )
    events = profiler.events_profiled if profiler else 0
    record.wall = {
        "elapsed_s": round(elapsed, 4),
        "events_per_s": round(events / elapsed, 1) if elapsed > 0 else 0.0,
    }
    return record


#: name -> runner, the benchmarks `repro bench` knows how to run.
BENCH_RUNNERS: dict[str, Callable[[], BenchRecord]] = {
    "fig5": _bench_fig5,
    "failover": _bench_failover,
    "saturation": _bench_saturation,
}


def run_bench(name: str) -> BenchRecord:
    """Execute one named benchmark and return its record."""
    try:
        runner = BENCH_RUNNERS[name]
    except KeyError:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown benchmark {name!r} (known: {sorted(BENCH_RUNNERS)})"
        ) from None
    return runner()


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------


def bench_path(directory: Path, name: str) -> Path:
    return Path(directory) / f"BENCH_{name}.json"


def write_bench(record: BenchRecord, directory: Path) -> Path:
    """Serialize ``record`` as ``<directory>/BENCH_<name>.json``."""
    path = bench_path(directory, record.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(  # repro: lint-ok[DET005] - bench artifact export
        json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_bench(directory: Path, name: str) -> BenchRecord:
    """Load ``BENCH_<name>.json`` from ``directory``."""
    path = bench_path(directory, name)
    data = json.loads(path.read_text())  # repro: lint-ok[DET005] - bench artifact import
    return BenchRecord.from_dict(data)


# ---------------------------------------------------------------------------
# The regression gate
# ---------------------------------------------------------------------------


@dataclass
class BenchComparison:
    """Outcome of comparing a fresh record against a baseline."""

    name: str
    ok: bool
    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


def _diff_sim(current: Any, baseline: Any, path: str, failures: list[str]) -> None:
    """Recursive byte-exact diff with leaf-level failure messages."""
    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in sorted(set(baseline) | set(current)):
            where = f"{path}.{key}" if path else key
            if key not in current:
                failures.append(f"sim:{where}: missing (baseline {baseline[key]!r})")
            elif key not in baseline:
                failures.append(f"sim:{where}: new key (current {current[key]!r})")
            else:
                _diff_sim(current[key], baseline[key], where, failures)
        return
    if current != baseline:
        failures.append(f"sim:{path}: {baseline!r} -> {current!r}")


def compare_bench(
    current: BenchRecord,
    baseline: BenchRecord,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
) -> BenchComparison:
    """Gate ``current`` against ``baseline``.

    Sim halves must match byte-exact (canonical JSON equality — drift
    lists the offending leaves). Wall throughput may regress at most
    ``wall_tolerance`` (fractional) below baseline, and only gates when
    the environment fingerprints match; improvements never fail.
    """
    comparison = BenchComparison(name=current.name, ok=True)
    if current.schema_version != baseline.schema_version:
        # Loud, direction-specific failure — a stale baseline must never
        # be skipped over, least of all on the machine it was made on.
        if baseline.schema_version < current.schema_version:
            where = (
                "same environment"
                if current.env == baseline.env
                else "different environment"
            )
            comparison.failures.append(
                f"stale baseline ({where}): schema v{baseline.schema_version} "
                f"predates current v{current.schema_version} — regenerate it "
                "with: repro bench --out <baseline-dir>"
            )
        else:
            comparison.failures.append(
                f"baseline schema v{baseline.schema_version} is newer than "
                f"this checkout's v{current.schema_version} — update the "
                "checkout before gating"
            )
        comparison.ok = False
        return comparison
    if canonical_sim_json(current) != canonical_sim_json(baseline):
        _diff_sim(current.sim, baseline.sim, "", comparison.failures)
        comparison.ok = False
    if current.env != baseline.env:
        comparison.notes.append(
            "environment differs from baseline — wall-clock metrics not gated"
        )
    else:
        base_rate = float(baseline.wall.get("events_per_s", 0.0))
        cur_rate = float(current.wall.get("events_per_s", 0.0))
        if base_rate > 0.0 and cur_rate < base_rate * (1.0 - wall_tolerance):
            comparison.failures.append(
                f"wall:events_per_s: {cur_rate:.1f} is more than "
                f"{wall_tolerance * 100:.0f}% below baseline {base_rate:.1f}"
            )
            comparison.ok = False
        elif base_rate > 0.0:
            comparison.notes.append(
                f"wall:events_per_s {cur_rate:.1f} vs baseline "
                f"{base_rate:.1f} (within {wall_tolerance * 100:.0f}%)"
            )
    return comparison
