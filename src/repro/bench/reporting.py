"""Reporting: paper-vs-measured tables, CSV and JSON exports."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.bench.harness import ExperimentResult
from repro.sim.trace import Tracer

__all__ = [
    "format_result_table",
    "format_comparison_table",
    "format_trace_breakdown",
    "write_results_csv",
    "write_results_json",
]


def format_result_table(results: list[ExperimentResult], which: str) -> str:
    """Render results in the paper's table layout (rate / avg / max)."""
    lines = [
        f"{'Rate(Hz)':>9} | {'Avg(ms)':>10} | {'Max(ms)':>10} | {'N':>6}",
        "-" * 45,
    ]
    for result in results:
        row = result.row(which)
        lines.append(
            f"{row['rate_hz']:>9.0f} | {row['avg_ms']:>10.3f} | "
            f"{row['max_ms']:>10.3f} | {row['count']:>6.0f}"
        )
    return "\n".join(lines)


def format_comparison_table(
    results: list[ExperimentResult],
    paper: dict[int, dict[str, float]],
    which: str,
    title: str,
) -> str:
    """Side-by-side paper vs measured, with ratios."""
    lines = [
        title,
        f"{'Rate(Hz)':>9} | {'paper avg':>10} {'ours avg':>10} {'ratio':>6} | "
        f"{'paper max':>10} {'ours max':>10} {'ratio':>6}",
        "-" * 80,
    ]
    for result in results:
        row = result.row(which)
        reference = paper.get(int(result.rate_hz))
        if reference is None:
            continue
        avg_ratio = row["avg_ms"] / reference["avg"] if reference["avg"] else float("nan")
        max_ratio = row["max_ms"] / reference["max"] if reference["max"] else float("nan")
        lines.append(
            f"{result.rate_hz:>9.0f} | {reference['avg']:>10.3f} {row['avg_ms']:>10.3f} "
            f"{avg_ratio:>6.2f} | {reference['max']:>10.3f} {row['max_ms']:>10.3f} "
            f"{max_ratio:>6.2f}"
        )
    return "\n".join(lines)


def format_trace_breakdown(tracer: Tracer, title: str = "") -> str:
    """Per-stage latency breakdown of an observed run's span trees.

    The stage rows decompose the paper's end-to-end numbers: each stage's
    own service time plus the queue/network gap in front of it, with
    end-to-end rows per leaf stage (train / predict / actuator paths).
    """
    from repro.obs import (
        check_span_integrity,
        format_stage_table,
        spans_from_tracer,
        stage_breakdown,
    )

    spans = spans_from_tracer(tracer)
    if not spans:
        return "no spans in trace (was the run observed? see `repro trace`)"
    breakdown = stage_breakdown(spans)
    lines = [format_stage_table(breakdown, title=title)]
    lines.append("")
    lines.append(
        f"{breakdown.spans} spans in {breakdown.traces} traces"
        + (f", {breakdown.truncated} truncated paths" if breakdown.truncated else "")
    )
    problems = check_span_integrity(spans)
    if problems:
        lines.append(f"WARNING: {len(problems)} span integrity violations:")
        lines.extend(f"  {p}" for p in problems[:10])
    return "\n".join(lines)


def write_results_csv(
    results: list[ExperimentResult], path: str | Path
) -> Path:
    """Write one row per rate with both processes' summary columns."""
    path = Path(path)
    columns = [
        "rate_hz",
        "duration_s",
        "samples_sensed",
        "train_count",
        "train_avg_ms",
        "train_max_ms",
        "train_p95_ms",
        "predict_count",
        "predict_avg_ms",
        "predict_max_ms",
        "predict_p95_ms",
        "wlan_utilization",
    ]
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(columns)
        for result in results:
            writer.writerow(
                [
                    result.rate_hz,
                    result.duration_s,
                    result.samples_sensed,
                    result.training.count,
                    round(result.training.average, 3),
                    round(result.training.maximum, 3),
                    round(result.training.percentile(95), 3),
                    result.predicting.count,
                    round(result.predicting.average, 3),
                    round(result.predicting.maximum, 3),
                    round(result.predicting.percentile(95), 3),
                    round(result.wlan_utilization, 4),
                ]
            )
    return path


def write_results_json(
    results: list[ExperimentResult], path: str | Path
) -> Path:
    """Write the full summaries (including drop counters) as JSON."""
    path = Path(path)
    payload = [result.summary() for result in results]
    path.write_text(  # repro: lint-ok[DET005] - report export, not sim code
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    return path
