"""Experiment harness: the paper's testbed, latency probes and reporting.

* :mod:`repro.bench.calibration` — Pi-class cost model constants fitted to
  the paper's Tables II/III;
* :mod:`repro.bench.scenarios` — builders for the Fig. 7/9 testbed and its
  variants (scaling, broker placement, strategies);
* :mod:`repro.bench.harness` — run an experiment, collect sensing-to-X
  latency samples, summarize;
* :mod:`repro.bench.reporting` — paper-vs-measured tables.
"""

from repro.bench.calibration import (
    BROKER_QUEUE_LIMIT,
    PAPER_TABLE2_TRAINING,
    PAPER_TABLE3_PREDICTING,
    PI_QUEUE_LIMIT,
    pi_cost_model,
    pi_wlan_config,
)
from repro.bench.harness import ExperimentResult, run_paper_experiment, run_rate_sweep
from repro.bench.reporting import format_comparison_table, format_result_table
from repro.bench.scenarios import PaperTestbed, build_paper_recipe, build_paper_testbed

__all__ = [
    "BROKER_QUEUE_LIMIT",
    "ExperimentResult",
    "PAPER_TABLE2_TRAINING",
    "PAPER_TABLE3_PREDICTING",
    "PI_QUEUE_LIMIT",
    "PaperTestbed",
    "build_paper_recipe",
    "build_paper_testbed",
    "format_comparison_table",
    "format_result_table",
    "pi_cost_model",
    "pi_wlan_config",
    "run_paper_experiment",
    "run_rate_sweep",
]
