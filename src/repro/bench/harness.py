"""Experiment driver: run the testbed, collect sensing-to-X latencies.

The paper "measured the processing time until completing each process
((1) learning process, (2) predicting process) from sensing time" (§V-B).
We reproduce that measurement literally: every sample carries its
``sensed_at`` timestamp end-to-end, the Learning/Judging classes emit
``ml.trained`` / ``ml.judged`` trace events on completion, and the harness
taps those events into latency recorders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bench.scenarios import build_paper_testbed
from repro.util.stats import LatencyRecorder

__all__ = ["ExperimentResult", "run_paper_experiment", "run_rate_sweep"]


@dataclass
class ExperimentResult:
    """Outcome of one testbed run at one sensing rate."""

    rate_hz: float
    duration_s: float
    training = None  # set in __post_init__ (dataclass default quirk)
    predicting = None
    samples_sensed: int = 0
    batches_trained: int = 0
    batches_judged: int = 0
    jobs_dropped: dict[str, int] = field(default_factory=dict)
    wlan_utilization: float = 0.0
    #: The run's tracer (set by the driver) — carries ``obs.span`` records
    #: when the experiment ran with ``observe=True``.
    tracer: Any = None
    #: The run's :class:`~repro.prof.Profiler` when run with
    #: ``profile=True``, else None.
    profiler: Any = None
    #: The run's :class:`~repro.obs.slo.SloEngine` when run with
    #: ``slo=True``, else None.
    slo_engine: Any = None
    #: Per-node CPU busy share over the measured window (``profile=True``).
    cpu_utilization: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.training = LatencyRecorder("sensing-training")
        self.predicting = LatencyRecorder("sensing-predicting")

    def row(self, which: str) -> dict[str, float]:
        """Paper-style table row (avg/max in ms) for 'training' or
        'predicting'."""
        recorder = self.training if which == "training" else self.predicting
        return {
            "rate_hz": self.rate_hz,
            "avg_ms": recorder.average,
            "max_ms": recorder.maximum,
            "count": float(recorder.count),
        }

    def summary(self) -> dict[str, Any]:
        return {
            "rate_hz": self.rate_hz,
            "duration_s": self.duration_s,
            "samples_sensed": self.samples_sensed,
            "training": self.training.summary(),
            "predicting": self.predicting.summary(),
            "jobs_dropped": dict(self.jobs_dropped),
            "wlan_utilization": self.wlan_utilization,
        }


def run_paper_experiment(
    rate_hz: float,
    duration_s: float = 2.5,
    seed: int = 0,
    settle_s: float = 2.0,
    qos: int = 0,
    broker_cpu_speed: float = 1.0,
    observe: bool = False,
    profile: bool = False,
    slo: bool = False,
) -> ExperimentResult:
    """Run the Fig. 7/9 experiment at one sensing rate.

    ``duration_s`` of measured sensing follows ``settle_s`` of deployment
    settling. Latency samples cover every batch completed during the run,
    including the cold-start ones — the paper's max column clearly includes
    warm-up (max is ~6x the average at 5 Hz), so ours does too. The default
    window is short (2.5 s): the paper's overloaded rows are transient
    buffer-fill measurements, and their 80/40 Hz latency ratio (~1.46) pins
    the observation window to a few seconds of saturated operation.

    ``profile=True`` attaches the sim-time profiler (``repro.prof``) and
    fills ``result.cpu_utilization`` with each node's busy share over the
    *measured* window — the numbers behind the paper's §V-C capacity
    story (training saturates its node between 20 and 40 Hz).
    """
    testbed = build_paper_testbed(
        rate_hz, seed=seed, broker_cpu_speed=broker_cpu_speed
    )
    testbed.qos = qos
    runtime = testbed.runtime
    if observe or slo:
        from repro.obs import enable_observability

        # The bench testbed keeps trace storage off for speed; an observed
        # run exists to produce the trace, so turn it back on.
        runtime.tracer.enabled = True
        enable_observability(runtime)
    if slo:
        from repro.bench.scenarios import build_paper_recipe
        from repro.obs.slo import enable_slo

        # Same recipe the testbed will submit: the engine derives its
        # policy from the declared deadlines before deployment.
        enable_slo(
            runtime,
            recipe=build_paper_recipe(rate_hz, qos=qos),
            cluster=testbed.cluster,
        )
    profiler = None
    if profile:
        from repro.prof import enable_profiling

        # Storage back on so the sampled utilization timeline
        # (``prof.sample`` records) survives for export.
        runtime.tracer.enabled = True
        profiler = enable_profiling(runtime)
    result = ExperimentResult(rate_hz=rate_hz, duration_s=duration_s)

    sensed = {"count": 0}
    runtime.tracer.tap(
        "sensor.sample", lambda record: sensed.__setitem__("count", sensed["count"] + 1)
    )
    runtime.tracer.tap(
        "ml.trained",
        lambda record: result.training.add(record["latency_s"] * 1000.0),
    )
    runtime.tracer.tap(
        "ml.judged",
        lambda record: result.predicting.add(record["latency_s"] * 1000.0),
    )

    application = testbed.submit()
    testbed.cluster.settle(settle_s)
    measure_from = runtime.now
    runtime.run(until=runtime.now + duration_s)
    application.stop()

    if profiler is not None:
        result.profiler = profiler
        result.cpu_utilization = {
            node: round(profiler.cpu_utilization(node, since=measure_from), 9)
            for node in profiler.cpu_nodes()
        }
    result.samples_sensed = sensed["count"]
    result.batches_trained = result.training.count
    result.batches_judged = result.predicting.count
    for name, node in sorted(runtime.nodes.items()):
        if node.cpu is not None and node.cpu.stats.jobs_dropped:
            result.jobs_dropped[name] = node.cpu.stats.jobs_dropped
    result.wlan_utilization = runtime.wlan.utilization()
    result.tracer = runtime.tracer
    result.slo_engine = runtime.slo
    return result


def run_rate_sweep(
    rates_hz: tuple[float, ...] | list[float],
    duration_s: float = 2.5,
    seed: int = 0,
) -> list[ExperimentResult]:
    """One experiment per rate (fresh testbed each — no cross-talk)."""
    return [
        run_paper_experiment(rate, duration_s=duration_s, seed=seed)
        for rate in rates_hz
    ]
