"""Pi-class calibration: cost model, WLAN and queue parameters.

The paper's absolute numbers come from Raspberry Pi 2 hardware we do not
have, so the *fixed* per-operation service times below are fitted to the
paper's own low-rate measurements (Tables II/III, 5–10 Hz rows, where
queueing is negligible) and the warm-up surcharge to the low-rate *max*
rows. Everything the paper observes at higher rates — the latency knee
between 20 and 40 Hz, the plateau at 40/80 Hz, training saturating before
predicting — then **emerges from queueing** on the bounded Pi CPU queues
and the shared WLAN; no high-rate number is programmed in.

Fitting notes (all times for one Raspberry Pi 2 class core):

* ``ml.train`` 28 ms / ``ml.predict`` 18 ms — Jubatus classifier
  train/classify RPC round-trips on Cortex-A7-class hardware; chosen so
  the training path's utilization crosses 1.0 between 20 and 40 Hz
  (3 sensors x window + train) and the predicting path's slightly above
  40 Hz, matching where each table's knee sits.
* warm-up surcharge ~0.28 s on the first two analysis calls — process
  cold start; reproduces the 300+ ms max at 5-10 Hz where the average is
  only ~60 ms.
* MQTT handling 1.5-3 ms per packet — Mosquitto-on-Pi routing cost.
* queue limits (2048 jobs per Pi, 4096 at the broker) model the deep
  socket/broker buffers of the real stack: within the paper's short
  measurement window the overloaded rows (40/80 Hz) are in *transient*
  buffer fill, which is what makes 80 Hz slower than 40 Hz (it fills
  ~2.3x faster) rather than both sitting on one drop-bounded plateau.
"""

from __future__ import annotations

from repro.net.wlan import WlanConfig
from repro.runtime.costs import CostModel, OpCost

__all__ = [
    "pi_cost_model",
    "pi_wlan_config",
    "PI_QUEUE_LIMIT",
    "PAPER_TABLE2_TRAINING",
    "PAPER_TABLE3_PREDICTING",
    "PAPER_RATES_HZ",
]

#: Bound on each Pi CPU's waiting queue (jobs). Overload drops excess.
PI_QUEUE_LIMIT = 2048

#: The broker process keeps a much deeper backlog (Mosquitto's in-flight
#: and socket buffers) than the analysis process's RPC queue.
BROKER_QUEUE_LIMIT = 4096


def pi_cost_model() -> CostModel:
    """Service times for one Raspberry Pi 2 class node."""
    model = CostModel()
    # Sensor/actuator integration.
    model.define("sensor.sample", OpCost(base_s=2.5e-3))
    model.define("actuator.apply", OpCost(base_s=2.0e-3))
    # MQTT handling (per packet, plus a small per-byte term).
    model.define("mqtt.send", OpCost(base_s=1.4e-3, per_byte_s=4e-7))
    model.define("mqtt.recv", OpCost(base_s=2.4e-3, per_byte_s=4e-7))
    model.define("mqtt.route", OpCost(base_s=1.5e-3, per_byte_s=4e-7))
    model.define("mqtt.forward", OpCost(base_s=0.7e-3, per_byte_s=4e-7))
    # Generic stream processing (window merge, map, filter...).
    model.define("flow.process", OpCost(base_s=1.6e-3))
    # Online ML (Jubatus-substitute) — the dominant terms.
    model.define(
        "ml.train",
        OpCost(base_s=28.0e-3, per_byte_s=2e-7, warmup_extra_s=0.27, warmup_ops=1),
    )
    model.define(
        "ml.predict",
        OpCost(base_s=18.0e-3, per_byte_s=2e-7, warmup_extra_s=0.25, warmup_ops=1),
    )
    model.define("ml.load_model", OpCost(base_s=12.0e-3))
    model.define("ml.mix", OpCost(base_s=8.0e-3))
    return model


def pi_wlan_config() -> WlanConfig:
    """The shared 802.11 channel of the paper's testbed (Fig. 7)."""
    return WlanConfig(
        bitrate_bps=20e6,
        per_frame_overhead_s=0.5e-3,
        jitter_s=0.3e-3,
        loss_rate=0.0,
        propagation_delay_s=5e-6,
    )


#: The sampling rates evaluated in the paper (§V-B).
PAPER_RATES_HZ = (5, 10, 20, 40, 80)

#: Table II — EXPERIMENTAL RESULT (SENSING-TRAINING), milliseconds.
PAPER_TABLE2_TRAINING: dict[int, dict[str, float]] = {
    5: {"avg": 58.969, "max": 357.619},
    10: {"avg": 60.904, "max": 360.761},
    20: {"avg": 232.944, "max": 419.513},
    40: {"avg": 1123.317, "max": 1482.500},
    80: {"avg": 1636.907, "max": 1913.752},
}

#: Table III — EXPERIMENTAL RESULT (SENSING-PREDICTING), milliseconds.
PAPER_TABLE3_PREDICTING: dict[int, dict[str, float]] = {
    5: {"avg": 58.969, "max": 346.142},
    10: {"avg": 59.020, "max": 334.501},
    20: {"avg": 74.747, "max": 373.992},
    40: {"avg": 744.535, "max": 819.748},
    80: {"avg": 1144.580, "max": 1249.122},
}
