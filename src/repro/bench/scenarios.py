"""Testbed builders: the paper's Fig. 7/9 system and its variants.

The paper's evaluation system: six Raspberry Pi neuron modules on one
wireless LAN plus a management laptop. Modules A-C generate sensor data at
a fixed rate; module D runs the Mosquitto broker; module E subscribes to
all three sensor flows, aggregates them into ``[data]`` batches, and
trains; module F does the same but predicts (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.bench.calibration import (
    BROKER_QUEUE_LIMIT,
    PI_QUEUE_LIMIT,
    pi_cost_model,
    pi_wlan_config,
)
from repro.core.middleware import Application, IFoTCluster
from repro.core.recipe import Recipe, TaskSpec
from repro.runtime.costs import CostModel
from repro.runtime.sim import SimRuntime
from repro.sensors.devices import FixedPayloadModel

__all__ = [
    "PaperTestbed",
    "build_paper_testbed",
    "build_paper_recipe",
    "paper_device_keys",
    "FIG5_RECIPE_PATH",
    "build_fig5_testbed",
    "fig5_device_keys",
    "run_fig5_experiment",
]

#: Module names of Fig. 7 (the management node is created by the cluster).
SENSOR_MODULES = ("module-a", "module-b", "module-c")
BROKER_MODULE = "module-d"
TRAIN_MODULE = "module-e"
PREDICT_MODULE = "module-f"


@dataclass
class PaperTestbed:
    """A ready-to-run instance of the paper's evaluation system."""

    runtime: SimRuntime
    cluster: IFoTCluster
    rate_hz: float

    qos: int = 0

    def submit(self) -> Application:
        """Deploy the experiment recipe (Fig. 9 class wiring)."""
        return self.cluster.submit(build_paper_recipe(self.rate_hz, qos=self.qos))


def build_paper_testbed(
    rate_hz: float,
    seed: int = 0,
    management_heartbeat_s: float = 5.0,
    trace: bool = False,
    broker_cpu_speed: float = 1.0,
) -> PaperTestbed:
    """Construct the six-Pi testbed at sensing rate ``rate_hz``.

    ``trace=False`` keeps the full event trace off (taps still fire), which
    is what the benchmark harness wants for long runs. ``broker_cpu_speed``
    scales module D's CPU (the broker-placement ablation moves the broker
    onto laptop-class hardware by raising it).
    """
    runtime = SimRuntime(
        seed=seed,
        wlan_config=pi_wlan_config(),
        cost_model=pi_cost_model(),
    )
    runtime.tracer.enabled = trace
    # The broker runs ON module D, a Raspberry Pi (Fig. 9) — its routing
    # work shares that Pi's CPU and bounded queue.
    cluster = IFoTCluster(
        runtime,
        broker_node_name=BROKER_MODULE,
        management_node_name="mgmt",
        broker_kwargs={
            "queue_limit": BROKER_QUEUE_LIMIT,
            "cpu_speed": broker_cpu_speed,
        },
        # The management node is a laptop (Core i5): much faster.
        node_kwargs={"cpu_speed": 8.0},
        heartbeat_s=management_heartbeat_s,
    )
    for name in SENSOR_MODULES:
        module = cluster.add_module(name, queue_limit=PI_QUEUE_LIMIT)
        module.attach_sensor("sample", FixedPayloadModel(values=3))
    cluster.add_module(TRAIN_MODULE, queue_limit=PI_QUEUE_LIMIT)
    cluster.add_module(PREDICT_MODULE, queue_limit=PI_QUEUE_LIMIT)
    # Let MQTT sessions, announcements and heartbeats settle before use.
    cluster.settle(2.0)
    return PaperTestbed(runtime=runtime, cluster=cluster, rate_hz=rate_hz)


def build_paper_recipe(rate_hz: float, qos: int = 0) -> Recipe:
    """The experiment's task graph (Fig. 9).

    Sensor classes on modules A-C publish ``raw-*`` flows; modules E and F
    each run a subscribe-side aligner producing ``[data]`` batches feeding
    their Train / Predict class. Training and predicting are independent
    paths, exactly as in the paper's two measured processes.
    """
    align_params = {"mode": "align", "sources": list(SENSOR_MODULES), "qos": qos}
    tasks = [
        TaskSpec(
            f"sense-{name[-1]}",
            "sensor",
            outputs=[f"raw-{name[-1]}"],
            params={"device": "sample", "rate_hz": rate_hz, "qos": qos},
            pin_to=name,
            capabilities=["sensor:sample"],
        )
        for name in SENSOR_MODULES
    ]
    raw_streams = [f"raw-{name[-1]}" for name in SENSOR_MODULES]
    tasks += [
        TaskSpec(
            "gather-train",
            "window",
            inputs=list(raw_streams),
            outputs=["batch-train"],
            params=dict(align_params),
            pin_to=TRAIN_MODULE,
        ),
        TaskSpec(
            "train",
            "train",
            inputs=["batch-train"],
            params={"model": "classifier", "label_key": "label", "emit_info": False},
            pin_to=TRAIN_MODULE,
            # Sensing-to-trained budget at the reference 5 Hz operating
            # point (`repro lint --recipe paper --deadline`); the static
            # bound there is ~2.3 s, dominated by the align-window round.
            deadline_ms=3000,
        ),
        TaskSpec(
            "gather-predict",
            "window",
            inputs=list(raw_streams),
            outputs=["batch-predict"],
            params=dict(align_params),
            pin_to=PREDICT_MODULE,
        ),
        TaskSpec(
            "predict",
            "predict",
            inputs=["batch-predict"],
            params={
                "model": "classifier",
                "label_key": "label",
                "train_on_stream": True,
            },
            pin_to=PREDICT_MODULE,
            # Sensing-to-scored budget at the reference 5 Hz operating
            # point (static bound ~1.7 s; see `train` above).
            deadline_ms=2500,
        ),
    ]
    return Recipe("paper-exp", tasks)


def paper_device_keys() -> dict[str, tuple[str, ...]]:
    """Device -> channel keys for the paper testbed, as the static payload
    checker (:func:`repro.lint.dataflow.check_recipe_payloads`) wants them.

    Built from the same device models :func:`build_paper_testbed` attaches,
    so the checker's view cannot drift from what actually runs.
    """
    keys = FixedPayloadModel(values=3).channel_keys()
    assert keys is not None
    return {"sample": keys}


# ---------------------------------------------------------------------------
# Fig. 5 "start watching" testbed (shared by `repro trace` and the
# golden-trace tests, which fingerprint a run of exactly this build).
# ---------------------------------------------------------------------------

FIG5_RECIPE_PATH = (
    Path(__file__).resolve().parents[3] / "examples" / "recipes" / "fig5_watching.recipe"
)

#: The planted fall event driving the Fig. 5 scenario.
FIG5_FALL_AT = 20.0
FIG5_FALL_LEN = 2.0


def build_fig5_testbed(
    seed: int = 55,
    observe: bool = False,
    prepare: "Callable[[SimRuntime], None] | None" = None,
    cost_model: "CostModel | None" = None,
) -> tuple[SimRuntime, IFoTCluster]:
    """The Fig. 5 cluster: wrist/waist accelerometers, room sensors +
    camera, an analysis module and a pager, with a fall planted at t=20 s.

    With ``observe=True`` flow tracing and metrics are enabled *before*
    any component exists, so the span trees cover the whole run.
    ``prepare`` likewise runs on the bare runtime first (the schedule
    sanitizer installs its kernel monitor / tie-break perturbation there).
    ``cost_model`` defaults to the historical zero-cost model — the
    golden-trace digests fingerprint that build — but ``repro prof``
    passes the Pi calibration so CPU utilization is meaningful.
    """
    from repro.sensors import (
        AccelerometerModel,
        AlertActuator,
        CameraModel,
        EnvironmentSensorModel,
        EventSchedule,
    )

    events = EventSchedule()
    events.add(FIG5_FALL_AT, FIG5_FALL_LEN, "fall", intensity=1.2)
    if cost_model is None:
        runtime = SimRuntime(seed=seed)
    else:
        runtime = SimRuntime(seed=seed, cost_model=cost_model)
    if prepare is not None:
        prepare(runtime)
    if observe:
        from repro.obs import enable_observability

        enable_observability(runtime)
    cluster = IFoTCluster(runtime)
    wrist = cluster.add_module("pi-wrist")
    wrist.attach_sensor("accel-wrist", AccelerometerModel(events))
    waist = cluster.add_module("pi-waist")
    waist.attach_sensor("accel-waist", AccelerometerModel(events, sway_sigma=0.06))
    room = cluster.add_module("pi-room")
    room.attach_sensor("environment", EnvironmentSensorModel(events))
    room.attach_sensor("camera", CameraModel(events))
    cluster.add_module("pi-analysis")
    pager_module = cluster.add_module("pi-pager")
    pager_module.attach_actuator("pager", AlertActuator())
    cluster.settle(2.0)
    return runtime, cluster


def fig5_device_keys() -> dict[str, tuple[str, ...]]:
    """Device -> channel keys for the Fig. 5 cluster (see
    :func:`paper_device_keys` for why this mirrors the testbed builder)."""
    from repro.sensors import (
        AccelerometerModel,
        CameraModel,
        EnvironmentSensorModel,
        EventSchedule,
    )

    events = EventSchedule()
    mapping: dict[str, tuple[str, ...]] = {}
    for device, model in (
        ("accel-wrist", AccelerometerModel(events)),
        ("accel-waist", AccelerometerModel(events, sway_sigma=0.06)),
        ("environment", EnvironmentSensorModel(events)),
        ("camera", CameraModel(events)),
    ):
        keys = model.channel_keys()
        assert keys is not None
        mapping[device] = keys
    return mapping


def run_fig5_experiment(
    seed: int = 55,
    duration_s: float = 30.0,
    observe: bool = True,
    prepare: "Callable[[SimRuntime], None] | None" = None,
    cost_model: "CostModel | None" = None,
    slo: bool = False,
) -> SimRuntime:
    """Deploy the shipped Fig. 5 recipe and run for ``duration_s``.

    Returns the runtime; its tracer carries the full event trace (span
    trees and metric scrapes included when ``observe`` is on).
    ``prepare`` and ``cost_model`` are forwarded to
    :func:`build_fig5_testbed`. ``slo=True`` installs the online SLO
    engine on the recipe's declared deadlines before deployment (it
    implies ``observe`` — the engine consumes the span stream); the
    engine stays reachable as ``runtime.slo``.
    """
    from repro.core.dsl import parse_recipe

    runtime, cluster = build_fig5_testbed(
        seed=seed, observe=observe or slo, prepare=prepare, cost_model=cost_model
    )
    recipe = parse_recipe(FIG5_RECIPE_PATH.read_text())
    if slo:
        from repro.obs.slo import enable_slo

        enable_slo(runtime, recipe=recipe, cluster=cluster)
    app = cluster.submit(recipe)
    cluster.settle(2.0)
    runtime.run(until=runtime.now + duration_s)
    app.stop()
    return runtime
