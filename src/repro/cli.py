"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``paper-exp``
    Run the paper's evaluation (Tables II/III) on the simulated testbed
    and print the paper-vs-measured comparison.
``validate <recipe-file>``
    Parse a recipe (``.recipe`` DSL or ``.json``), validate the task
    graph, and print the execution plan: stages, sub-tasks, and a dry-run
    assignment over a hypothetical homogeneous cluster.
``fmt <recipe-file>``
    Canonically re-format a recipe (DSL in, DSL out; JSON in, DSL out).
``operators``
    List the operators recipes can use.
``chaos``
    Run a fault-injection scenario (or all of them) on the simulated
    chaos testbed and print the end-to-end invariant report.
``trace``
    Run an observed pipeline (or load a trace dump) and print the
    per-stage latency breakdown reconstructed from its span trees;
    optionally export the trace as JSONL and/or Chrome trace_event JSON.
``lint``
    Static analysis: run the determinism linter over Python sources
    and/or the recipe static checker over a recipe file. ``--strict``
    promotes warnings to failures; ``--format json`` emits a machine
    report. Exit code 1 when blocking findings remain.
``prof``
    Run a scenario under the sim-time profiler and print the
    "where did the millisecond go" tree (or folded stacks / JSON);
    optionally export folded stacks and Chrome counter tracks. With
    ``--scenario paper --rates`` prints a per-rate utilization table —
    the paper's saturation story in one screen.
``bench``
    Continuous benchmarking: run named benchmarks, write schema-versioned
    ``BENCH_<name>.json`` records, and with ``--compare <dir>`` gate the
    fresh records against a committed baseline (byte-exact on sim
    metrics, tolerance-banded on wall throughput). Exit code 1 on
    regression — this is the CI gate.
``slo``
    Run a scenario with the online SLO engine attached and print the
    conformance report: per-flow latency sketches vs declared deadlines,
    the burn-rate alert timeline (sim-time anchors), drift findings and
    SLO3xx diagnostics. ``--strict`` fails on warnings too;
    ``--expect-burn`` inverts the gate for chaos acceptance runs (exit 0
    iff a page alert fired).
``top``
    Live console for a running real backend: polls the scrape endpoint
    served by ``AsyncioRuntime.serve_metrics`` and redraws a top-style
    view of flows, node watermarks and hot series.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import (
    PAPER_TABLE2_TRAINING,
    PAPER_TABLE3_PREDICTING,
    format_comparison_table,
    run_rate_sweep,
)
from repro.bench.reporting import write_results_csv, write_results_json
from repro.bench.calibration import PAPER_RATES_HZ
from repro.chaos import SCENARIOS, run_scenario
from repro.core.assignment import ModuleInfo, TaskAssignment
from repro.core.dsl import format_recipe, parse_recipe
from repro.core.operators import registered_operators
from repro.core.recipe import Recipe
from repro.core.splitter import RecipeSplit
from repro.errors import ConfigurationError, IFoTError

__all__ = ["main"]


def _load_recipe(path: Path) -> Recipe:
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".json":
        return Recipe.from_json(text)
    return parse_recipe(text)


def _cmd_paper_exp(args: argparse.Namespace) -> int:
    rates = (
        tuple(float(r) for r in args.rates.split(","))
        if args.rates
        else PAPER_RATES_HZ
    )
    print(
        f"running the Fig. 7/9 testbed at rates {[int(r) for r in rates]} Hz "
        f"(duration {args.duration}s, seed {args.seed})..."
    )
    results = run_rate_sweep(rates, duration_s=args.duration, seed=args.seed)
    print()
    print(
        format_comparison_table(
            results,
            PAPER_TABLE2_TRAINING,
            "training",
            "Table II — sensing->training latency (ms)",
        )
    )
    print()
    print(
        format_comparison_table(
            results,
            PAPER_TABLE3_PREDICTING,
            "predicting",
            "Table III — sensing->predicting latency (ms)",
        )
    )
    if args.csv:
        print(f"wrote {write_results_csv(results, args.csv)}")
    if args.json:
        print(f"wrote {write_results_json(results, args.json)}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    path = Path(args.recipe)
    recipe = _load_recipe(path)
    subtasks = RecipeSplit().split(recipe)
    print(f"recipe {recipe.name!r}: OK")
    print(f"  tasks: {len(recipe.tasks)}, sub-tasks after split: {len(subtasks)}")
    print(f"  streams: {', '.join(recipe.streams) or '(none)'}")
    for i, stage in enumerate(recipe.stages()):
        print(f"  stage {i}: {', '.join(stage)}")
    if args.modules > 0:
        capabilities = {cap for s in subtasks for cap in s.capabilities}
        pins = {s.pin_to for s in subtasks if s.pin_to}
        modules = [
            ModuleInfo(name, capabilities=set(capabilities))
            for name in sorted(pins)
        ]
        modules += [
            ModuleInfo(f"module-{i}", capabilities=set(capabilities))
            for i in range(args.modules)
        ]
        assignment = TaskAssignment().assign(subtasks, modules)
        print(f"  dry-run assignment over {len(modules)} modules:")
        for subtask_id in sorted(assignment.placements):
            print(f"    {subtask_id} -> {assignment.placements[subtask_id]}")
    return 0


def _cmd_fmt(args: argparse.Namespace) -> int:
    recipe = _load_recipe(Path(args.recipe))
    sys.stdout.write(format_recipe(recipe))
    return 0


def _cmd_operators(_args: argparse.Namespace) -> int:
    for name in registered_operators():
        print(name)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.list:
        width = max(len(name) for name in SCENARIOS)
        for name in sorted(SCENARIOS):
            print(f"{name:<{width}}  {SCENARIOS[name].description}")
        return 0
    names = [args.scenario] if args.scenario else sorted(SCENARIOS)
    if args.seeds:
        return _chaos_multi_seed(names, args)
    all_ok = True
    for name in names:
        result = run_scenario(name, seed=args.seed, profile=args.profile)
        all_ok = all_ok and result.report.ok
        print(
            f"scenario {result.name} (seed {result.seed}, "
            f"{result.duration_s:g}s, {result.faults_applied} faults, "
            f"{result.trace_records} trace records)"
        )
        print(f"  trace digest: {result.trace_digest[:16]}")
        for line in result.report.render().splitlines():
            print(f"  {line}")
        if args.profile and result.profiler is not None:
            from repro.prof import format_profile_tree

            print()
            for line in format_profile_tree(
                result.profiler, title=f"Profile — chaos {result.name}"
            ).splitlines():
                print(f"  {line}")
        if getattr(args, "recover", False) and result.tracer is not None:
            from repro.core.healing import recovery_report

            print()
            for line in recovery_report(result.tracer).render().splitlines():
                print(f"  {line}")
        print()
    return 0 if all_ok else 1


def _chaos_multi_seed(names: list[str], args: argparse.Namespace) -> int:
    """Fan one or more scenarios out over a seed sweep (one process per seed)."""
    from repro.bench.parallel import merge_digest, run_parallel

    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    all_ok = True
    for name in names:
        rows = run_parallel("chaos", name, seeds, workers=args.workers)
        print(
            f"scenario {name}: {len(rows)} seeds on "
            f"{max(1, args.workers)} worker(s)"
        )
        for row in rows:
            ok = bool(row["invariants_ok"])
            all_ok = all_ok and ok
            print(
                f"  seed {row['seed']}: {row['trace_records']} trace records, "
                f"{row['faults_applied']} faults, "
                f"digest {row['trace_digest'][:16]}, "
                f"{'OK' if ok else 'FAIL'}"
            )
        print(f"  merged digest: {merge_digest(rows)[:16]}")
    return 0 if all_ok else 1


def _cmd_heal(args: argparse.Namespace) -> int:
    """Run one scenario and narrate how the control plane healed it."""
    from repro.core.healing import recovery_report

    result = run_scenario(args.scenario, seed=args.seed)
    print(
        f"scenario {result.name} (seed {result.seed}, "
        f"{result.duration_s:g}s, {result.faults_applied} faults)"
    )
    print(f"  trace digest: {result.trace_digest[:16]}")
    print()
    assert result.tracer is not None
    print(recovery_report(result.tracer).render())
    print()
    print(result.report.render())
    return 0 if result.report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_trace_breakdown
    from repro.obs import spans_from_tracer, to_chrome_trace
    from repro.sim.trace import Tracer

    if args.input:
        tracer = Tracer.from_jsonl(Path(args.input))
        title = f"Latency breakdown — {args.input}"
    elif args.pipeline == "fig5":
        from repro.bench.scenarios import run_fig5_experiment

        print(
            f"running the Fig. 5 recipe with tracing on "
            f"(duration {args.duration:g}s, seed {args.seed})..."
        )
        runtime = run_fig5_experiment(
            seed=args.seed, duration_s=args.duration, observe=True
        )
        tracer = runtime.tracer
        title = "Latency breakdown — Fig. 5 'start watching' pipeline"
    else:
        from repro.bench.harness import run_paper_experiment

        print(
            f"running the Fig. 7/9 testbed with tracing on "
            f"({args.rate:g} Hz, duration {args.duration:g}s, seed {args.seed})..."
        )
        result = run_paper_experiment(
            args.rate, duration_s=args.duration, seed=args.seed, observe=True
        )
        tracer = result.tracer
        title = f"Latency breakdown — paper pipeline at {args.rate:g} Hz"
    print()
    if args.summary:
        from repro.obs import flow_latency_summary, stage_breakdown
        from repro.obs.slo import format_flow_summary

        deadlines_ms = None
        if args.recipe:
            recipe, _origin, _keys = _lint_recipe(args.recipe)
            deadlines_ms = {
                task_id: task.deadline_ms
                for task_id, task in recipe.tasks.items()
                if task.deadline_ms is not None
            }
        flows = flow_latency_summary(
            stage_breakdown(spans_from_tracer(tracer))
        )
        print(title)
        print(format_flow_summary(flows, deadlines_ms))
    else:
        print(format_trace_breakdown(tracer, title=title))
    if args.jsonl:
        count = tracer.to_jsonl(args.jsonl)
        print(f"wrote {count} trace records to {args.jsonl}")
    if args.chrome:
        chrome = to_chrome_trace(spans_from_tracer(tracer))
        Path(args.chrome).write_text(  # repro: lint-ok[DET005] - CLI export
            json.dumps(chrome, sort_keys=True), encoding="utf-8"
        )
        print(
            f"wrote {len(chrome['traceEvents'])} trace events to {args.chrome} "
            "(load in chrome://tracing or Perfetto)"
        )
    return 0 if spans_from_tracer(tracer) else 1


def _lint_recipe(name_or_path: str) -> "tuple[Recipe, str, dict | None]":
    """Resolve ``--recipe`` to (recipe, origin, device channel keys).

    Built-in shortcuts carry the channel-key map of the testbed they run
    on, so the payload checker sees the same devices the scenario
    attaches; recipes loaded from files get ``None`` (open sensor
    schemas).
    """
    if name_or_path == "fig5":
        from repro.bench.scenarios import FIG5_RECIPE_PATH, fig5_device_keys

        return _load_recipe(FIG5_RECIPE_PATH), str(FIG5_RECIPE_PATH), fig5_device_keys()
    if name_or_path == "paper":
        from repro.bench.scenarios import build_paper_recipe, paper_device_keys

        return (
            build_paper_recipe(rate_hz=5.0),
            "<built-in paper recipe @ 5 Hz>",
            paper_device_keys(),
        )
    if name_or_path == "failover":
        from repro.bench.scenarios import paper_device_keys
        from repro.chaos.scenarios import build_chaos_recipe

        # The chaos testbed attaches the same FixedPayloadModel devices
        # as the paper testbed.
        return build_chaos_recipe(), "<built-in failover chaos recipe>", paper_device_keys()
    path = Path(name_or_path)
    return _load_recipe(path), str(path), None


def _lint_latency_context(name_or_path: str) -> "LatencyContext":
    """The :class:`LatencyContext` matching a ``--recipe`` argument.

    Built-ins get the calibration their committed BENCH baselines were
    measured under, so ``--validate`` compares like with like:

    * ``fig5`` — Pi cost model on the default WLAN (what ``repro bench``
      runs the Fig. 5 scenario with);
    * ``paper`` — Pi cost model on the paper's measured WLAN;
    * ``failover`` — Pi cost model (a sound upper bound over the chaos
      testbed's zero-cost model), the chaos link's stationary
      Gilbert–Elliott loss for QoS 1 retry amplification, and the
      module-recovery bound as a one-off disruption allowance.

    File recipes get the default context (generic cost model, default
    WLAN).
    """
    from repro.lint import LatencyContext

    if name_or_path == "fig5":
        from repro.bench.calibration import pi_cost_model

        return LatencyContext(cost_model=pi_cost_model())
    if name_or_path == "paper":
        from repro.bench.calibration import pi_cost_model, pi_wlan_config

        return LatencyContext(cost_model=pi_cost_model(), wlan=pi_wlan_config())
    if name_or_path == "failover":
        from repro.bench.calibration import pi_cost_model
        from repro.chaos.scenarios import MODULE_RECOVERY_BOUND_S

        # Stationary loss of the chaos scenario's Gilbert-Elliott link
        # (p_enter=0.05, p_exit=0.25, loss_bad=0.9).
        return LatencyContext(
            cost_model=pi_cost_model(),
            loss_rate=0.15,
            disruption_allowance_s=MODULE_RECOVERY_BOUND_S,
        )
    return LatencyContext()


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        LintRun,
        analyze_state_soundness,
        check_cost_drift,
        check_rate_feasibility,
        check_recipe,
        check_recipe_payloads,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
    )

    if args.catalog:
        from repro.lint.catalog import render_catalog_text

        print(render_catalog_text())
        return 0
    if not args.paths and not args.recipe and not args.calibrate:
        print(
            "error: nothing to lint (give paths and/or --recipe/--calibrate)",
            file=sys.stderr,
        )
        return 2
    if (args.deadline or args.validate) and not args.recipe:
        print(
            "error: --deadline/--validate analyze a recipe (add --recipe)",
            file=sys.stderr,
        )
        return 2
    rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()] or None
    run = LintRun()
    if args.paths:
        run.merge(lint_paths(args.paths, rule_ids=rule_ids))
        if args.dataflow:
            run.merge(analyze_state_soundness(args.paths))
    if args.recipe:
        recipe, origin, device_keys = _lint_recipe(args.recipe)
        checks = (
            check_recipe(recipe)
            + check_rate_feasibility(recipe)
            + check_recipe_payloads(recipe, device_keys)
        )
        if args.deadline or args.validate:
            from repro.lint import (
                analyze_latency,
                check_bound_soundness,
                check_deadlines,
                flows_from_bench,
                flows_from_trace,
            )

            context = _lint_latency_context(args.recipe)
            analysis = analyze_latency(recipe, context)
            checks += check_deadlines(recipe, context, analysis)
            if args.validate:
                observed_path = Path(args.validate)
                if observed_path.suffix == ".jsonl":
                    observed = flows_from_trace(observed_path)
                else:
                    from repro.bench.continuous import BenchRecord

                    observed = flows_from_bench(
                        BenchRecord.from_dict(
                            json.loads(observed_path.read_text())
                        )
                    )
                checks += check_bound_soundness(
                    recipe,
                    observed,
                    context,
                    analysis,
                    source=observed_path.name,
                )
        for diag in checks:
            run.diagnostics.append(diag.replace(file=origin))
    if args.calibrate:
        import json as _json

        from repro.bench.continuous import BenchRecord

        baseline = BenchRecord.from_dict(
            _json.loads(Path(args.calibrate).read_text())
        )
        for diag in check_cost_drift(baseline):
            run.diagnostics.append(diag.replace(file=args.calibrate))
    run.finish()
    render = {"json": render_json, "sarif": render_sarif}.get(
        args.format, render_text
    )
    print(
        render(
            run.diagnostics,
            strict=args.strict,
            suppressed=run.suppressed,
            files_checked=run.files_checked if args.paths else None,
        )
    )
    return 0 if run.ok(strict=args.strict) else 1


def _cmd_prof(args: argparse.Namespace) -> int:
    from repro.prof import (
        chrome_counter_events,
        folded_stacks,
        format_profile_tree,
        profile_to_dict,
    )

    if args.scenario == "paper" and args.rates:
        return _prof_paper_sweep(args)
    if args.scenario == "fig5":
        from repro.bench.calibration import pi_cost_model
        from repro.bench.scenarios import run_fig5_experiment
        from repro.prof import enable_profiling

        print(
            f"profiling the Fig. 5 pipeline (duration {args.duration:g}s, "
            f"seed {args.seed}, Pi cost calibration)..."
        )
        runtime = run_fig5_experiment(
            seed=args.seed,
            duration_s=args.duration,
            observe=False,
            prepare=lambda rt: enable_profiling(rt),
            cost_model=pi_cost_model(),
        )
        profiler = runtime.prof
        tracer = runtime.tracer
        title = "Fig. 5 'start watching' pipeline"
    elif args.scenario == "paper":
        from repro.bench.harness import run_paper_experiment

        print(
            f"profiling the paper testbed ({args.rate:g} Hz, duration "
            f"{args.duration:g}s, seed {args.seed})..."
        )
        result = run_paper_experiment(
            args.rate, duration_s=args.duration, seed=args.seed, profile=True
        )
        profiler = result.profiler
        tracer = result.tracer
        title = f"paper pipeline at {args.rate:g} Hz"
    elif args.scenario.startswith("chaos:"):
        name = args.scenario[len("chaos:") :]
        print(f"profiling chaos scenario {name!r} (seed {args.seed})...")
        result = run_scenario(name, seed=args.seed, profile=True)
        profiler = result.profiler
        tracer = result.tracer
        title = f"chaos scenario {name}"
    else:
        print(
            f"error: unknown scenario {args.scenario!r} "
            "(use fig5, paper, or chaos:<name>)",
            file=sys.stderr,
        )
        return 2
    if profiler is None:
        print("error: profiling unavailable for this runtime", file=sys.stderr)
        return 1
    print()
    if args.format == "folded":
        sys.stdout.write(folded_stacks(profiler))
    elif args.format == "json":
        print(json.dumps(profile_to_dict(profiler), indent=2, sort_keys=True))
    else:
        print(format_profile_tree(profiler, title=f"Profile — {title}"))
    if args.folded:
        Path(args.folded).write_text(  # repro: lint-ok[DET005] - CLI export
            folded_stacks(profiler), encoding="utf-8"
        )
        print(f"\nwrote folded stacks to {args.folded} (flamegraph.pl / speedscope)")
    if args.chrome:
        events = chrome_counter_events(tracer)
        Path(args.chrome).write_text(  # repro: lint-ok[DET005] - CLI export
            json.dumps({"traceEvents": events}, sort_keys=True), encoding="utf-8"
        )
        print(f"wrote {len(events)} counter events to {args.chrome}")
    return 0


def _prof_paper_sweep(args: argparse.Namespace) -> int:
    """Per-rate utilization table: the saturation knee at a glance."""
    from repro.bench.harness import run_paper_experiment

    rates = tuple(float(r) for r in args.rates.split(","))
    print(
        f"profiling the paper testbed at rates {[f'{r:g}' for r in rates]} Hz "
        f"(duration {args.duration:g}s, seed {args.seed})..."
    )
    results = [
        run_paper_experiment(
            rate, duration_s=args.duration, seed=args.seed, profile=True
        )
        for rate in rates
    ]
    nodes = sorted({node for r in results for node in r.cpu_utilization})
    print()
    header = f"{'node':<12}" + "".join(f"{f'{r:g} Hz':>10}" for r in rates)
    print("CPU utilization over the measured window (busy share, 1.0 = saturated)")
    print(header)
    print("-" * len(header))
    for node in nodes:
        row = f"{node:<12}"
        for result in results:
            row += f"{result.cpu_utilization.get(node, 0.0):>10.3f}"
        print(row)
    wlan_row = f"{'wlan':<12}" + "".join(
        f"{r.wlan_utilization:>10.3f}" for r in results
    )
    print(wlan_row)
    return 0


def _run_slo_scenario(args: argparse.Namespace) -> "tuple[str, object]":
    """Run the requested scenario with the SLO engine on; returns
    ``(label, engine)``. Profiling rides along so the drift watch and
    node watermarks have data."""
    scenario = args.scenario
    if scenario.startswith("chaos:"):
        scenario = scenario[len("chaos:") :]
    if scenario == "fig5":
        from repro.bench.calibration import pi_cost_model
        from repro.bench.scenarios import run_fig5_experiment
        from repro.prof import enable_profiling

        seed = 55 if args.seed is None else args.seed
        duration = 30.0 if args.duration is None else args.duration
        print(
            f"running fig5 with the SLO engine online "
            f"(duration {duration:g}s, seed {seed})...",
            file=sys.stderr,
        )
        runtime = run_fig5_experiment(
            seed=seed,
            duration_s=duration,
            prepare=lambda rt: enable_profiling(rt),
            cost_model=pi_cost_model(),
            slo=True,
        )
        return f"fig5 (seed {seed}, {duration:g}s)", runtime.slo
    if scenario == "paper":
        from repro.bench.harness import run_paper_experiment

        seed = 0 if args.seed is None else args.seed
        duration = 2.5 if args.duration is None else args.duration
        print(
            f"running the paper testbed with the SLO engine online "
            f"({args.rate:g} Hz, duration {duration:g}s, seed {seed})...",
            file=sys.stderr,
        )
        result = run_paper_experiment(
            args.rate,
            duration_s=duration,
            seed=seed,
            profile=True,
            slo=True,
        )
        return f"paper @ {args.rate:g} Hz (seed {seed})", result.slo_engine
    if scenario in SCENARIOS:
        seed = 0 if args.seed is None else args.seed
        print(
            f"running chaos scenario {scenario!r} with the SLO engine online...",
            file=sys.stderr,
        )
        result = run_scenario(scenario, seed=seed, slo=True, profile=True)
        return f"chaos:{scenario} (seed {seed})", result.slo_engine
    raise ConfigurationError(
        f"unknown slo scenario {args.scenario!r} "
        f"(known: fig5, paper, chaos:<{'|'.join(sorted(SCENARIOS))}>)"
    )


def _cmd_slo(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.lint.report import render_text
    from repro.obs.slo import format_flow_summary
    from repro.util.validate import blocking

    label, engine = _run_slo_scenario(args)
    if engine is None:
        print("the SLO engine is disabled (REPRO_SLO=0 or kill switch)")
        return 2
    report = engine.report()
    diagnostics = engine.diagnostics()
    if args.format == "json":
        payload = {
            "scenario": label,
            "report": report,
            "diagnostics": [
                {**dataclasses.asdict(d), "severity": str(d.severity)}
                for d in diagnostics
            ],
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        print()
        print(f"SLO report — {label}")
        flows = {
            flow_id: entry
            for flow_id, entry in report["flows"].items()
            if entry["count"]
        }
        if flows:
            print(format_flow_summary(
                flows,
                {f: e["deadline_ms"] for f, e in report["flows"].items()},
            ))
        for flow_id, entry in report["flows"].items():
            if not entry["count"]:
                print(f"{flow_id:<20} (no completed traces)")
            extras = []
            if entry["overdue"]:
                extras.append(f"{entry['overdue']} overdue (never completed)")
            if entry["violations"] - entry["overdue"]:
                extras.append(
                    f"{entry['violations'] - entry['overdue']} late"
                )
            if extras:
                print(f"{flow_id:<20} {', '.join(extras)}")
        if report["alerts"]:
            print("\nalert timeline (sim-time anchors):")
            for alert in report["alerts"]:
                print(
                    f"  t={alert['t']:>9.3f}s  {alert['flow']:<16} "
                    f"{alert['from']:>4} -> {alert['state']:<4} "
                    f"(burn {alert['burn_short']:.1f} short / "
                    f"{alert['burn_long']:.1f} long)"
                )
        if report["drift"]:
            print("\ncost-model drift (online):")
            for op, finding in report["drift"].items():
                print(
                    f"  t={finding['t']:>9.3f}s  {op:<16} "
                    f"{finding['drift']:+.0%} "
                    f"({finding['observed_s'] * 1e3:.3f} ms observed vs "
                    f"{finding['predicted_s'] * 1e3:.3f} ms modeled)"
                )
        print()
        print(render_text(diagnostics, strict=args.strict, label="slo"))
    paged = any(alert["state"] == "page" for alert in report["alerts"])
    if args.expect_burn:
        if not paged:
            print("expected a deadline burn page but none fired", file=sys.stderr)
            return 1
        return 0
    return 1 if blocking(diagnostics, strict=args.strict) else 0


def _fetch_text(url: str, timeout_s: float = 10.0) -> str:
    import urllib.request

    with urllib.request.urlopen(  # repro: lint-ok[DET005] - live console poll  # noqa: S310
        url, timeout=timeout_s
    ) as response:
        return response.read().decode("utf-8")


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    url = args.url.rstrip("/") + "/top"
    iteration = 0
    while True:
        try:
            body = _fetch_text(url)
        except OSError as exc:
            print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
            return 1
        if not args.no_clear and iteration:
            print("\x1b[2J\x1b[H", end="")
        print(body, end="" if body.endswith("\n") else "\n")
        iteration += 1
        if args.iterations and iteration >= args.iterations:
            return 0
        time.sleep(args.interval)  # repro: lint-ok[DET005] - interactive poll cadence


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.continuous import (
        BENCH_RUNNERS,
        compare_bench,
        load_bench,
        run_bench,
        write_bench,
    )

    if args.list:
        for name in sorted(BENCH_RUNNERS):
            print(name)
        return 0
    names = args.names or sorted(BENCH_RUNNERS)
    out_dir = Path(args.out) if args.out else None
    all_ok = True
    for name in names:
        print(f"running benchmark {name!r}...")
        record = run_bench(name)
        rate = record.wall.get("events_per_s", 0.0)
        print(f"  {record.wall.get('elapsed_s', 0):g}s wall, {rate:g} events/s")
        if out_dir is not None:
            path = write_bench(record, out_dir)
            print(f"  wrote {path}")
        if args.compare:
            try:
                baseline = load_bench(Path(args.compare), name)
            except FileNotFoundError:
                print(f"  no baseline BENCH_{name}.json in {args.compare}")
                all_ok = False
                continue
            comparison = compare_bench(
                record, baseline, wall_tolerance=args.wall_tolerance
            )
            for note in comparison.notes:
                print(f"  note: {note}")
            if comparison.ok:
                print(f"  {name}: OK (sim byte-exact vs baseline)")
            else:
                all_ok = False
                print(f"  {name}: REGRESSION")
                for failure in comparison.failures:
                    print(f"    {failure}")
    if args.compare and not all_ok:
        print(
            "\nbench gate failed — if the change is intentional, refresh the "
            "baseline with: repro bench --out <baseline-dir>",
            file=sys.stderr,
        )
    return 0 if all_ok else 1


def _cmd_san(args: argparse.Namespace) -> int:
    import json as _json

    from repro.lint.report import render_text
    from repro.san import SAN_SCENARIOS, run_sanitizer
    from repro.util.validate import blocking

    if args.list:
        width = max(len(name) for name in SAN_SCENARIOS)
        for name in sorted(SAN_SCENARIOS):
            print(f"{name:<{width}}  {SAN_SCENARIOS[name].description}")
        return 0
    names = args.scenarios or None
    report = run_sanitizer(
        scenarios=names, perturb=args.perturb, profile=args.profile
    )
    diagnostics = report.diagnostics
    if args.format == "json":
        payload = report.to_dict()
        payload["ok"] = not blocking(diagnostics, strict=args.strict)
        payload["strict"] = args.strict
        payload["perturb"] = args.perturb
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        for result in report.results:
            status = "diverged" if result.diverged_seeds else "stable"
            print(
                f"{result.scenario}: {result.events} events, "
                f"{result.cells} tracked cells, "
                f"{len(result.perturbed)} perturbed replays ({status})"
            )
        print(
            render_text(
                diagnostics,
                strict=args.strict,
                suppressed=report.suppressed,
                label="san",
            )
        )
    return 0 if not blocking(diagnostics, strict=args.strict) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IFoT middleware reproduction (ICDCSW 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    paper = sub.add_parser("paper-exp", help="regenerate Tables II/III")
    paper.add_argument(
        "--rates", default="", help="comma-separated Hz list (default: paper's)"
    )
    paper.add_argument("--duration", type=float, default=2.5)
    paper.add_argument("--seed", type=int, default=1)
    paper.add_argument("--csv", default="", help="also write results to CSV")
    paper.add_argument("--json", default="", help="also write results to JSON")
    paper.set_defaults(fn=_cmd_paper_exp)

    validate = sub.add_parser("validate", help="validate a recipe file")
    validate.add_argument("recipe", help=".recipe (DSL) or .json file")
    validate.add_argument(
        "--modules",
        type=int,
        default=0,
        help="dry-run assignment over N hypothetical modules",
    )
    validate.set_defaults(fn=_cmd_validate)

    fmt = sub.add_parser("fmt", help="canonically format a recipe")
    fmt.add_argument("recipe")
    fmt.set_defaults(fn=_cmd_fmt)

    ops = sub.add_parser("operators", help="list recipe operators")
    ops.set_defaults(fn=_cmd_operators)

    chaos = sub.add_parser(
        "chaos", help="run fault-injection scenarios and check invariants"
    )
    chaos.add_argument(
        "scenario",
        nargs="?",
        default="",
        help="scenario name (default: run all); see --list",
    )
    chaos.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--seeds",
        default="",
        help="comma-separated seed sweep: run each seed in its own worker "
        "process and merge deterministically (ignores --seed/--profile)",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for --seeds (default: 1 = serial reference)",
    )
    chaos.add_argument(
        "--profile",
        action="store_true",
        help="attach the sim-time profiler and print the busy-time tree",
    )
    chaos.add_argument(
        "--recover",
        action="store_true",
        help="print a recovery report (detection latency, migration "
        "durations, degraded-mode decisions) after the invariants",
    )
    chaos.set_defaults(fn=_cmd_chaos)

    heal = sub.add_parser(
        "heal",
        help="run a failure scenario and report how the control plane "
        "healed it",
    )
    heal.add_argument(
        "scenario",
        nargs="?",
        default="failover",
        help="chaos scenario to heal (default: failover); see "
        "'repro chaos --list'",
    )
    heal.add_argument("--seed", type=int, default=0)
    heal.set_defaults(fn=_cmd_heal)

    trace = sub.add_parser(
        "trace", help="observed run + per-stage latency breakdown"
    )
    trace.add_argument(
        "--pipeline",
        choices=("paper", "fig5"),
        default="paper",
        help="which pipeline to run (default: paper Fig. 7/9 testbed)",
    )
    trace.add_argument("--rate", type=float, default=5.0, help="sensing rate (paper)")
    trace.add_argument("--duration", type=float, default=2.5)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument(
        "--input", default="", help="analyze an existing trace JSONL instead of running"
    )
    trace.add_argument("--jsonl", default="", help="dump the full trace as JSONL")
    trace.add_argument(
        "--chrome", default="", help="export spans as Chrome trace_event JSON"
    )
    trace.add_argument(
        "--summary",
        action="store_true",
        help="one-screen per-flow p50/p95/p99/max table instead of the "
        "full breakdown (BENCH schema v3 flow stats)",
    )
    trace.add_argument(
        "--recipe",
        default="",
        help="with --summary: recipe (fig5|paper|failover|path) supplying "
        "deadline_ms for the SLO verdict column",
    )
    trace.set_defaults(fn=_cmd_trace)

    lint = sub.add_parser(
        "lint", help="determinism linter + recipe static checker"
    )
    lint.add_argument(
        "paths", nargs="*", help="Python files or directories to lint"
    )
    lint.add_argument(
        "--recipe",
        default="",
        help=(
            "also statically check a recipe: a file, 'fig5', 'paper', or "
            "'failover' (built-ins include payload schemas from their "
            "testbed's devices)"
        ),
    )
    lint.add_argument(
        "--dataflow",
        action="store_true",
        help=(
            "also run the interprocedural state-soundness pass "
            "(SAN020/SAN021) over the given paths"
        ),
    )
    lint.add_argument(
        "--calibrate",
        default="",
        metavar="BASELINE",
        help=(
            "check a bench baseline's per-op busy accounting against the "
            "calibrated cost model (RCP230 drift gate), e.g. "
            "benchmarks/baselines/BENCH_fig5.json"
        ),
    )
    lint.add_argument(
        "--deadline",
        action="store_true",
        help=(
            "also run the static latency-bound analyzer over --recipe: "
            "network-calculus bounds per flow checked against declared "
            "deadline_ms (RCP240-RCP242)"
        ),
    )
    lint.add_argument(
        "--validate",
        default="",
        metavar="TRACE_OR_BENCH",
        help=(
            "with --deadline: hold the static bounds against observed "
            "flow latencies from a BENCH baseline (schema v3 sim.flows) "
            "or an obs.span .jsonl trace dump (RCP243 soundness gate, "
            "RCP244 looseness)"
        ),
    )
    lint.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="format"
    )
    lint.add_argument(
        "--rules", default="", help="comma-separated rule ids (default: all)"
    )
    lint.add_argument(
        "--catalog", action="store_true", help="list lint rules and exit"
    )
    lint.set_defaults(fn=_cmd_lint)

    san = sub.add_parser(
        "san", help="schedule sanitizer: happens-before races + replay"
    )
    san.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names (default: all); see --list",
    )
    san.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    san.add_argument(
        "--perturb",
        type=int,
        default=3,
        metavar="N",
        help="tie-break perturbation replays per scenario (default: 3)",
    )
    san.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )
    san.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format"
    )
    san.add_argument(
        "--profile",
        action="store_true",
        help="also run the profiler in every run (base + perturbed): a "
        "schedule-dependent profile surfaces as SAN010 divergence",
    )
    san.set_defaults(fn=_cmd_san)

    prof = sub.add_parser(
        "prof", help="sim-time profile: busy-time tree and utilization"
    )
    prof.add_argument(
        "--scenario",
        default="fig5",
        help="fig5, paper, or chaos:<name> (default: fig5)",
    )
    prof.add_argument("--seed", type=int, default=55)
    prof.add_argument("--duration", type=float, default=30.0)
    prof.add_argument(
        "--rate", type=float, default=40.0, help="sensing rate (paper scenario)"
    )
    prof.add_argument(
        "--rates",
        default="",
        help="comma-separated Hz list (paper): per-rate utilization table",
    )
    prof.add_argument(
        "--format",
        choices=("tree", "folded", "json"),
        default="tree",
        dest="format",
    )
    prof.add_argument(
        "--folded", default="", help="write folded stacks (flamegraph input)"
    )
    prof.add_argument(
        "--chrome", default="", help="write Chrome trace_event counter tracks"
    )
    prof.set_defaults(fn=_cmd_prof)

    bench = sub.add_parser(
        "bench", help="continuous benchmarks + regression gate"
    )
    bench.add_argument(
        "names", nargs="*", help="benchmark names (default: all); see --list"
    )
    bench.add_argument(
        "--list", action="store_true", help="list benchmarks and exit"
    )
    bench.add_argument(
        "--out", default="", help="write BENCH_<name>.json records here"
    )
    bench.add_argument(
        "--compare",
        default="",
        metavar="DIR",
        help="gate against baseline BENCH_<name>.json records in DIR",
    )
    bench.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.35,
        help="allowed fractional wall-throughput regression (default: 0.35)",
    )
    bench.set_defaults(fn=_cmd_bench)

    slo = sub.add_parser(
        "slo", help="run a scenario with the online SLO engine and report"
    )
    slo.add_argument(
        "scenario",
        help="fig5 | paper | chaos:<name> (or a bare chaos scenario name)",
    )
    slo.add_argument("--seed", type=int, default=None)
    slo.add_argument(
        "--duration", type=float, default=None, help="fig5/paper run length (s)"
    )
    slo.add_argument("--rate", type=float, default=5.0, help="sensing rate (paper)")
    slo.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too (SLO301/302/310/320), not just pages",
    )
    slo.add_argument(
        "--expect-burn",
        action="store_true",
        help="acceptance mode: exit 0 iff a page alert fired (chaos runs)",
    )
    slo.add_argument("--format", choices=("text", "json"), default="text")
    slo.set_defaults(fn=_cmd_slo)

    top = sub.add_parser(
        "top", help="live SLO/metrics console for a running real backend"
    )
    top.add_argument(
        "url", help="scrape endpoint base URL (AsyncioRuntime.serve_metrics)"
    )
    top.add_argument("--interval", type=float, default=2.0, help="poll period (s)")
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after N polls (0 = run until interrupted)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="do not clear the screen between redraws",
    )
    top.set_defaults(fn=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except IFoTError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: invalid JSON: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
