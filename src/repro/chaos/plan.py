"""Declarative fault plans: typed fault events on a timeline.

A :class:`FaultPlan` is data, not code — a named, validated, serializable
timeline of fault events. The same plan object drives the injector, the
chaos benchmark matrix and the CLI, and because every stochastic element
underneath (jitter, loss, bursts, backoff) draws from seed-derived
streams, *plan + seed* fully determines a run.

Event taxonomy (see ``docs/ARCHITECTURE.md`` for the fault model):

========================  ====================================================
:class:`NodeCrash`        crash-stop a node (radio + CPU silent; RAM kept)
:class:`NodeRecover`      end a crash as a *blip*: state + timers resume
:class:`NodeRestart`      end-of-crash as *amnesia*: components torn down,
                          fresh incarnation boots, software re-deployed
:class:`BrokerRestart`    power-cycle the broker node (all sessions lost)
:class:`Partition`        cut layer-2 reachability between station groups
:class:`Heal`             remove a partition (or all of them)
:class:`LinkDegrade`      Gilbert–Elliott bursty loss and/or bitrate
                          throttling, channel-wide or per-station, timed
:class:`SensorFlap`       a sensor device stops producing, then resumes
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, ClassVar, Iterator

from repro.errors import ConfigurationError
from repro.net.wlan import GilbertElliottConfig
from repro.util.validate import Diagnostic, Severity

__all__ = [
    "FaultEvent",
    "NodeCrash",
    "NodeRecover",
    "NodeRestart",
    "BrokerRestart",
    "Partition",
    "Heal",
    "LinkDegrade",
    "SensorFlap",
    "FaultPlan",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base event: something happens at virtual time ``at``."""

    at: float
    kind: ClassVar[str] = ""

    def problems(self) -> list[str]:
        """Every configuration problem with this event (empty = valid)."""
        if self.at < 0:
            return [f"{self.kind}: at={self.at} must be >= 0"]
        return []

    def validate(self) -> None:
        problems = self.problems()
        if problems:
            raise ConfigurationError(problems[0])

    def describe(self) -> dict[str, Any]:
        """Trace-friendly summary (flat JSON-encodable fields)."""
        payload = asdict(self)
        payload.pop("at", None)
        return {
            k: (sorted(v) if isinstance(v, (set, frozenset)) else v)
            for k, v in payload.items()
            if v is not None
        }

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "at": self.at, **self.describe()}


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Crash-stop ``node``: no sends, receives or compute until a
    :class:`NodeRecover` / :class:`NodeRestart` brings it back."""

    node: str = ""
    kind: ClassVar[str] = "node_crash"

    def problems(self) -> list[str]:
        problems = super().problems()
        if not self.node:
            problems.append("node_crash needs a node name")
        return problems


@dataclass(frozen=True)
class NodeRecover(FaultEvent):
    """Blip recovery of a crashed ``node``: RAM and timers intact."""

    node: str = ""
    kind: ClassVar[str] = "node_recover"

    def problems(self) -> list[str]:
        problems = super().problems()
        if not self.node:
            problems.append("node_recover needs a node name")
        return problems


@dataclass(frozen=True)
class NodeRestart(FaultEvent):
    """Amnesia restart of ``node``: components torn down, incarnation
    bumped, middleware stack rebuilt (via the cluster when available)."""

    node: str = ""
    kind: ClassVar[str] = "node_restart"

    def problems(self) -> list[str]:
        problems = super().problems()
        if not self.node:
            problems.append("node_restart needs a node name")
        return problems


@dataclass(frozen=True)
class BrokerRestart(FaultEvent):
    """Power-cycle the cluster broker: every session, subscription,
    retained message and queued QoS 1 message is lost."""

    kind: ClassVar[str] = "broker_restart"


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Cut reachability between every station in ``group_a`` and every
    station in ``group_b`` (traffic within each group is unaffected)."""

    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()
    kind: ClassVar[str] = "partition"

    def problems(self) -> list[str]:
        problems = super().problems()
        if not self.group_a or not self.group_b:
            problems.append("partition needs two station groups")
        if set(self.group_a) & set(self.group_b):
            problems.append("partition groups must not overlap")
        return problems


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Remove the cut between ``group_a`` and ``group_b``; with both
    omitted, heal every active partition."""

    group_a: tuple[str, ...] | None = None
    group_b: tuple[str, ...] | None = None
    kind: ClassVar[str] = "heal"


@dataclass(frozen=True)
class LinkDegrade(FaultEvent):
    """Degrade the channel for ``duration_s`` seconds.

    ``stations`` limits the effect to frames touching any named station
    (``None`` = whole channel). ``bitrate_factor`` throttles the
    effective bitrate; ``burst`` layers a Gilbert–Elliott loss process on
    top of the configured i.i.d. loss.
    """

    duration_s: float = 0.0
    stations: tuple[str, ...] | None = None
    bitrate_factor: float = 1.0
    burst: GilbertElliottConfig | None = None
    kind: ClassVar[str] = "link_degrade"

    def problems(self) -> list[str]:
        problems = super().problems()
        if self.duration_s <= 0:
            problems.append("link_degrade needs duration_s > 0")
        if not 0.0 < self.bitrate_factor <= 1.0:
            problems.append(
                f"bitrate_factor must be in (0, 1], got {self.bitrate_factor}"
            )
        if self.burst is not None:
            try:
                self.burst.validate()
            except ConfigurationError as exc:
                problems.append(str(exc))
        return problems

    def describe(self) -> dict[str, Any]:
        payload = super().describe()
        if self.burst is not None:
            payload["burst"] = asdict(self.burst)
        return payload


@dataclass(frozen=True)
class SensorFlap(FaultEvent):
    """Sensor ``device`` on ``module`` stops sampling for ``down_s``
    seconds (loose cable, undervoltage), then resumes phase-aligned."""

    module: str = ""
    device: str = ""
    down_s: float = 0.0
    kind: ClassVar[str] = "sensor_flap"

    def problems(self) -> list[str]:
        problems = super().problems()
        if not self.module or not self.device:
            problems.append("sensor_flap needs module and device")
        if self.down_s <= 0:
            problems.append("sensor_flap needs down_s > 0")
        return problems


#: kind -> event class, for declarative (de)serialization.
EVENT_KINDS: dict[str, type[FaultEvent]] = {
    cls.kind: cls
    for cls in (
        NodeCrash,
        NodeRecover,
        NodeRestart,
        BrokerRestart,
        Partition,
        Heal,
        LinkDegrade,
        SensorFlap,
    )
}


def _event_from_dict(payload: dict[str, Any]) -> FaultEvent:
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = EVENT_KINDS.get(str(kind))
    if cls is None:
        raise ConfigurationError(
            f"unknown fault kind {kind!r} (known: {sorted(EVENT_KINDS)})"
        )
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(f"{kind}: unknown fields {sorted(unknown)}")
    for key in ("group_a", "group_b", "stations"):
        if isinstance(data.get(key), list):
            data[key] = tuple(data[key])
    if isinstance(data.get("burst"), dict):
        data["burst"] = GilbertElliottConfig(**data["burst"])
    return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A named, time-ordered sequence of fault events.

    Events are sorted by ``at`` on construction (stable, so same-time
    events keep their authored order — a ``Heal`` written after a
    ``Partition`` at the same instant applies after it).
    """

    name: str
    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at))
        object.__setattr__(self, "events", ordered)

    def diagnose(self) -> list[Diagnostic]:
        """Every problem with the plan, as the shared Diagnostic type.

        ``CHS100``: the plan itself is malformed; ``CHS101``: an event is.
        Same checks as :meth:`validate`, but reported exhaustively instead
        of raising on the first.
        """
        diagnostics: list[Diagnostic] = []
        if not self.name:
            diagnostics.append(
                Diagnostic(
                    rule="CHS100",
                    severity=Severity.ERROR,
                    message="fault plan needs a name",
                    where="<plan>",
                )
            )
        for index, event in enumerate(self.events):
            for problem in event.problems():
                diagnostics.append(
                    Diagnostic(
                        rule="CHS101",
                        severity=Severity.ERROR,
                        message=problem,
                        where=f"{self.name or '<plan>'}:events[{index}] "
                        f"{event.kind}",
                    )
                )
        return diagnostics

    def validate(self) -> "FaultPlan":
        if not self.name:
            raise ConfigurationError("fault plan needs a name")
        for event in self.events:
            event.validate()
        return self

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def horizon(self) -> float:
        """Virtual time at which the last fault effect has been applied
        (timed effects like :class:`LinkDegrade` included)."""
        end = 0.0
        for event in self.events:
            end = max(end, event.at)
            if isinstance(event, LinkDegrade):
                end = max(end, event.at + event.duration_s)
            elif isinstance(event, SensorFlap):
                end = max(end, event.at + event.down_s)
        return end

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        events = tuple(_event_from_dict(e) for e in payload.get("events", []))
        return cls(name=str(payload.get("name", "")), events=events).validate()
