"""End-to-end delivery invariants, checked against the trace after a run.

The checker consumes the same trace the benchmarks use and asserts the
properties that make "failover happens to work" into "failure behaviour
is specified and checked":

1. **No silent QoS 1 loss** — every QoS 1 message the broker forwarded is
   either delivered to the subscriber, given up after max retransmissions
   (traced), dropped with an explained reason (session ended, broker
   restarted — traced), or still awaiting a PUBACK at the end of the run.
   Anything else is a silent loss and fails the check.
2. **Effectively-once into ML** — QoS 1 redelivery means at-least-once
   transport; the ``dedup`` operator must restore effectively-once before
   records reach learning/judging, so no ``(operator, sample_id)`` pair
   may appear twice in ``ml.trained`` / ``ml.judged``.
3. **Bounded recovery** — for each configured :class:`RecoveryCheck`, the
   first matching signal event after each fault (or after its
   ``chaos.restored`` mark) must arrive within the bound.
4. **Directory convergence** — after the run settles, every alive
   module's directory must agree on the set of alive modules (requires a
   cluster handle).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.middleware import IFoTCluster

__all__ = ["RecoveryCheck", "CheckResult", "InvariantReport", "Invariants"]


@dataclass(frozen=True)
class RecoveryCheck:
    """Bound on time-to-signal after a fault.

    For every ``chaos.fault`` trace with ``kind == fault_kind`` (or the
    matching ``chaos.restored`` mark when ``measure_from='restored'``),
    the first later trace of ``signal_event`` — optionally filtered to
    sources containing ``source_contains`` — must occur within
    ``bound_s`` seconds.
    """

    fault_kind: str
    signal_event: str
    bound_s: float
    measure_from: str = "fault"  # "fault" | "restored"
    source_contains: str | None = None


@dataclass
class CheckResult:
    name: str
    ok: bool
    detail: str = ""


@dataclass
class InvariantReport:
    """Outcome of an invariant pass: per-check verdicts plus metrics."""

    checks: list[CheckResult] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failed(self) -> list[CheckResult]:
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        lines = ["invariants: " + ("PASS" if self.ok else "FAIL")]
        for check in self.checks:
            mark = "ok  " if check.ok else "FAIL"
            line = f"  [{mark}] {check.name}"
            if check.detail:
                line += f" — {check.detail}"
            lines.append(line)
        if self.metrics:
            lines.append("metrics:")
            for key in sorted(self.metrics):
                value = self.metrics[key]
                rendered = f"{value:.4f}".rstrip("0").rstrip(".")
                lines.append(f"  {key} = {rendered}")
        return "\n".join(lines)


def _preview(items: list[str], limit: int = 5) -> str:
    head = ", ".join(items[:limit])
    more = len(items) - limit
    return head + (f" (+{more} more)" if more > 0 else "")


class Invariants:
    """Checks the four end-to-end properties against a finished trace."""

    def __init__(
        self,
        tracer: Tracer,
        cluster: "IFoTCluster | None" = None,
    ) -> None:
        self.tracer = tracer
        self.cluster = cluster

    def check(
        self, recovery: "tuple[RecoveryCheck, ...] | list[RecoveryCheck]" = ()
    ) -> InvariantReport:
        report = InvariantReport()
        self._check_qos1_accounting(report)
        self._check_ml_dedup(report)
        self._check_cross_instance(report)
        for spec in recovery:
            self._check_recovery(report, spec)
        if self.cluster is not None:
            self._check_directory_convergence(report)
        return report

    # ------------------------------------------------------------------
    # 1. QoS 1 accounting
    # ------------------------------------------------------------------

    def _check_qos1_accounting(self, report: InvariantReport) -> None:
        forwarded: set[str] = set()
        for record in self.tracer.select(event="mqtt.broker.forward"):
            fwd_id = record.fields.get("fwd_id")
            if fwd_id is not None:
                forwarded.add(str(fwd_id))
        delivery_counts: Counter[str] = Counter(
            str(record["fwd_id"])
            for record in self.tracer.select(event="mqtt.client.deliver")
        )
        delivered = set(delivery_counts)
        given_up = {
            str(record.fields.get("fwd_id"))
            for record in self.tracer.select(event="mqtt.broker.give_up")
            if record.fields.get("fwd_id") is not None
        }
        dropped_explained: set[str] = set()
        for record in self.tracer.select(event="mqtt.broker.inflight_dropped"):
            dropped_explained.update(str(f) for f in record.fields.get("fwd_ids", ()))
        pending: set[str] = set()
        if self.cluster is not None:
            pending = set(self.cluster.broker.inflight_fwd_ids())

        unaccounted = sorted(
            forwarded - delivered - given_up - dropped_explained - pending
        )
        dup_deliveries = sum(
            count - 1 for count in delivery_counts.values() if count > 1
        )
        report.metrics.update(
            qos1_forwarded=float(len(forwarded)),
            qos1_delivered=float(len(delivered & forwarded)),
            qos1_given_up=float(len(given_up & forwarded)),
            qos1_dropped_explained=float(len(dropped_explained & forwarded)),
            qos1_pending=float(len(pending & forwarded)),
            qos1_unaccounted=float(len(unaccounted)),
            qos1_duplicate_deliveries=float(dup_deliveries),
        )
        if forwarded:
            report.metrics["qos1_explained_loss_rate"] = len(
                (given_up | dropped_explained) & forwarded
            ) / len(forwarded)
        report.checks.append(
            CheckResult(
                name="qos1-no-silent-loss",
                ok=not unaccounted,
                detail=(
                    f"{len(forwarded)} forwarded, all accounted"
                    if not unaccounted
                    else f"unaccounted fwd_ids: {_preview(unaccounted)}"
                ),
            )
        )

    # ------------------------------------------------------------------
    # 2. Effectively-once into ML
    # ------------------------------------------------------------------

    def _check_ml_dedup(self, report: InvariantReport) -> None:
        duplicates: list[str] = []
        total = 0
        for event in ("ml.trained", "ml.judged"):
            seen: Counter[tuple[str, str]] = Counter()
            for record in self.tracer.select(event=event):
                total += 1
                seen[(record.source, str(record["sample_id"]))] += 1
            duplicates.extend(
                f"{event}:{source}:{sample_id}(x{count})"
                for (source, sample_id), count in sorted(seen.items())
                if count > 1
            )
        report.metrics["ml_records"] = float(total)
        report.metrics["ml_duplicates"] = float(len(duplicates))
        report.checks.append(
            CheckResult(
                name="ml-effectively-once",
                ok=not duplicates,
                detail=(
                    f"{total} ML records, no duplicates"
                    if not duplicates
                    else f"duplicate ML inputs: {_preview(duplicates)}"
                ),
            )
        )

    # ------------------------------------------------------------------
    # 2b. Exactly-once per incarnation (across instances)
    # ------------------------------------------------------------------

    def _check_cross_instance(self, report: InvariantReport) -> None:
        """No sample may be processed by two *instances* of one sub-task.

        Check 2 keys on the full trace source (which embeds the hosting
        module), so it forbids per-instance duplicates but would tolerate
        the same sample being trained once on the pre-failover instance
        and again on its successor. Stripping the ``@module`` suffix
        closes that hole: across crash failover, restart reinstatement
        and live migration, each sample reaches the learner exactly once
        per sub-task — the handoff protocol's whole guarantee.
        """
        duplicates: list[str] = []
        for event in ("ml.trained", "ml.judged"):
            hosts: dict[tuple[str, str], set[str]] = {}
            for record in self.tracer.select(event=event):
                instance = record.source.rsplit("@", 1)[0]
                key = (instance, str(record["sample_id"]))
                hosts.setdefault(key, set()).add(record.source)
            # Same-source repeats are check 2's finding; this one fires
            # only when *distinct* instances both processed the sample.
            duplicates.extend(
                f"{event}:{instance}:{sample_id}({'+'.join(sorted(sources))})"
                for (instance, sample_id), sources in sorted(hosts.items())
                if len(sources) > 1
            )
        report.metrics["ml_cross_instance_duplicates"] = float(len(duplicates))
        report.checks.append(
            CheckResult(
                name="exactly-once-per-incarnation",
                ok=not duplicates,
                detail=(
                    "no sample processed by two instances of a sub-task"
                    if not duplicates
                    else f"cross-instance duplicates: {_preview(duplicates)}"
                ),
            )
        )

    # ------------------------------------------------------------------
    # 3. Bounded recovery
    # ------------------------------------------------------------------

    def _check_recovery(self, report: InvariantReport, spec: RecoveryCheck) -> None:
        mark_event = (
            "chaos.restored" if spec.measure_from == "restored" else "chaos.fault"
        )
        marks = [
            record
            for record in self.tracer.select(event=mark_event)
            if record.fields.get("kind") == spec.fault_kind
        ]
        signals = [
            record
            for record in self.tracer.select(event=spec.signal_event)
            if spec.source_contains is None
            or spec.source_contains in record.source
        ]
        name = f"recovery:{spec.fault_kind}->{spec.signal_event}"
        if not marks:
            report.checks.append(
                CheckResult(name=name, ok=False, detail="fault never injected")
            )
            return
        worst = 0.0
        failures: list[str] = []
        for mark in marks:
            after = [s for s in signals if s.time >= mark.time]
            if not after:
                failures.append(f"t={mark.time:.2f}: no signal")
                continue
            delta = after[0].time - mark.time
            worst = max(worst, delta)
            if delta > spec.bound_s:
                failures.append(
                    f"t={mark.time:.2f}: {delta:.2f}s > bound {spec.bound_s:.2f}s"
                )
        report.metrics[f"recovery_s:{spec.fault_kind}"] = worst
        report.checks.append(
            CheckResult(
                name=name,
                ok=not failures,
                detail=(
                    f"worst {worst:.2f}s <= bound {spec.bound_s:.2f}s"
                    if not failures
                    else _preview(failures)
                ),
            )
        )

    # ------------------------------------------------------------------
    # 4. Directory convergence
    # ------------------------------------------------------------------

    def _check_directory_convergence(self, report: InvariantReport) -> None:
        cluster = self.cluster
        assert cluster is not None
        agents: dict[str, Any] = {}
        for name, module in cluster.modules.items():
            agent = getattr(module, "agent", None)
            if agent is not None and module.node.alive:
                agents[name] = agent
        mgmt_name = cluster.management.module.name
        expected = set(agents) | {mgmt_name}
        mismatches: list[str] = []
        views = dict(agents)
        views[mgmt_name] = cluster.management.agent
        for name, agent in sorted(views.items()):
            got = {record.name for record in agent.directory.modules()}
            if got != expected:
                missing = sorted(expected - got)
                extra = sorted(got - expected)
                mismatches.append(
                    f"{name}: missing={missing or '-'} extra={extra or '-'}"
                )
        report.metrics["directory_views"] = float(len(views))
        report.checks.append(
            CheckResult(
                name="directory-convergence",
                ok=not mismatches,
                detail=(
                    f"{len(views)} views agree on {len(expected)} members"
                    if not mismatches
                    else _preview(mismatches)
                ),
            )
        )
