"""Schedules a :class:`~repro.chaos.plan.FaultPlan` onto a runtime.

The injector turns declarative fault events into concrete actions on the
simulation — ``Node.fail()``, ``Medium.partition()``, cluster-level
restarts — at their planned virtual times, and narrates what it does into
the trace:

* ``chaos.fault`` is emitted the moment a fault is applied;
* ``chaos.restored`` is emitted the moment the *fault condition* ends
  (a heal, a restart completing, a degradation window expiring). The
  invariant checker measures recovery time from these marks.

Injection is deterministic: the injector itself draws no randomness, and
everything it perturbs (loss, backoff, jitter) draws from seed-derived
streams, so the same plan on the same seed replays the same trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.chaos.plan import (
    BrokerRestart,
    FaultEvent,
    FaultPlan,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    NodeRestart,
    Partition,
    SensorFlap,
)
from repro.errors import ConfigurationError
from repro.net.medium import Medium
from repro.runtime.base import Runtime
from repro.runtime.node import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.middleware import IFoTCluster

__all__ = ["Injector"]

#: Trace source used for all injector events.
TRACE_SOURCE = "chaos"

#: Epilogue priority fault application runs at: after every normal event
#: at the fault instant *and* after the WLAN's canonical flush (priority
#: 0), so a fault at t never races the instant's regular traffic — frames
#: already offered at t are on the channel before the fault lands.
FAULT_EPILOGUE_PRIORITY = 1


class Injector:
    """Applies fault plans to a runtime (and optionally its cluster).

    Node-level faults (crash/recover) need only the runtime; restart
    orchestration (module/broker re-boot with software re-deploy) needs
    the ``cluster``; network faults need a ``medium`` (defaults to the
    runtime's WLAN when present).
    """

    def __init__(
        self,
        runtime: Runtime,
        cluster: "IFoTCluster | None" = None,
        medium: Medium | None = None,
    ) -> None:
        self.runtime = runtime
        self.cluster = cluster
        self.medium = medium if medium is not None else getattr(runtime, "wlan", None)
        self.faults_applied = 0
        self.plans_scheduled = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, plan: FaultPlan) -> None:
        """Arm every event of ``plan`` relative to virtual time zero."""
        plan.validate()
        now = self.runtime.now
        kernel = getattr(self.runtime, "kernel", None)
        for event in plan.events:
            if event.at < now:
                raise ConfigurationError(
                    f"{plan.name}: event {event.kind} at t={event.at} is in "
                    f"the past (now={now})"
                )
            if kernel is not None:
                # Apply as an end-of-instant epilogue: planned fault times
                # routinely coincide with timer multiples (keepalives,
                # heartbeats, sample ticks), and applying mid-instant would
                # make the outcome an accident of event ordering.
                kernel.schedule_epilogue(
                    self._apply,
                    event,
                    delay=event.at - now,
                    priority=FAULT_EPILOGUE_PRIORITY,
                )
            else:
                self.runtime.call_later(event.at - now, self._apply, event)
        self.plans_scheduled += 1

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        self.faults_applied += 1
        self._trace("chaos.fault", kind=event.kind, **event.describe())
        if isinstance(event, NodeCrash):
            self._node(event.node).fail()
        elif isinstance(event, NodeRecover):
            self._node(event.node).recover()
            self._restored("node_crash", node=event.node)
        elif isinstance(event, NodeRestart):
            self._restart_node(event.node)
            self._restored("node_restart", node=event.node)
        elif isinstance(event, BrokerRestart):
            self._require_cluster("broker_restart").restart_broker()
            self._restored("broker_restart")
        elif isinstance(event, Partition):
            self._require_medium().partition(event.group_a, event.group_b)
        elif isinstance(event, Heal):
            self._require_medium().heal(event.group_a, event.group_b)
            self._restored("partition", **event.describe())
        elif isinstance(event, LinkDegrade):
            self._require_medium().degrade_link(
                stations=frozenset(event.stations) if event.stations else None,
                bitrate_factor=event.bitrate_factor,
                burst=event.burst,
                duration_s=event.duration_s,
            )
            self.runtime.call_later(
                event.duration_s, self._restored, "link_degrade"
            )
        elif isinstance(event, SensorFlap):
            self._flap_sensor(event)
        else:  # pragma: no cover - exhaustive over EVENT_KINDS
            raise ConfigurationError(f"unhandled fault event {event!r}")

    def _restart_node(self, name: str) -> None:
        cluster = self.cluster
        if cluster is not None and name in cluster.modules:
            cluster.restart_module(name)
        elif cluster is not None and name == cluster.broker.node.name:
            cluster.restart_broker()
        else:
            self._node(name).restart()

    def _flap_sensor(self, event: SensorFlap) -> None:
        sensor = self._find_sensor(event.module, event.device)
        sensor.pause()
        def _resume() -> None:
            # Look the operator up again: the module may have restarted
            # (new operator instance) while the device was down.
            try:
                self._find_sensor(event.module, event.device).resume()
            except ConfigurationError:
                return  # sensor no longer deployed; nothing to resume
            self._restored("sensor_flap", module=event.module, device=event.device)

        self.runtime.call_later(event.down_s, _resume)

    def _find_sensor(self, module_name: str, device: str) -> Any:
        from repro.core.integration import SensorClass  # late: avoid cycle

        cluster = self._require_cluster("sensor_flap")
        module = cluster.module(module_name)
        for operator in module.operators.values():
            if isinstance(operator, SensorClass) and operator.device == device:
                return operator
        raise ConfigurationError(
            f"sensor_flap: no sensor operator for device {device!r} deployed "
            f"on {module_name!r}"
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _node(self, name: str) -> Node:
        nodes = getattr(self.runtime, "nodes", None)
        if nodes is None or name not in nodes:
            raise ConfigurationError(f"chaos: unknown node {name!r}")
        return nodes[name]

    def _require_cluster(self, kind: str) -> "IFoTCluster":
        if self.cluster is None:
            raise ConfigurationError(f"{kind} events need an IFoTCluster")
        return self.cluster

    def _require_medium(self) -> Medium:
        if self.medium is None:
            raise ConfigurationError("network fault events need a medium")
        return self.medium

    def _restored(self, kind: str, **fields: Any) -> None:
        self._trace("chaos.restored", kind=kind, **fields)

    def _trace(self, event: str, **fields: Any) -> None:
        self.runtime.trace(TRACE_SOURCE, event, **fields)
