"""Canned chaos scenarios: a small cluster, an app, and fault plans.

Each scenario pairs a :class:`~repro.chaos.plan.FaultPlan` with the
recovery bounds it must meet on a standard four-module cluster (two
sensor modules, two compute modules, broker, management). Timing
constants are shrunk so failure detection and recovery fit in a short
simulated window; the acceptance bound follows the repo's roadmap —
recovery from a module crash within ``2 x keep-alive + sweep period``.

Everything stochastic (loss, jitter, backoff) draws from seed-derived
streams, so ``scenario + seed`` fully determines the trace: running the
same scenario twice with the same seed yields byte-identical traces
(:func:`trace_digest` is the canonical fingerprint the determinism tests
compare).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.chaos.injector import Injector
from repro.chaos.invariants import InvariantReport, Invariants, RecoveryCheck
from repro.chaos.plan import (
    BrokerRestart,
    FaultPlan,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRestart,
    Partition,
    SensorFlap,
)
from repro.core.middleware import Application, IFoTCluster
from repro.core.recipe import Recipe, TaskSpec
from repro.errors import ConfigurationError
from repro.net.wlan import GilbertElliottConfig
from repro.runtime.sim import SimRuntime
from repro.sensors.devices import FixedPayloadModel
from repro.sim.trace import Tracer

__all__ = [
    "KEEPALIVE_S",
    "SWEEP_S",
    "HEARTBEAT_S",
    "MODULE_RECOVERY_BOUND_S",
    "ChaosScenario",
    "ScenarioResult",
    "SCENARIOS",
    "build_chaos_cluster",
    "build_chaos_recipe",
    "get_scenario",
    "run_scenario",
    "trace_digest",
]

#: MQTT keep-alive for every module session (watchdog declares the session
#: lost after 2x this much inbound silence).
KEEPALIVE_S = 2.0
#: Broker session sweep period (dead sessions expire within ~1.5 keep-alives,
#: checked at this granularity).
SWEEP_S = 2.0
#: Management/module announcement heartbeat.
HEARTBEAT_S = 2.0
#: Broker-side QoS 1 retransmission interval.
RETRY_S = 0.5
#: Acceptance bound: a module crash must be detected and its subtasks
#: re-placed within two keep-alive periods plus one sweep period.
MODULE_RECOVERY_BOUND_S = 2.0 * KEEPALIVE_S + SWEEP_S

SENSOR_MODULES = ("module-a", "module-b")
COMPUTE_MODULES = ("module-c", "module-d")
BROKER_NODE = "broker-node"
APP_NAME = "chaos-app"
RATE_HZ = 2.0


def build_chaos_cluster(
    seed: int = 0, prepare: Callable[[SimRuntime], None] | None = None
) -> tuple[SimRuntime, IFoTCluster]:
    """The standard chaos testbed: 2 sensor + 2 compute modules.

    Auto-failover and auto-reconnect are both on — chaos scenarios test
    exactly those paths. Two compute modules (capability ``compute``)
    give failover somewhere to move the analysis subtasks.

    ``prepare`` runs on the bare runtime before any component exists —
    the schedule sanitizer installs its kernel monitor and tie-break
    perturbation there, so even the t=0 connect storm is covered.
    """
    runtime = SimRuntime(seed=seed)
    if prepare is not None:
        prepare(runtime)
    cluster = IFoTCluster(
        runtime,
        broker_node_name=BROKER_NODE,
        heartbeat_s=HEARTBEAT_S,
        auto_failover=True,
        client_keepalive_s=KEEPALIVE_S,
        auto_reconnect=True,
        broker_params={
            "sweep_interval_s": SWEEP_S,
            "retry_interval_s": RETRY_S,
            "max_retries": 8,
        },
    )
    for name in SENSOR_MODULES:
        module = cluster.add_module(name)
        module.attach_sensor("sample", FixedPayloadModel(values=3))
    for name in COMPUTE_MODULES:
        cluster.add_module(name, extra_capabilities={"compute"})
    cluster.settle(3.0)
    return runtime, cluster


def build_chaos_recipe() -> Recipe:
    """Sensor flows -> dedup -> online training, everything at QoS 1.

    The ``dedup`` stage sits between the lossy sensor uplinks and the
    learner: QoS 1 redelivery makes the raw flows at-least-once, and the
    invariant checker asserts dedup restores effectively-once before any
    record is trained on. Analysis subtasks require capability
    ``compute`` (not pinned), so failover can move them between the two
    compute modules.
    """
    tasks = [
        TaskSpec(
            f"sense-{name[-1]}",
            "sensor",
            outputs=[f"raw-{name[-1]}"],
            params={"device": "sample", "rate_hz": RATE_HZ, "qos": 1},
            pin_to=name,
            capabilities=["sensor:sample"],
        )
        for name in SENSOR_MODULES
    ]
    raw_streams = [f"raw-{name[-1]}" for name in SENSOR_MODULES]
    tasks += [
        TaskSpec(
            "dedup",
            "dedup",
            inputs=list(raw_streams),
            outputs=["clean"],
            params={"qos": 1},
            capabilities=["compute"],
        ),
        TaskSpec(
            "train",
            "train",
            inputs=["clean"],
            params={
                "model": "classifier",
                "label_key": "label",
                "emit_info": False,
                "qos": 1,
            },
            capabilities=["compute"],
            # Sensing-to-trained budget *including* one module failover:
            # the lint context for this recipe adds
            # MODULE_RECOVERY_BOUND_S as a disruption allowance, so the
            # static bound lands near 6.7 s against this 10 s budget.
            deadline_ms=10000,
        ),
    ]
    return Recipe(APP_NAME, tasks)


@dataclass(frozen=True)
class ChaosScenario:
    """A fault plan plus the invariant bounds it must satisfy."""

    name: str
    description: str
    duration_s: float
    build_plan: Callable[[IFoTCluster, Application], FaultPlan]
    recovery: tuple[RecoveryCheck, ...] = ()


@dataclass
class ScenarioResult:
    name: str
    seed: int
    duration_s: float
    report: InvariantReport
    trace_digest: str
    trace_records: int
    faults_applied: int
    #: The run's full tracer (span trees included when observed).
    tracer: Tracer | None = None
    #: The run's profiler when run with ``profile=True`` (``repro.prof``).
    profiler: object | None = None
    #: The run's SLO engine when run with ``slo=True`` (``repro.obs.slo``).
    slo_engine: object | None = None


def trace_digest(tracer: Tracer) -> str:
    """Canonical SHA-256 fingerprint of a full trace.

    Two runs are considered byte-identical iff their digests match; the
    rendering (repr of time, source, event, sorted fields) is stable
    across processes because it contains no ids, hashes or wall-clock.
    """
    digest = hashlib.sha256()
    for record in tracer:
        line = (
            f"{record.time!r}|{record.source}|{record.event}"
            f"|{sorted(record.fields.items())!r}\n"
        )
        digest.update(line.encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Plans (built against the live cluster so they can target the actual
# placement the assignment strategy chose).
# ----------------------------------------------------------------------


def _partition_heal_plan(cluster: IFoTCluster, app: Application) -> FaultPlan:
    return FaultPlan(
        "partition-heal",
        (
            Partition(at=10.0, group_a=("module-a",), group_b=(BROKER_NODE,)),
            Heal(at=16.0, group_a=("module-a",), group_b=(BROKER_NODE,)),
        ),
    )


def _train_host(app: Application) -> str:
    assert app.assignment is not None
    return app.assignment.module_for("train")


def _module_crash_plan(cluster: IFoTCluster, app: Application) -> FaultPlan:
    return FaultPlan(
        "module-crash", (NodeCrash(at=10.0, node=_train_host(app)),)
    )


def _node_restart_plan(cluster: IFoTCluster, app: Application) -> FaultPlan:
    return FaultPlan(
        "node-restart", (NodeRestart(at=10.0, node=_train_host(app)),)
    )


def _failover_plan(cluster: IFoTCluster, app: Application) -> FaultPlan:
    # Crash the learner's host, then power-cycle it (amnesia restart, new
    # incarnation) 8 s later: exercises detect -> fail over -> rejoin ->
    # live fail-back migration end to end on one host.
    host = _train_host(app)
    return FaultPlan(
        "failover",
        (NodeCrash(at=10.0, node=host), NodeRestart(at=18.0, node=host)),
    )


def _broker_restart_plan(cluster: IFoTCluster, app: Application) -> FaultPlan:
    return FaultPlan("broker-restart", (BrokerRestart(at=12.0),))


def _bursty_wlan_plan(cluster: IFoTCluster, app: Application) -> FaultPlan:
    # Degrade only the sensor uplinks: the dedup stage downstream turns
    # the resulting QoS 1 redeliveries back into effectively-once input.
    return FaultPlan(
        "bursty-wlan",
        (
            LinkDegrade(
                at=8.0,
                duration_s=10.0,
                stations=SENSOR_MODULES,
                bitrate_factor=0.5,
                burst=GilbertElliottConfig(
                    p_enter=0.05, p_exit=0.25, loss_bad=0.9
                ),
            ),
        ),
    )


def _sensor_flap_plan(cluster: IFoTCluster, app: Application) -> FaultPlan:
    return FaultPlan(
        "sensor-flap",
        (SensorFlap(at=10.0, module="module-a", device="sample", down_s=6.0),),
    )


SCENARIOS: dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="partition_heal",
            description=(
                "module-a loses layer-2 reachability to the broker for 6 s; "
                "after the heal its session re-establishes and replays its "
                "subscriptions"
            ),
            duration_s=30.0,
            build_plan=_partition_heal_plan,
            recovery=(
                RecoveryCheck(
                    fault_kind="partition",
                    signal_event="mqtt.client.resubscribed",
                    bound_s=MODULE_RECOVERY_BOUND_S,
                    measure_from="restored",
                    source_contains="module-a",
                ),
            ),
        ),
        ChaosScenario(
            name="module_crash_failover",
            description=(
                "the module hosting the learner crash-stops and stays down; "
                "management must detect the death and re-place the analysis "
                "subtasks on the surviving compute module"
            ),
            duration_s=30.0,
            build_plan=_module_crash_plan,
            recovery=(
                RecoveryCheck(
                    fault_kind="node_crash",
                    signal_event="mgmt.failover_moved",
                    bound_s=MODULE_RECOVERY_BOUND_S,
                ),
            ),
        ),
        ChaosScenario(
            name="node_restart_rejoin",
            description=(
                "the module hosting the learner power-cycles (amnesia "
                "restart, new incarnation); the directory must observe a "
                "leave-then-join and management must re-place its subtasks"
            ),
            duration_s=30.0,
            build_plan=_node_restart_plan,
            recovery=(
                RecoveryCheck(
                    fault_kind="node_restart",
                    signal_event="mgmt.failover_moved",
                    bound_s=MODULE_RECOVERY_BOUND_S,
                ),
            ),
        ),
        ChaosScenario(
            name="failover",
            description=(
                "the module hosting the learner crash-stops; management "
                "must detect it and re-place the analysis subtasks, then "
                "the host power-cycles back and the subtasks migrate home "
                "live (pause/drain/transfer/resume) with zero QoS 1 loss "
                "and no sample processed by two instances"
            ),
            duration_s=34.0,
            build_plan=_failover_plan,
            recovery=(
                RecoveryCheck(
                    fault_kind="node_crash",
                    signal_event="mgmt.failover_moved",
                    bound_s=MODULE_RECOVERY_BOUND_S,
                ),
                RecoveryCheck(
                    fault_kind="node_restart",
                    signal_event="migrate.done",
                    bound_s=MODULE_RECOVERY_BOUND_S,
                    measure_from="restored",
                ),
            ),
        ),
        ChaosScenario(
            name="broker_restart",
            description=(
                "the broker node power-cycles, losing every session and "
                "subscription; all clients must detect the silence, back "
                "off, reconnect, and replay their subscriptions"
            ),
            duration_s=34.0,
            build_plan=_broker_restart_plan,
            # Detection is watchdog-quantised (up to 2x keep-alive of
            # silence + one watchdog period) and reconnect adds one
            # backoff step, so the bound is wider than the crash bound.
            recovery=(
                RecoveryCheck(
                    fault_kind="broker_restart",
                    signal_event="mqtt.client.resubscribed",
                    bound_s=8.0,
                ),
            ),
        ),
        ChaosScenario(
            name="bursty_wlan",
            description=(
                "10 s of Gilbert-Elliott bursty loss and halved bitrate on "
                "the sensor uplinks; QoS 1 must retransmit through the "
                "bursts and dedup must keep training effectively-once"
            ),
            duration_s=30.0,
            build_plan=_bursty_wlan_plan,
            recovery=(
                RecoveryCheck(
                    fault_kind="link_degrade",
                    signal_event="ml.trained",
                    bound_s=MODULE_RECOVERY_BOUND_S,
                    measure_from="restored",
                ),
            ),
        ),
        ChaosScenario(
            name="sensor_flap",
            description=(
                "module-a's sensor device stops producing for 6 s, then "
                "resumes phase-aligned; sampling must restart within one "
                "period of the restore"
            ),
            duration_s=30.0,
            build_plan=_sensor_flap_plan,
            recovery=(
                RecoveryCheck(
                    fault_kind="sensor_flap",
                    signal_event="sensor.sample",
                    bound_s=2.0,
                    measure_from="restored",
                    source_contains="sense-a@module-a",
                ),
            ),
        ),
    )
}


def get_scenario(name: str) -> ChaosScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown chaos scenario {name!r} (known: {sorted(SCENARIOS)})"
        ) from None


def run_scenario(
    scenario: ChaosScenario | str,
    seed: int = 0,
    observe: bool = False,
    prepare: Callable[[SimRuntime], None] | None = None,
    profile: bool = False,
    slo: bool = False,
) -> ScenarioResult:
    """Build the testbed, inject the scenario's plan, check invariants.

    ``observe=True`` enables flow tracing + metrics (``repro.obs``) before
    the workload starts, so the resulting trace carries span trees through
    the injected faults — the golden-trace tests fingerprint exactly that.
    ``prepare`` is forwarded to :func:`build_chaos_cluster` (sanitizer
    hook installation). ``profile=True`` attaches the sim-time profiler
    so fault-window utilization shows up in the result's profiler.
    ``slo=True`` installs the online SLO engine (``repro.obs.slo``) on
    the recipe's declared deadlines before the workload starts; it
    implies ``observe`` (the engine consumes the span stream) and leaves
    the engine on ``result.slo_engine``.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    runtime, cluster = build_chaos_cluster(seed, prepare=prepare)
    if observe or slo:
        from repro.obs import enable_observability

        enable_observability(runtime)
    profiler = None
    if profile:
        from repro.prof import enable_profiling

        profiler = enable_profiling(runtime)
    recipe = build_chaos_recipe()
    if slo:
        from repro.obs.slo import enable_slo

        enable_slo(runtime, recipe=recipe, cluster=cluster)
    app = cluster.submit(recipe)
    cluster.settle(2.0)
    plan = scenario.build_plan(cluster, app).validate()
    injector = Injector(runtime, cluster=cluster)
    injector.schedule(plan)
    runtime.run(until=scenario.duration_s)
    report = Invariants(runtime.tracer, cluster).check(
        recovery=scenario.recovery
    )
    return ScenarioResult(
        name=scenario.name,
        seed=seed,
        duration_s=scenario.duration_s,
        report=report,
        trace_digest=trace_digest(runtime.tracer),
        trace_records=len(runtime.tracer),
        faults_applied=injector.faults_applied,
        tracer=runtime.tracer,
        profiler=profiler,
        slo_engine=runtime.slo,
    )
