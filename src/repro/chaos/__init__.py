"""Seed-deterministic fault injection for the IFoT middleware.

``repro.chaos`` turns "failover happens to work" into "failure behaviour
is specified and checked": a declarative :class:`FaultPlan` of typed
fault events, an :class:`Injector` that applies them to a simulated
cluster at exact virtual times, and an :class:`Invariants` checker that
asserts end-to-end delivery properties over the resulting trace. Because
every stochastic element draws from seed-derived streams, *plan + seed*
fully determines a run.
"""

from repro.chaos.injector import Injector
from repro.chaos.invariants import (
    CheckResult,
    InvariantReport,
    Invariants,
    RecoveryCheck,
)
from repro.chaos.plan import (
    BrokerRestart,
    FaultEvent,
    FaultPlan,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    NodeRestart,
    Partition,
    SensorFlap,
)
from repro.chaos.scenarios import (
    MODULE_RECOVERY_BOUND_S,
    SCENARIOS,
    ChaosScenario,
    ScenarioResult,
    build_chaos_cluster,
    build_chaos_recipe,
    get_scenario,
    run_scenario,
    trace_digest,
)

__all__ = [
    "BrokerRestart",
    "ChaosScenario",
    "CheckResult",
    "FaultEvent",
    "FaultPlan",
    "Heal",
    "Injector",
    "InvariantReport",
    "Invariants",
    "LinkDegrade",
    "MODULE_RECOVERY_BOUND_S",
    "NodeCrash",
    "NodeRecover",
    "NodeRestart",
    "Partition",
    "RecoveryCheck",
    "SCENARIOS",
    "ScenarioResult",
    "SensorFlap",
    "build_chaos_cluster",
    "build_chaos_recipe",
    "get_scenario",
    "run_scenario",
    "trace_digest",
]
