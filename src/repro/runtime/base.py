"""The runtime contract shared by simulated and real execution."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Protocol

from repro.sim.trace import Tracer
from repro.util.ids import IdGenerator
from repro.util.rng import RngRegistry

__all__ = ["Runtime", "TimerHandle"]


class TimerHandle(Protocol):
    """Anything with a ``cancel()`` method; returned by timer calls."""

    def cancel(self) -> None: ...


class Runtime(ABC):
    """Clock, timers, identifiers, randomness and tracing for components.

    Components never import ``time``, ``random`` or ``asyncio`` directly;
    everything temporal or stochastic flows through the runtime so that a
    simulation run is exactly reproducible and a real run uses the wall
    clock, with identical component code.
    """

    def __init__(self, seed: int = 0, tracer: Tracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.rng = RngRegistry(seed)
        self.ids = IdGenerator()
        # Observability hook (repro.obs.ObsState). None means disabled, and
        # every instrumentation site guards on that — the hot path cost of
        # tracing being off is one attribute load + identity check.
        self.obs: Any = None
        # Schedule-sanitizer hook (repro.san.SimSan), gated exactly like
        # ``obs``: tracked state cells (repro.runtime.state) probe it on
        # every access, and None short-circuits the probe.
        self.san: Any = None
        # Sim-time profiler hook (repro.prof.Profiler), same gating: the
        # CPU/WLAN/kernel hook sites charge resource grants to it, and
        # None keeps the hot path at one attribute load per site.
        self.prof: Any = None
        # Online SLO engine hook (repro.obs.slo.SloEngine), same gating.
        # The engine is a pure consumer of tracer taps and timers; None
        # means no SLO evaluation and zero added events.
        self.slo: Any = None

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock epoch)."""

    @abstractmethod
    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        """Invoke ``callback(*args)`` after ``delay`` seconds."""

    @abstractmethod
    def call_soon(self, callback: Callable[..., None], *args: Any) -> TimerHandle:
        """Invoke ``callback(*args)`` as soon as possible, preserving order."""

    def trace(self, source: str, event: str, **fields: Any) -> None:
        """Emit a trace record stamped with the current time."""
        self.tracer.emit(self.now, source, event, **fields)
