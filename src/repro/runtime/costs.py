"""Operation cost models for simulated CPUs.

In simulation every piece of middleware work charges virtual CPU time
through a :class:`CostModel` before its effect becomes visible. Costs have
three parts:

* ``base_s`` — fixed per-operation service time;
* ``per_byte_s`` — size-dependent term (serialization, feature hashing);
* ``warmup_extra_s`` over the first ``warmup_ops`` invocations — models
  cold-start effects (model allocation, lazy imports). This is what makes
  the *max* latency at low rates several times the average in the paper's
  tables: the very first samples hit an unwarmed analysis process.

The Pi-class constants fitted against the paper live in
``repro.bench.calibration``; this module only defines the mechanism.
Unknown operations cost zero, so components can charge named ops freely and
only the calibrated ones consume time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validate import require_non_negative

__all__ = ["OpCost", "CostModel", "NULL_COST_MODEL"]


@dataclass(frozen=True)
class OpCost:
    """Cost description for one named operation."""

    base_s: float = 0.0
    per_byte_s: float = 0.0
    warmup_extra_s: float = 0.0
    warmup_ops: int = 0

    def __post_init__(self) -> None:
        require_non_negative(self.base_s, "base_s")
        require_non_negative(self.per_byte_s, "per_byte_s")
        require_non_negative(self.warmup_extra_s, "warmup_extra_s")
        require_non_negative(self.warmup_ops, "warmup_ops")

    def cost(self, nbytes: int, invocation_index: int) -> float:
        """Service time for invocation number ``invocation_index`` (0-based)."""
        total = self.base_s + self.per_byte_s * nbytes
        if invocation_index < self.warmup_ops:
            total += self.warmup_extra_s
        return total


@dataclass
class CostModel:
    """Mapping from operation names to :class:`OpCost`, with a global scale.

    ``scale`` multiplies every cost — handy for modelling heterogeneous
    hardware ("this node is a Pi Zero, 3x slower") without redefining every
    operation.
    """

    ops: dict[str, OpCost] = field(default_factory=dict)
    scale: float = 1.0

    def define(self, op: str, cost: OpCost) -> None:
        self.ops[op] = cost

    def cost(self, op: str, nbytes: int = 0, invocation_index: int = 0) -> float:
        entry = self.ops.get(op)
        if entry is None:
            return 0.0
        return entry.cost(nbytes, invocation_index) * self.scale

    def scaled(self, factor: float) -> "CostModel":
        """A view of this model with costs multiplied by ``factor``."""
        return CostModel(ops=dict(self.ops), scale=self.scale * factor)


#: Cost model that charges nothing — used by the real (asyncio) runtime,
#: where actual computation takes actual time.
NULL_COST_MODEL = CostModel()
