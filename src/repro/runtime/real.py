"""Real runtime: wall-clock execution over asyncio.

Used by the runnable examples. Components are identical to the simulated
case; only the clock, the timers and the transport differ. Computation here
is *actual* computation, so the cost model is the null model.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.net.inproc import InprocNetwork
from repro.runtime.base import Runtime, TimerHandle
from repro.runtime.costs import NULL_COST_MODEL
from repro.runtime.node import Node
from repro.sim.trace import Tracer

__all__ = ["AsyncioRuntime"]


class AsyncioRuntime(Runtime):
    """Wall-clock runtime on a private asyncio event loop.

    The runtime owns its loop: construct the runtime, add nodes and
    components (timers may be armed before the loop runs), then call
    :meth:`run_for`. ``now`` reports seconds since construction so traces
    from both runtimes share an epoch at zero.
    """

    def __init__(
        self,
        seed: int = 0,
        network_latency_s: float = 0.0,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(seed=seed, tracer=tracer)
        self.loop = asyncio.new_event_loop()
        self._epoch = self.loop.time()
        self.network = InprocNetwork(loop=self.loop, latency_s=network_latency_s)
        self.nodes: dict[str, Node] = {}
        self._metrics_server: Any = None

    # ------------------------------------------------------------------
    # Runtime contract
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.loop.time() - self._epoch

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        return self.loop.call_later(delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> TimerHandle:
        return self.loop.call_soon(callback, *args)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_node(self, name: str) -> Node:
        """Attach a new in-process device."""
        if name in self.nodes:
            raise ConfigurationError(f"node {name!r} already exists")
        interface = self.network.attach(name)
        node = Node(
            runtime=self,
            name=name,
            interface=interface,
            cpu=None,
            cost_model=NULL_COST_MODEL,
        )
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_for(self, duration_s: float) -> None:
        """Run the loop for ``duration_s`` wall-clock seconds, then return."""

        async def _sleep() -> None:
            await asyncio.sleep(duration_s)

        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(_sleep())
        finally:
            asyncio.set_event_loop(None)

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0) -> Any:
        """Bind the telemetry scrape endpoint (``repro.obs.export``).

        The socket binds synchronously — the loop is idle outside
        :meth:`run_for` — so the ephemeral port is known immediately;
        requests are served while the loop runs. Returns the
        :class:`~repro.obs.export.MetricsServer`.
        """
        if self._metrics_server is None:
            from repro.obs.export import MetricsServer

            self._metrics_server = MetricsServer(self, host=host, port=port).start()
        return self._metrics_server

    def close(self) -> None:
        """Dispose of the event loop. The runtime is unusable afterwards."""
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None
        if not self.loop.is_closed():
            self.loop.close()

    def __enter__(self) -> "AsyncioRuntime":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
