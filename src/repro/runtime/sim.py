"""Simulated runtime: virtual clock, WLAN medium, Pi-class CPUs."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.net.wlan import WlanConfig, WlanMedium
from repro.runtime.base import Runtime, TimerHandle
from repro.runtime.costs import CostModel, NULL_COST_MODEL
from repro.runtime.node import Node
from repro.sim.kernel import SimKernel
from repro.sim.resources import CpuResource
from repro.sim.trace import Tracer

__all__ = ["SimRuntime"]


class SimRuntime(Runtime):
    """Deterministic runtime over a discrete-event kernel.

    Owns the kernel, one shared WLAN medium, and the set of nodes. A typical
    experiment builds a runtime, adds nodes, instantiates middleware classes
    on them, and calls :meth:`run`.

    >>> rt = SimRuntime(seed=1)
    >>> node = rt.add_node("pi-a")
    >>> ticks = []
    >>> _ = rt.call_later(1.5, lambda: ticks.append(rt.now))
    >>> rt.run(until=10.0)
    >>> ticks
    [1.5]
    """

    def __init__(
        self,
        seed: int = 0,
        wlan_config: WlanConfig | None = None,
        cost_model: CostModel = NULL_COST_MODEL,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(seed=seed, tracer=tracer)
        self.kernel = SimKernel()
        self.cost_model = cost_model
        self.wlan = WlanMedium(
            self.kernel,
            config=wlan_config,
            # A forked sub-registry gives the medium independent named
            # streams (jitter / loss / burst), all derived from this
            # runtime's seed: identical seeds replay identical runs,
            # chaos schedules included.
            rng=self.rng.fork("wlan"),
            tracer=self.tracer,
            runtime=self,
        )
        self.nodes: dict[str, Node] = {}

    # ------------------------------------------------------------------
    # Runtime contract
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.kernel.now

    def call_later(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        return self.kernel.schedule(delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> TimerHandle:
        return self.kernel.call_soon(callback, *args)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_node(
        self,
        name: str,
        cpu_speed: float = 1.0,
        cpu_cores: int = 1,
        cost_model: CostModel | None = None,
        queue_limit: int | None = None,
    ) -> Node:
        """Attach a new device to the WLAN and give it a CPU queue.

        ``cpu_speed`` scales the shared cost model (2.0 = twice as fast as
        the Pi-class reference); ``cost_model`` overrides it entirely.
        ``queue_limit`` bounds the CPU's waiting queue (overload drops).
        """
        if name in self.nodes:
            raise ConfigurationError(f"node {name!r} already exists")
        interface = self.wlan.attach(name)
        cpu = CpuResource(
            self.kernel,
            name=f"{name}.cpu",
            servers=cpu_cores,
            speed=cpu_speed,
            queue_limit=queue_limit,
            runtime=self,
        )
        node = Node(
            runtime=self,
            name=name,
            interface=interface,
            cpu=cpu,
            cost_model=cost_model if cost_model is not None else self.cost_model,
        )
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Advance virtual time (see :meth:`repro.sim.SimKernel.run`)."""
        self.kernel.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        self.kernel.run_until_idle(max_events=max_events)
