"""A node: one device hosting middleware classes.

A :class:`Node` bundles what a component needs from "the machine it runs
on": a network attachment (:class:`~repro.net.medium.NetworkInterface`), an
optional CPU queue (simulation only), and a cost model. ``execute`` is the
single choke point through which all simulated compute flows.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

from repro.net.address import Address
from repro.net.medium import NetworkInterface, Receiver
from repro.runtime.base import Runtime
from repro.runtime.costs import CostModel, NULL_COST_MODEL
from repro.runtime.state import tracked_state
from repro.sim.resources import CpuResource

__all__ = ["Node"]


class Node:
    """One device (neuron module, sensor node, management laptop...).

    Parameters
    ----------
    runtime:
        The runtime this node lives on.
    name:
        Unique station name; also the node's address stem.
    interface:
        Network attachment created by the owning runtime.
    cpu:
        FIFO CPU queue in simulation; ``None`` under the real runtime
        (real computation occupies the event loop directly).
    cost_model:
        Operation costs charged by :meth:`execute`.
    """

    def __init__(
        self,
        runtime: Runtime,
        name: str,
        interface: NetworkInterface,
        cpu: CpuResource | None = None,
        cost_model: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.interface = interface
        self.cpu = cpu
        self.cost_model = cost_model
        self._op_counts: dict[str, int] = defaultdict(int)
        # Liveness and incarnation are tracked state (repro.runtime.state):
        # fault injection writes them while delivery/compute paths read
        # them, and the schedule sanitizer checks those accesses for
        # schedule-order races.
        self._alive = tracked_state(runtime, f"node.{name}", "alive", True)
        self._incarnation = tracked_state(runtime, f"node.{name}", "incarnation", 0)
        #: Components currently hosted here (self-registered by
        #: :class:`~repro.runtime.component.Component`).
        self.components: list[Any] = []
        #: Callbacks invoked after :meth:`restart` brings the node back.
        self.restart_hooks: list[Callable[["Node"], None]] = []

    @property
    def alive(self) -> bool:
        """Whether the node is up (reads are visible to the sanitizer)."""
        return self._alive.value

    @alive.setter
    def alive(self, up: bool) -> None:
        self._alive.value = up

    @property
    def incarnation(self) -> int:
        """Bumped by :meth:`restart`; queued CPU work from an earlier
        incarnation is discarded when it completes."""
        return self._incarnation.value

    @incarnation.setter
    def incarnation(self, value: int) -> None:
        self._incarnation.value = value

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------

    def execute(
        self,
        op: str,
        fn: Callable[..., None],
        *args: Any,
        nbytes: int = 0,
    ) -> None:
        """Run ``fn(*args)`` after charging the cost of operation ``op``.

        In simulation the job is queued on this node's CPU, so concurrent
        work serializes and queueing delay accumulates under load. Under the
        real runtime the function runs immediately. Dead nodes drop work
        silently (used by failure-injection tests).
        """
        if not self.alive:
            return
        index = self._op_counts[op]
        self._op_counts[op] = index + 1
        cost = self.cost_model.cost(op, nbytes=nbytes, invocation_index=index)
        if self.cpu is not None:
            # The op name becomes the job label, which is how the
            # profiler attributes this node's busy time per operation.
            incarnation = self.incarnation
            self.cpu.submit(
                cost, lambda: self._guarded(fn, args, incarnation), label=op
            )
        else:
            self._guarded(fn, args, self.incarnation)

    def _guarded(
        self, fn: Callable[..., None], args: tuple[Any, ...], incarnation: int
    ) -> None:
        # Work queued before a restart belongs to a dead incarnation: its
        # closures reference components that no longer exist.
        if self.alive and incarnation == self.incarnation:
            fn(*args)

    def op_count(self, op: str) -> int:
        """How many times ``op`` has been charged on this node."""
        return self._op_counts[op]

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------

    def address(self, service: str = "default") -> Address:
        return Address(self.name, service)

    def bind(self, service: str, receiver: Receiver) -> None:
        """Register ``receiver`` for datagrams addressed to ``service``."""
        self.interface.bind(service, self._guard_receiver(receiver))

    def _guard_receiver(self, receiver: Receiver) -> Receiver:
        def guarded(source: Address, payload: bytes) -> None:
            if self.alive:
                receiver(source, payload)

        return guarded

    def unbind(self, service: str) -> None:
        self.interface.unbind(service)

    def send(self, source_service: str, destination: Address, payload: bytes) -> None:
        """Transmit a datagram from this node."""
        if not self.alive:
            return
        self.interface.send(source_service, destination, payload)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Crash-stop the node: it stops sending, receiving and computing."""
        self.alive = False

    def recover(self) -> None:
        """Blip recovery: bring a failed node back **with its state intact**.

        Guarantees:

        * all component state (queues, sessions, windows) survives — the
          node behaves as if it merely lost power to its radio and CPU for
          the failure window;
        * timers armed before the failure fire again (their callbacks were
          guarded, not cancelled), so periodic behaviour resumes without
          re-registration;
        * in-flight CPU work queued before the failure completes normally
          (same incarnation).

        Models a brief freeze (GC pause, transient brown-out). For a crash
        that loses RAM contents, use :meth:`restart`.
        """
        self.alive = True

    def restart(self) -> None:
        """Amnesia restart: crash the node and boot a **fresh incarnation**.

        Guarantees:

        * every component hosted on the node is stopped (timers cancelled,
          services unbound via ``on_stop``) — no timer armed before the
          restart ever fires afterwards;
        * CPU work queued by the previous incarnation is discarded when it
          surfaces, never executed;
        * per-operation cost counters reset (warm-up costs are charged
          again, as on a real reboot);
        * the node comes back ``alive`` with no components; callers rebuild
          the software stack, then :attr:`restart_hooks` fire so
          orchestration layers (e.g. a cluster) can re-announce/re-deploy.

        Models a power-cycled device whose RAM is lost but whose identity
        (station name, address) persists.
        """
        self.alive = False  # no goodbye packets escape mid-teardown
        # LIFO: dependents (agents, operators) stop before what they were
        # built on (MQTT client), mirroring construction order.
        for component in reversed(list(self.components)):
            component.stop()
        self.components.clear()
        self._op_counts.clear()
        self.incarnation += 1
        self.alive = True
        self.runtime.trace(self.name, "node.restart", incarnation=self.incarnation)
        for hook in list(self.restart_hooks):
            hook(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "failed"
        return f"Node({self.name!r}, {state})"
