"""A node: one device hosting middleware classes.

A :class:`Node` bundles what a component needs from "the machine it runs
on": a network attachment (:class:`~repro.net.medium.NetworkInterface`), an
optional CPU queue (simulation only), and a cost model. ``execute`` is the
single choke point through which all simulated compute flows.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

from repro.net.address import Address
from repro.net.medium import NetworkInterface, Receiver
from repro.runtime.base import Runtime
from repro.runtime.costs import CostModel, NULL_COST_MODEL
from repro.sim.resources import CpuResource

__all__ = ["Node"]


class Node:
    """One device (neuron module, sensor node, management laptop...).

    Parameters
    ----------
    runtime:
        The runtime this node lives on.
    name:
        Unique station name; also the node's address stem.
    interface:
        Network attachment created by the owning runtime.
    cpu:
        FIFO CPU queue in simulation; ``None`` under the real runtime
        (real computation occupies the event loop directly).
    cost_model:
        Operation costs charged by :meth:`execute`.
    """

    def __init__(
        self,
        runtime: Runtime,
        name: str,
        interface: NetworkInterface,
        cpu: CpuResource | None = None,
        cost_model: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self.interface = interface
        self.cpu = cpu
        self.cost_model = cost_model
        self._op_counts: dict[str, int] = defaultdict(int)
        self.alive = True

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------

    def execute(
        self,
        op: str,
        fn: Callable[..., None],
        *args: Any,
        nbytes: int = 0,
    ) -> None:
        """Run ``fn(*args)`` after charging the cost of operation ``op``.

        In simulation the job is queued on this node's CPU, so concurrent
        work serializes and queueing delay accumulates under load. Under the
        real runtime the function runs immediately. Dead nodes drop work
        silently (used by failure-injection tests).
        """
        if not self.alive:
            return
        index = self._op_counts[op]
        self._op_counts[op] = index + 1
        cost = self.cost_model.cost(op, nbytes=nbytes, invocation_index=index)
        if self.cpu is not None:
            self.cpu.execute(cost, self._guarded, fn, args)
        else:
            self._guarded(fn, args)

    def _guarded(self, fn: Callable[..., None], args: tuple[Any, ...]) -> None:
        if self.alive:
            fn(*args)

    def op_count(self, op: str) -> int:
        """How many times ``op`` has been charged on this node."""
        return self._op_counts[op]

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------

    def address(self, service: str = "default") -> Address:
        return Address(self.name, service)

    def bind(self, service: str, receiver: Receiver) -> None:
        """Register ``receiver`` for datagrams addressed to ``service``."""
        self.interface.bind(service, self._guard_receiver(receiver))

    def _guard_receiver(self, receiver: Receiver) -> Receiver:
        def guarded(source: Address, payload: bytes) -> None:
            if self.alive:
                receiver(source, payload)

        return guarded

    def unbind(self, service: str) -> None:
        self.interface.unbind(service)

    def send(self, source_service: str, destination: Address, payload: bytes) -> None:
        """Transmit a datagram from this node."""
        if not self.alive:
            return
        self.interface.send(source_service, destination, payload)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def fail(self) -> None:
        """Crash-stop the node: it stops sending, receiving and computing."""
        self.alive = False

    def recover(self) -> None:
        """Bring a failed node back (state held by components persists —
        callers wanting amnesia recreate components)."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "failed"
        return f"Node({self.name!r}, {state})"
