"""Runtime abstraction: one component model, two execution modes.

Every middleware class (publisher, broker, learner, sensor ...) is written
against :class:`~repro.runtime.base.Runtime` (clock + timers + trace) and
:class:`~repro.runtime.node.Node` (CPU + network attachment). Binding the
same classes to a :class:`~repro.runtime.sim.SimRuntime` reproduces the
paper's testbed deterministically; binding them to an
:class:`~repro.runtime.real.AsyncioRuntime` runs them for real under
wall-clock time (used by the examples).
"""

from repro.runtime.base import Runtime, TimerHandle
from repro.runtime.costs import CostModel, NULL_COST_MODEL, OpCost
from repro.runtime.node import Node
from repro.runtime.real import AsyncioRuntime
from repro.runtime.sim import SimRuntime

__all__ = [
    "AsyncioRuntime",
    "CostModel",
    "NULL_COST_MODEL",
    "Node",
    "OpCost",
    "Runtime",
    "SimRuntime",
    "TimerHandle",
]
