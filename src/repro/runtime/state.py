"""Tracked state cells: the schedule sanitizer's view of mutable state.

The dynamic sanitizer (:mod:`repro.san`) detects schedule-order races by
observing which *state cells* each simulation event reads and writes.  A
cell is a named, declared unit of mutable state — a node's liveness flag,
the broker's retained-message store, one operator instance's model — and
this module provides the lightweight wrapper components use to declare
them:

* :class:`StateCell` — for scalar state, the cell *holds* the value and
  records a read/write on every access through :attr:`StateCell.value`;
* for structured state (dicts, trees, queues) the cell is a pure tag: the
  owner keeps its native container and calls :meth:`StateCell.note_read` /
  :meth:`StateCell.note_write` at its access choke points.

Cost when the sanitizer is off is one attribute load plus an identity
check per access (``runtime.san is None``), mirroring how ``runtime.obs``
gates observability.

Every cell remembers the source location of its :func:`tracked_state`
declaration.  Sanitizer diagnostics anchor there, and a
``# repro: san-ok[SAN001]`` comment on that line (parsed with the same
tokenizer machinery as the lint suppressions, see
:mod:`repro.lint.suppress`) declares races on the cell benign/commutative.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.base import Runtime

__all__ = ["StateCell", "tracked_state"]


class StateCell:
    """One declared unit of mutable simulation state.

    ``key`` is the globally unique ``owner:name`` identity used in race
    reports; ``site`` is the ``(filename, line)`` of the declaration.
    """

    __slots__ = ("_runtime", "key", "site", "_value")

    def __init__(
        self,
        runtime: "Runtime",
        key: str,
        site: tuple[str, int],
        value: Any = None,
    ) -> None:
        self._runtime = runtime
        self.key = key
        self.site = site
        self._value = value

    # -- scalar access (the cell holds the value) ----------------------

    @property
    def value(self) -> Any:
        san = self._runtime.san
        if san is not None:
            san.on_access(self, "read")
        return self._value

    @value.setter
    def value(self, new: Any) -> None:
        san = self._runtime.san
        if san is not None:
            san.on_access(self, "write")
        self._value = new

    def peek(self) -> Any:
        """Read the value without recording an access (for reporting and
        invariant code that is not part of the simulated schedule)."""
        return self._value

    # -- tag-style access (the owner holds the structure) --------------

    def note_read(self) -> None:
        san = self._runtime.san
        if san is not None:
            san.on_access(self, "read")

    def note_write(self) -> None:
        san = self._runtime.san
        if san is not None:
            san.on_access(self, "write")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateCell({self.key!r})"


def tracked_state(
    runtime: "Runtime", owner: str, name: str, value: Any = None
) -> StateCell:
    """Declare a tracked state cell ``owner:name`` holding ``value``.

    The call site (file and line) becomes the cell's anchor for sanitizer
    diagnostics and ``# repro: san-ok[...]`` annotations, so declare each
    cell on its own line.
    """
    frame = sys._getframe(1)
    site = (frame.f_code.co_filename, frame.f_lineno)
    return StateCell(runtime, f"{owner}:{name}", site, value)
