"""Component base class.

Every long-lived piece of software hosted on a node — MQTT broker, MQTT
client, all the middleware classes of Fig. 4 — derives from
:class:`Component`: a named, stoppable bundle of timers and trace helpers.
Components are strictly non-blocking; all waiting happens through timers or
inbound messages.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime.base import Runtime, TimerHandle
from repro.runtime.node import Node

__all__ = ["Component", "PeriodicTimer"]


class PeriodicTimer:
    """Drift-free periodic callback.

    The k-th firing (k = 1, 2, ...) is scheduled at ``epoch + k * interval``
    (not ``now + interval`` each time), so a 20 Hz sensor emits exactly 20
    samples per virtual second regardless of how long each callback takes
    to schedule. The first firing happens one interval after the epoch
    (= creation time + ``start_delay``).
    """

    def __init__(
        self,
        runtime: Runtime,
        interval: float,
        callback: Callable[[], None],
        start_delay: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._runtime = runtime
        self.interval = interval
        self._callback = callback
        self._epoch = runtime.now + start_delay
        self._count = 0
        self._handle: TimerHandle | None = None
        self.cancelled = False
        self._arm()

    def _arm(self) -> None:
        next_time = self._epoch + (self._count + 1) * self.interval
        delay = max(0.0, next_time - self._runtime.now)
        self._handle = self._runtime.call_later(delay, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self._count += 1
        self._arm()  # re-arm first so callbacks may cancel the timer
        self._callback()

    @property
    def fire_count(self) -> int:
        return self._count

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class Component:
    """A named, stoppable, timer-owning unit of behaviour on a node."""

    def __init__(self, node: Node, name: str) -> None:
        self.node = node
        self.runtime: Runtime = node.runtime
        self.name = name
        self._timers: list[TimerHandle] = []
        self._periodic: list[PeriodicTimer] = []
        self.stopped = False
        node.components.append(self)
        if self.runtime.obs is not None:
            self.runtime.obs.register_node(node)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> TimerHandle:
        """One-shot timer owned by this component."""
        handle = self.runtime.call_later(delay, self._guard(callback), *args)
        self._timers.append(handle)  # repro: san-ok[SAN020] append-only registration
        return handle

    def every(
        self, interval: float, callback: Callable[[], None], start_delay: float = 0.0
    ) -> PeriodicTimer:
        """Drift-free periodic timer owned by this component."""
        timer = PeriodicTimer(
            self.runtime, interval, self._guard(callback), start_delay=start_delay
        )
        self._periodic.append(timer)  # repro: san-ok[SAN020] append-only registration
        return timer

    def _guard(self, callback: Callable[..., None]) -> Callable[..., None]:
        def guarded(*args: Any) -> None:
            if not self.stopped and self.node.alive:
                callback(*args)

        return guarded

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def trace(self, event: str, **fields: Any) -> None:
        self.runtime.trace(self.name, event, **fields)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Cancel all timers and mark the component stopped. Idempotent."""
        if self.stopped:
            return
        self.stopped = True  # repro: san-ok[SAN020] monotonic latch, guarded re-entry
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()  # repro: san-ok[SAN020] idempotent teardown
        for timer in self._periodic:
            timer.cancel()
        self._periodic.clear()  # repro: san-ok[SAN020] idempotent teardown
        if self in self.node.components:
            self.node.components.remove(self)  # repro: san-ok[SAN020] idempotent teardown
        self.on_stop()

    def on_stop(self) -> None:
        """Subclass hook: release subscriptions, flush state..."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stopped" if self.stopped else "running"
        return f"{type(self).__name__}({self.name!r} on {self.node.name!r}, {state})"
