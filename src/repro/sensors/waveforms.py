"""Composable waveform primitives for synthetic sensors."""

from __future__ import annotations

import math
import random

__all__ = ["sine_wave", "square_wave", "gaussian_noise", "random_walk", "diurnal"]


def sine_wave(
    t: float, period: float, amplitude: float = 1.0, phase: float = 0.0, offset: float = 0.0
) -> float:
    """Sinusoid with the given period (seconds)."""
    return offset + amplitude * math.sin(2.0 * math.pi * (t / period) + phase)


def square_wave(t: float, period: float, high: float = 1.0, low: float = 0.0, duty: float = 0.5) -> float:
    """Square wave: ``high`` for the first ``duty`` fraction of each period."""
    position = (t % period) / period
    return high if position < duty else low


def gaussian_noise(rng: random.Random, sigma: float = 1.0, mean: float = 0.0) -> float:
    """One Gaussian draw."""
    return rng.gauss(mean, sigma)


def diurnal(t: float, day_length: float = 86_400.0, peak: float = 1.0) -> float:
    """Day-shaped curve in [0, peak]: 0 at 'midnight', peak at 'noon'.

    Useful for illuminance and foot-traffic models; ``t`` wraps modulo the
    day length.
    """
    phase = (t % day_length) / day_length
    return peak * max(0.0, math.sin(math.pi * phase)) ** 2


class random_walk:  # noqa: N801 - factory object used like a function
    """Stateful bounded random walk: call with (rng) to get the next value.

    >>> walk = random_walk(start=5.0, step=0.1, low=0.0, high=10.0)
    >>> value = walk(random.Random(1))
    """

    def __init__(
        self, start: float = 0.0, step: float = 1.0, low: float = -math.inf, high: float = math.inf
    ) -> None:
        if low > high:
            raise ValueError("low must not exceed high")
        self.value = min(max(start, low), high)
        self.step = step
        self.low = low
        self.high = high

    def __call__(self, rng: random.Random) -> float:
        self.value += rng.uniform(-self.step, self.step)
        self.value = min(max(self.value, self.low), self.high)
        return self.value
