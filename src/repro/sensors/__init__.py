"""Synthetic sensor and actuator device models.

The paper's testbed feeds the middleware 32-byte samples from real sensor
nodes; its motivating applications (§III-A) use accelerometers, illuminance
/ sound / motion sensors, and crowd sensing. This package provides
deterministic synthetic equivalents with ground-truth event injection, so
examples and tests can assert that the analysis layer actually detects what
the generators planted.

Sensor models are pure: ``sample(t, rng) -> dict`` — the middleware's
SensorClass owns timing and transport. Actuator models hold device state
and record every command for assertions.
"""

from repro.sensors.base import ActuatorModel, EventSchedule, EventWindow, SensorModel
from repro.sensors.devices import (
    AccelerometerModel,
    CameraModel,
    AlertActuator,
    CrowdSensorModel,
    DimmerActuator,
    EnvironmentSensorModel,
    FixedPayloadModel,
    HvacActuator,
    SwitchActuator,
)
from repro.sensors.waveforms import gaussian_noise, random_walk, sine_wave, square_wave

__all__ = [
    "AccelerometerModel",
    "ActuatorModel",
    "AlertActuator",
    "CameraModel",
    "CrowdSensorModel",
    "DimmerActuator",
    "EnvironmentSensorModel",
    "EventSchedule",
    "EventWindow",
    "FixedPayloadModel",
    "HvacActuator",
    "SensorModel",
    "SwitchActuator",
    "gaussian_noise",
    "random_walk",
    "sine_wave",
    "square_wave",
]
