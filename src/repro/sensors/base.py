"""Device model contracts and ground-truth event scheduling."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.util.validate import require_non_negative, require_positive

__all__ = ["SensorModel", "ActuatorModel", "EventWindow", "EventSchedule"]


class SensorModel(ABC):
    """A source of readings. Stateless in time: readings are a function of
    the query time plus the model's own evolving internal state."""

    @abstractmethod
    def sample(self, t: float, rng: random.Random) -> dict[str, Any]:
        """One reading at time ``t`` (a flat dict of numbers/strings)."""

    def channel_keys(self) -> tuple[str, ...] | None:
        """The datum keys every reading carries, or ``None`` if unknown.

        The static payload checker (:mod:`repro.lint.dataflow`) seeds each
        sensor task's output schema from this, so a recipe reading a key
        the device never emits is caught before deployment. Models whose
        payload is not statically known return ``None`` (open schema).
        """
        return None

    def sample_batch(
        self, t0: float, dt: float, n: int, rng: random.Random
    ) -> list[dict[str, Any]]:
        """``n`` readings at ``t0, t0+dt, ...`` — one cadence window.

        Exactly equivalent to calling :meth:`sample` in a loop (same
        readings, same rng draw order); overridden where a model can hoist
        per-window work. The live pipeline samples tick-by-tick because a
        sensor may be paused between ticks (which must *not* consume rng
        draws); batch generation is for sweeps, calibration, and tests,
        where the window is known up front.
        """
        return [self.sample(t0 + i * dt, rng) for i in range(n)]


class ActuatorModel(ABC):
    """A device that accepts commands and holds observable state."""

    def __init__(self) -> None:
        self.command_log: list[tuple[float, dict[str, Any]]] = []

    def actuate(self, t: float, command: dict[str, Any]) -> dict[str, Any]:
        """Apply ``command`` at time ``t``; returns the new state."""
        self.command_log.append((t, dict(command)))
        return self._apply(t, command)

    @abstractmethod
    def _apply(self, t: float, command: dict[str, Any]) -> dict[str, Any]:
        """Device-specific command handling."""

    @property
    @abstractmethod
    def state(self) -> dict[str, Any]:
        """Current observable device state."""


@dataclass(frozen=True)
class EventWindow:
    """One planted ground-truth event: [start, start+duration) of ``kind``."""

    start: float
    duration: float
    kind: str
    intensity: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative(self.start, "start")
        require_positive(self.duration, "duration")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end


class EventSchedule:
    """An ordered set of ground-truth events queried by sensor models.

    Examples plant events here ("fall at t=12 for 1.5 s"), sensors distort
    their waveforms while an event is active, and tests assert that the
    analysis pipeline raised the right alerts — closing the loop between
    generation and detection.
    """

    def __init__(self, events: list[EventWindow] | None = None) -> None:
        self._events: list[EventWindow] = sorted(
            events or [], key=lambda e: e.start
        )

    def add(self, start: float, duration: float, kind: str, intensity: float = 1.0) -> EventWindow:
        event = EventWindow(start, duration, kind, intensity)
        self._events.append(event)
        self._events.sort(key=lambda e: e.start)
        return event

    def active(self, t: float, kind: str | None = None) -> list[EventWindow]:
        """Events active at ``t`` (optionally filtered by kind)."""
        return [
            e
            for e in self._events
            if e.active_at(t) and (kind is None or e.kind == kind)
        ]

    def is_active(self, t: float, kind: str) -> bool:
        return bool(self.active(t, kind))

    def all_events(self, kind: str | None = None) -> list[EventWindow]:
        return [e for e in self._events if kind is None or e.kind == kind]

    def __len__(self) -> int:
        return len(self._events)
