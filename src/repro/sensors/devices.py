"""Concrete synthetic devices for the paper's three applications."""

from __future__ import annotations

import random
from typing import Any

from repro.errors import ConfigurationError
from repro.sensors.base import ActuatorModel, EventSchedule, SensorModel
from repro.sensors.waveforms import diurnal, random_walk, sine_wave
from repro.util.validate import require_in_range, require_positive

__all__ = [
    "CameraModel",
    "FixedPayloadModel",
    "AccelerometerModel",
    "EnvironmentSensorModel",
    "CrowdSensorModel",
    "SwitchActuator",
    "DimmerActuator",
    "HvacActuator",
    "AlertActuator",
]


class FixedPayloadModel(SensorModel):
    """The paper's experiment sensor: fixed-size opaque samples.

    §V-B: "Sample sensor data (32 byte) are generated on the three neuron
    modules." We emit ``values`` numeric channels whose encoded size lands
    near the requested byte budget; the content is a deterministic pseudo
    signal so training actually converges on something.
    """

    def __init__(self, values: int = 3, label_period_s: float = 2.0) -> None:
        self.values = require_positive(values, "values")
        self.label_period_s = require_positive(label_period_s, "label_period_s")
        # Hot path: per-channel keys and periods are invariant, so compute
        # them once here instead of re-deriving f-strings and products on
        # every sample. Same float expressions as before — readings are
        # bit-identical.
        self._channels: tuple[tuple[str, float], ...] = tuple(
            (f"v{i}", self.label_period_s * (i + 1)) for i in range(self.values)
        )
        self._half_period = self.label_period_s / 2

    def channel_keys(self) -> tuple[str, ...]:
        return tuple(key for key, _period in self._channels) + ("label",)

    def sample(self, t: float, rng: random.Random) -> dict[str, Any]:
        reading: dict[str, Any] = {}
        gauss = rng.gauss
        for key, period in self._channels:
            reading[key] = round(
                sine_wave(t, period=period, amplitude=1.0) + gauss(0.0, 0.05),
                4,
            )
        # Ground-truth phase label so the experiment's Train class learns a
        # non-degenerate concept (which half-period we are in).
        reading["label"] = "hi" if (t % self.label_period_s) < self._half_period else "lo"
        return reading

    def sample_batch(
        self, t0: float, dt: float, n: int, rng: random.Random
    ) -> list[dict[str, Any]]:
        channels = self._channels
        period_s = self.label_period_s
        half = self._half_period
        gauss = rng.gauss
        out: list[dict[str, Any]] = []
        for i in range(n):
            t = t0 + i * dt
            reading: dict[str, Any] = {}
            for key, period in channels:
                reading[key] = round(
                    sine_wave(t, period=period, amplitude=1.0) + gauss(0.0, 0.05),
                    4,
                )
            reading["label"] = "hi" if (t % period_s) < half else "lo"
            out.append(reading)
        return out


class AccelerometerModel(SensorModel):
    """3-axis accelerometer worn by a monitored person (§III-A-1).

    Baseline: gravity on z plus small sway. During a planted ``fall``
    event the magnitude spikes (impact) then goes near-zero-variance
    (lying still) — the signature fall detectors key on.
    """

    def __init__(self, events: EventSchedule, sway_sigma: float = 0.08) -> None:
        self.events = events
        self.sway_sigma = sway_sigma

    def channel_keys(self) -> tuple[str, ...]:
        return ("ax", "ay", "az")

    def sample(self, t: float, rng: random.Random) -> dict[str, Any]:
        fall = self.events.active(t, "fall")
        if fall:
            event = fall[0]
            into_event = t - event.start
            if into_event < 0.3:  # impact spike
                scale = 4.0 * event.intensity
                return {
                    "ax": rng.gauss(0.0, scale),
                    "ay": rng.gauss(0.0, scale),
                    "az": rng.gauss(-2.0 * event.intensity, scale),
                }
            # post-impact stillness on the floor
            return {
                "ax": rng.gauss(0.9, 0.01),
                "ay": rng.gauss(0.0, 0.01),
                "az": rng.gauss(0.1, 0.01),
            }
        return {
            "ax": rng.gauss(0.0, self.sway_sigma),
            "ay": rng.gauss(0.0, self.sway_sigma),
            "az": rng.gauss(1.0, self.sway_sigma),
        }


class EnvironmentSensorModel(SensorModel):
    """Illuminance + sound + motion for home-appliance control (§III-A-2).

    ``occupied`` events raise sound and motion; illuminance follows a
    compressed diurnal cycle (``day_length_s``) so examples see day and
    night without simulating 24 h.
    """

    def __init__(self, events: EventSchedule, day_length_s: float = 240.0) -> None:
        self.events = events
        self.day_length_s = require_positive(day_length_s, "day_length_s")
        self._sound_floor = random_walk(start=32.0, step=0.5, low=28.0, high=40.0)

    def channel_keys(self) -> tuple[str, ...]:
        return ("illuminance_lux", "sound_db", "motion", "state")

    def sample(self, t: float, rng: random.Random) -> dict[str, Any]:
        occupied = self.events.is_active(t, "occupied")
        daylight = diurnal(t, day_length=self.day_length_s, peak=800.0)
        illuminance = daylight + rng.gauss(0.0, 5.0)
        sound = self._sound_floor(rng)
        motion = 0.0
        if occupied:
            sound += rng.uniform(15.0, 30.0)
            motion = 1.0 if rng.random() < 0.8 else 0.0
        return {
            "illuminance_lux": max(0.0, illuminance),
            "sound_db": sound,
            "motion": motion,
            # Ground-truth room state. Applications use it as the training
            # label during a calibration phase, then rely on the judge.
            "state": "occupied" if occupied else "empty",
        }


class CrowdSensorModel(SensorModel):
    """Pedestrian flow / crowdedness at a PoI (§III-A-3).

    Baseline foot traffic follows a diurnal curve scaled by the PoI's
    ``popularity``; planted ``surge`` events multiply it. ``scenic_level``
    is a slowly varying property of the PoI (e.g. cherry blossom state,
    after the paper's SakuraSensor citation).
    """

    def __init__(
        self,
        events: EventSchedule,
        popularity: float = 1.0,
        scenic_level: float = 0.5,
        day_length_s: float = 600.0,
    ) -> None:
        self.events = events
        self.popularity = require_positive(popularity, "popularity")
        self.scenic_level = require_in_range(scenic_level, 0.0, 1.0, "scenic_level")
        self.day_length_s = require_positive(day_length_s, "day_length_s")

    def channel_keys(self) -> tuple[str, ...]:
        return ("people_count", "flow_speed_mps", "scenic_level")

    def sample(self, t: float, rng: random.Random) -> dict[str, Any]:
        base = 4.0 + 20.0 * self.popularity * diurnal(t, self.day_length_s)
        for surge in self.events.active(t, "surge"):
            base *= 1.0 + 2.0 * surge.intensity
        count = max(0, int(rng.gauss(base, base * 0.15 + 0.5)))
        flow_speed = max(0.1, 1.4 - 0.012 * count + rng.gauss(0.0, 0.05))
        scenic = min(1.0, max(0.0, self.scenic_level + rng.gauss(0.0, 0.03)))
        return {
            "people_count": count,
            "flow_speed_mps": round(flow_speed, 3),
            "scenic_level": round(scenic, 3),
        }


class CameraModel(SensorModel):
    """A camera summarized to scene features (paper Fig. 5's "Camera
    monitoring" node; §III-A-3 also uses car-mounted cameras).

    Raw frames never cross the middleware — an embedded vision stage is
    assumed on-device, emitting ``motion_level`` (0..1), ``person_count``
    and ``luminance``. During a planted ``fall`` event the person stops
    registering upright motion: motion collapses while the person count
    stays, the signature "person on the floor" scene.
    """

    def __init__(self, events: EventSchedule, occupants: int = 1) -> None:
        self.events = events
        self.occupants = max(0, int(occupants))

    def channel_keys(self) -> tuple[str, ...]:
        return ("motion_level", "person_count", "luminance")

    def sample(self, t: float, rng: random.Random) -> dict[str, Any]:
        falling = self.events.is_active(t, "fall")
        if self.occupants == 0:
            motion = max(0.0, rng.gauss(0.02, 0.01))
            count = 0
        elif falling:
            motion = max(0.0, rng.gauss(0.05, 0.02))  # lying still
            count = self.occupants
        else:
            motion = min(1.0, max(0.0, rng.gauss(0.35, 0.1)))
            count = self.occupants if rng.random() > 0.05 else self.occupants - 1
        return {
            "motion_level": round(motion, 4),
            "person_count": count,
            "luminance": round(max(0.0, rng.gauss(0.5, 0.05)), 4),
        }


# --------------------------------------------------------------------------
# Actuators
# --------------------------------------------------------------------------


class SwitchActuator(ActuatorModel):
    """Binary on/off device (ceiling light relay, alarm siren...)."""

    def __init__(self, initially_on: bool = False) -> None:
        super().__init__()
        self.on = initially_on
        self.toggle_count = 0

    def _apply(self, t: float, command: dict[str, Any]) -> dict[str, Any]:
        if "on" not in command:
            raise ConfigurationError(f"switch expects {{'on': bool}}, got {command!r}")
        desired = bool(command["on"])
        if desired != self.on:
            self.toggle_count += 1
        self.on = desired
        return self.state

    @property
    def state(self) -> dict[str, Any]:
        return {"on": self.on}


class DimmerActuator(ActuatorModel):
    """Continuous 0..1 output (dimmable light)."""

    def __init__(self, level: float = 0.0) -> None:
        super().__init__()
        self.level = require_in_range(level, 0.0, 1.0, "level")

    def _apply(self, t: float, command: dict[str, Any]) -> dict[str, Any]:
        if "level" not in command:
            raise ConfigurationError(f"dimmer expects {{'level': float}}, got {command!r}")
        self.level = min(1.0, max(0.0, float(command["level"])))
        return self.state

    @property
    def state(self) -> dict[str, Any]:
        return {"level": self.level}


class HvacActuator(ActuatorModel):
    """Air conditioner with a setpoint and a mode."""

    MODES = ("off", "cool", "heat", "fan")

    def __init__(self, setpoint_c: float = 24.0) -> None:
        super().__init__()
        self.setpoint_c = setpoint_c
        self.mode = "off"

    def _apply(self, t: float, command: dict[str, Any]) -> dict[str, Any]:
        if "mode" in command:
            mode = str(command["mode"])
            if mode not in self.MODES:
                raise ConfigurationError(f"unknown HVAC mode {mode!r}")
            self.mode = mode
        if "setpoint_c" in command:
            self.setpoint_c = float(command["setpoint_c"])
        return self.state

    @property
    def state(self) -> dict[str, Any]:
        return {"mode": self.mode, "setpoint_c": self.setpoint_c}


class AlertActuator(ActuatorModel):
    """Notification sink (the elderly-monitoring 'alert messaging' node of
    Fig. 5). Records every alert for test assertions."""

    def __init__(self) -> None:
        super().__init__()
        self.alerts: list[tuple[float, str, dict[str, Any]]] = []

    def _apply(self, t: float, command: dict[str, Any]) -> dict[str, Any]:
        message = str(command.get("message", ""))
        self.alerts.append((t, message, dict(command)))
        return self.state

    @property
    def state(self) -> dict[str, Any]:
        return {"alert_count": len(self.alerts)}
