"""Exception hierarchy for the IFoT middleware reproduction.

Every error raised by this package derives from :class:`IFoTError`, so
applications embedding the middleware can catch one base class. Sub-hierarchies
mirror the package layout: simulation, networking, MQTT, machine learning and
the middleware core each have their own branch.
"""

from __future__ import annotations


class IFoTError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(IFoTError):
    """A component or scenario was configured with invalid parameters."""


class SerializationError(IFoTError):
    """A payload could not be encoded or decoded."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimulationError(IFoTError):
    """Base class for discrete-event kernel errors."""


class ClockError(SimulationError):
    """Virtual time was manipulated illegally (e.g. scheduled in the past)."""


class ProcessError(SimulationError):
    """A simulation process failed or was used after termination."""


# --------------------------------------------------------------------------
# Network substrate
# --------------------------------------------------------------------------


class NetworkError(IFoTError):
    """Base class for network substrate errors."""


class AddressError(NetworkError):
    """An endpoint address was malformed or unknown."""


class LinkDownError(NetworkError):
    """A frame was sent over a medium or link that is not operational."""


class TransportError(NetworkError):
    """The transport layer rejected an operation."""


# --------------------------------------------------------------------------
# MQTT substrate
# --------------------------------------------------------------------------


class MQTTError(IFoTError):
    """Base class for the MQTT-style pub/sub substrate."""


class TopicError(MQTTError):
    """A topic name or filter was syntactically invalid."""


class ProtocolError(MQTTError):
    """A packet violated the broker/client protocol state machine."""


class NotConnectedError(MQTTError):
    """A client operation required an active session."""


# --------------------------------------------------------------------------
# Online machine learning substrate
# --------------------------------------------------------------------------


class MLError(IFoTError):
    """Base class for the online machine learning substrate."""


class FeatureError(MLError):
    """A datum could not be converted into a feature vector."""


class ModelError(MLError):
    """A model was queried or updated in an invalid state."""


class MixError(MLError):
    """The distributed MIX protocol failed (e.g. incompatible models)."""


# --------------------------------------------------------------------------
# Middleware core
# --------------------------------------------------------------------------


class MiddlewareError(IFoTError):
    """Base class for IFoT middleware core errors."""


class RecipeError(MiddlewareError):
    """A recipe was malformed (unknown operator, cycle, dangling edge...)."""


class AssignmentError(MiddlewareError):
    """Sub-tasks could not be assigned to the available neuron modules."""


class DeploymentError(MiddlewareError):
    """The management node failed to deploy or wire a class instance."""


class DiscoveryError(MiddlewareError):
    """Stream search / dynamic membership operation failed."""


class StaticCheckError(MiddlewareError):
    """Static analysis rejected an artifact before it could deploy or run.

    Carries the full list of :class:`repro.util.validate.Diagnostic`
    findings in ``diagnostics`` (duck-typed here to keep this module
    dependency-free); the message embeds their rendered forms.
    """

    def __init__(self, summary: str, diagnostics: "tuple | list" = ()) -> None:
        self.diagnostics = list(diagnostics)
        lines = [summary]
        lines += ["  " + diag.format() for diag in self.diagnostics]
        super().__init__("\n".join(lines))
