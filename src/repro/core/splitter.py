"""RecipeSplit: dividing a recipe into parallel-executable sub-tasks.

Paper §IV-C-1: "Recipe split class reads the recipe of [an] application and
divides it into tasks that can be executed in parallel."

Two axes of parallelism are extracted:

* **graph parallelism** — tasks at the same topological depth have no
  dependency and run concurrently on different modules (``stage_index``);
* **data parallelism** — a task with ``parallelism = n`` becomes ``n``
  shard sub-tasks; each shard consumes the same input streams but
  processes only the records whose sample id hashes to its shard (the
  shard filter is applied by the operator host, so shard placement is
  free to differ per shard).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.recipe import Recipe, TaskSpec

__all__ = ["SubTask", "RecipeSplit", "shard_of"]


def shard_of(sample_id: str, shard_count: int) -> int:
    """Stable shard index for a sample id (process-independent hash)."""
    if shard_count <= 1:
        return 0
    digest = hashlib.sha256(sample_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % shard_count


@dataclass
class SubTask:
    """One deployable unit: a (possibly sharded) task instance."""

    subtask_id: str
    task_id: str
    operator: str
    inputs: list[str]
    outputs: list[str]
    params: dict[str, Any]
    capabilities: list[str] = field(default_factory=list)
    pin_to: str | None = None
    stage_index: int = 0
    shard_index: int = 0
    shard_count: int = 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (travels in deploy commands)."""
        return {
            "subtask_id": self.subtask_id,
            "task_id": self.task_id,
            "operator": self.operator,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "params": dict(self.params),
            "capabilities": list(self.capabilities),
            "pin_to": self.pin_to,
            "stage_index": self.stage_index,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SubTask":
        return cls(
            subtask_id=data["subtask_id"],
            task_id=data["task_id"],
            operator=data["operator"],
            inputs=list(data["inputs"]),
            outputs=list(data["outputs"]),
            params=dict(data["params"]),
            capabilities=list(data.get("capabilities", [])),
            pin_to=data.get("pin_to"),
            stage_index=int(data.get("stage_index", 0)),
            shard_index=int(data.get("shard_index", 0)),
            shard_count=int(data.get("shard_count", 1)),
        )


class RecipeSplit:
    """Splits recipes into sub-tasks (the paper's *Recipe split class*)."""

    def split(self, recipe: Recipe) -> list[SubTask]:
        """All sub-tasks of ``recipe``, in (stage, task id, shard) order."""
        stages = recipe.stages()
        subtasks: list[SubTask] = []
        for stage_index, stage in enumerate(stages):
            for task_id in stage:
                task = recipe.tasks[task_id]
                subtasks.extend(self._split_task(task, stage_index))
        return subtasks

    def _split_task(self, task: TaskSpec, stage_index: int) -> list[SubTask]:
        if task.parallelism == 1:
            return [
                SubTask(
                    subtask_id=task.task_id,
                    task_id=task.task_id,
                    operator=task.operator,
                    inputs=list(task.inputs),
                    outputs=list(task.outputs),
                    params=dict(task.params),
                    capabilities=list(task.capabilities),
                    pin_to=task.pin_to,
                    stage_index=stage_index,
                )
            ]
        return [
            SubTask(
                subtask_id=f"{task.task_id}#{shard}",
                task_id=task.task_id,
                operator=task.operator,
                inputs=list(task.inputs),
                outputs=list(task.outputs),
                params=dict(task.params),
                capabilities=list(task.capabilities),
                pin_to=task.pin_to,
                stage_index=stage_index,
                shard_index=shard,
                shard_count=task.parallelism,
            )
            for shard in range(task.parallelism)
        ]

    def parallel_groups(self, subtasks: list[SubTask]) -> list[list[SubTask]]:
        """Group sub-tasks by stage: each group is mutually independent."""
        if not subtasks:
            return []
        stage_count = max(s.stage_index for s in subtasks) + 1
        groups: list[list[SubTask]] = [[] for _ in range(stage_count)]
        for subtask in subtasks:
            groups[subtask.stage_index].append(subtask)
        return [g for g in groups if g]
