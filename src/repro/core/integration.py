"""Sensor / actuator integration: the Sensor and Actuator classes (Fig. 4).

Paper §IV-C-4: "Each class abstracts the hardware and the communication
interface of the sensor / actuator, and provides a common interface to
[the] flow distribution function. For example, a variety of sensor data
streams are converted to packets of [the] MQTT protocol."

:class:`SensorClass` samples an attached device model at a fixed rate and
publishes each reading as a :class:`~repro.core.flow.FlowRecord` — this is
where the ``sensed_at`` timestamp that anchors all of the paper's latency
measurements is stamped. :class:`ActuatorClass` subscribes to a command
flow and drives an attached actuator model.
"""

from __future__ import annotations

from typing import Any

from repro.core.flow import FlowRecord
from repro.core.operators import PayloadEffect, StreamOperator, register_operator
from repro.errors import RecipeError
from repro.ml.features import Datum

__all__ = ["SensorClass", "ActuatorClass"]


class SensorClass(StreamOperator):
    """Periodic sampling source (operator name ``sensor``).

    Params: ``device`` (name of a sensor attached to the module),
    ``rate_hz`` (sampling frequency). The module must physically host the
    device — recipes express that with capability ``sensor:<device>`` or a
    ``pin_to``.
    """

    cost_op = "sensor.sample"

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        # The payload is the device model's reading; the checker narrows
        # this to the device's channel_keys() when the testbed map knows
        # the device, and treats it as open otherwise.
        return PayloadEffect(opaque=True)

    def configure(self) -> None:
        device = self.params.get("device")
        if not device:
            raise RecipeError(f"{self.name}: sensor needs 'device'")
        rate_hz = float(self.params.get("rate_hz", 1.0))
        if rate_hz <= 0:
            raise RecipeError(f"{self.name}: rate_hz must be positive")
        if self.subtask.inputs:
            raise RecipeError(f"{self.name}: sensor tasks take no inputs")
        self.device = str(device)
        self.rate_hz = rate_hz
        self.model = self.module.sensor(self.device)
        self._rng = self.runtime.rng.stream(f"sensor.{self.node.name}.{self.device}")
        self.samples_taken = 0
        self.paused = False
        self.every(1.0 / rate_hz, self._tick)

    def pause(self) -> None:
        """Stop emitting samples (device flap / undervoltage); the sampling
        clock keeps running so :meth:`resume` stays phase-aligned."""
        if not self.paused:
            self.paused = True
            self.trace("sensor.paused", device=self.device)

    def resume(self) -> None:
        if self.paused:
            self.paused = False
            self.trace("sensor.resumed", device=self.device)

    def _tick(self) -> None:
        if self.paused:
            return
        sensed_at = self.runtime.now
        # Reading the hardware + packing the sample costs CPU; the
        # timestamp is the sensing instant, before that cost is paid.
        self.node.execute(self.cost_op, self._sample, sensed_at)

    def _sample(self, sensed_at: float) -> None:
        if self.stopped:
            return
        reading = self.model.sample(sensed_at, self._rng)
        record = FlowRecord(
            sample_id=self.runtime.ids.next(f"s.{self.node.name}.{self.device}"),
            source=self.node.name,
            sensed_at=sensed_at,
            datum=Datum.from_mapping(reading),
            path=[self.subtask.task_id],
        )
        obs = self.runtime.obs
        if obs is not None:
            # Root of the span tree: sensing instant -> sample packed.
            span = obs.start_span(
                "sense",
                self.node,
                start=sensed_at,
                task=self.subtask.task_id,
                sample=record.sample_id,
                device=self.device,
            )
            record.ctx = obs.finish(span)
        self.samples_taken += 1
        self.trace(
            "sensor.sample",
            device=self.device,
            sample_id=record.sample_id,
            sensed_at=sensed_at,
        )
        self.emit(record)


class ActuatorClass(StreamOperator):
    """Command sink driving a device model (operator name ``actuator``).

    Params: ``device`` (actuator attached to the module). Incoming records
    carry the command in ``attributes['command']`` (the ``command``
    operator produces exactly that); records without one are ignored.
    """

    cost_op = "actuator.apply"

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        return PayloadEffect(reads_attrs=("command",))

    def configure(self) -> None:
        device = self.params.get("device")
        if not device:
            raise RecipeError(f"{self.name}: actuator needs 'device'")
        if self.subtask.outputs:
            raise RecipeError(f"{self.name}: actuator tasks produce no outputs")
        if not self.subtask.inputs:
            raise RecipeError(f"{self.name}: actuator needs an input stream")
        self.device = str(device)
        self.model = self.module.actuator(self.device)
        self.commands_applied = 0
        self.commands_ignored = 0

    def on_record(self, stream: str, record: FlowRecord) -> None:
        command = record.attributes.get("command")
        if not isinstance(command, dict):
            self.commands_ignored += 1
            return
        now = self.runtime.now
        self.model.actuate(now, command)
        self.commands_applied += 1
        self.trace(
            "actuator.applied",
            device=self.device,
            sample_id=record.sample_id,
            sensed_at=record.sensed_at,
            latency_s=now - record.sensed_at,
        )


register_operator("sensor", SensorClass)
register_operator("actuator", ActuatorClass)
