"""The IFoT middleware core — the paper's contribution.

The four mechanisms of Fig. 4, plus the surrounding machinery:

* **Task allocation** — :mod:`repro.core.recipe` (the Recipe task graph and
  its JSON DSL), :mod:`repro.core.splitter` (RecipeSplit) and
  :mod:`repro.core.assignment` (TaskAssignment strategies).
* **Flow distribution** — :mod:`repro.core.distribution` (Publish /
  Broker / Subscribe classes over the MQTT substrate).
* **Flow analysis** — :mod:`repro.core.analysis` (Learning / Judging /
  Managing classes over the online-ML substrate).
* **Sensor/actuator integration** — :mod:`repro.core.integration`
  (Sensor / Actuator classes over the device models).

:mod:`repro.core.node` hosts operator instances on neuron modules,
:mod:`repro.core.operators` is the operator registry recipes refer to,
:mod:`repro.core.management` is the management node (Fig. 7/8), and
:mod:`repro.core.middleware` is the top-level facade
(:class:`~repro.core.middleware.IFoTCluster`) that examples and benchmarks
use. :mod:`repro.core.discovery` implements the paper's future-work stream
search / dynamic membership, and :mod:`repro.core.healing` the
self-healing control plane (failure detection, degradation policy,
recovery reporting) management composes on top of it.
"""

from repro.core.analysis import JudgingClass, LearningClass, ManagingClass
from repro.core.assignment import (
    Assignment,
    CapabilityAwareStrategy,
    LoadAwareStrategy,
    ModuleInfo,
    RoundRobinStrategy,
    TaskAssignment,
)
from repro.core.discovery import StreamDirectory, StreamRecord
from repro.core.dsl import format_recipe, parse_recipe
from repro.core.distribution import PublishClass, SubscribeClass
from repro.core.flow import FlowRecord
from repro.core.healing import (
    FailureDetector,
    RecoveryReport,
    plan_degradation,
    recovery_report,
)
from repro.core.integration import ActuatorClass, SensorClass
from repro.core.management import ManagementNode
from repro.core.middleware import Application, IFoTCluster
from repro.core.node import NeuronModule
from repro.core.recipe import Recipe, TaskSpec
from repro.core.splitter import RecipeSplit, SubTask

__all__ = [
    "ActuatorClass",
    "Application",
    "Assignment",
    "CapabilityAwareStrategy",
    "FailureDetector",
    "FlowRecord",
    "format_recipe",
    "IFoTCluster",
    "JudgingClass",
    "LearningClass",
    "LoadAwareStrategy",
    "ManagementNode",
    "ManagingClass",
    "ModuleInfo",
    "NeuronModule",
    "parse_recipe",
    "plan_degradation",
    "PublishClass",
    "Recipe",
    "RecoveryReport",
    "recovery_report",
    "RecipeSplit",
    "RoundRobinStrategy",
    "SensorClass",
    "StreamDirectory",
    "StreamRecord",
    "SubTask",
    "SubscribeClass",
    "TaskAssignment",
    "TaskSpec",
]
