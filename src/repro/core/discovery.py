"""Stream search and dynamic membership (the paper's future work, §VI).

"Definition of ... the search function for data streams generated from IoT
devices that can dynamically join / leave the network are also part of
future work." This module implements both on top of retained MQTT
messages, so no extra infrastructure is needed:

* every module agent announces itself on ``ifot/registry/module/<name>``
  (retained, refreshed every heartbeat) with its capabilities;
* every deployed task's output streams are announced on
  ``ifot/registry/stream/<app>/<stream>`` (retained);
* a :class:`StreamDirectory` subscribes to ``ifot/registry/#`` and answers
  membership and stream-search queries locally; entries whose heartbeat is
  older than ``ttl_s`` count as departed (leave = silence, no goodbye
  required — crash-stop friendly).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Any

from repro.core.assignment import ModuleInfo
from repro.mqtt.client import MqttClient
from repro.mqtt.packets import Packet
from repro.runtime.component import Component
from repro.runtime.node import Node
from repro.runtime.state import tracked_state

__all__ = ["ModuleRecord", "StreamRecord", "StreamDirectory", "module_topic", "stream_topic"]


def module_topic(module: str) -> str:
    return f"ifot/registry/module/{module}"


def stream_topic(application: str, stream: str) -> str:
    return f"ifot/registry/stream/{application}/{stream}"


@dataclass
class ModuleRecord:
    """One module's latest announcement."""

    name: str
    capabilities: set[str]
    capacity: float
    announced_at: float
    assignable: bool = True
    load: float = 0.0
    #: The announcing node's boot count. A changed incarnation under the
    #: same name means the module lost its RAM (amnesia restart), not
    #: merely its connectivity.
    incarnation: int = 0


@dataclass
class StreamRecord:
    """One announced flow."""

    application: str
    stream: str
    topic: str
    producer_module: str
    producer_task: str
    announced_at: float


class StreamDirectory(Component):
    """Live view of cluster membership and available streams."""

    def __init__(
        self,
        node: Node,
        client: MqttClient,
        ttl_s: float = 30.0,
    ) -> None:
        super().__init__(node, f"directory@{node.name}")
        self.client = client
        self.ttl_s = ttl_s
        self._modules: dict[str, ModuleRecord] = {}
        self._streams: dict[str, StreamRecord] = {}
        self._member_watchers: list[Any] = []
        self._heartbeat_watchers: list[Any] = []
        self._known_alive: set[str] = set()
        # The directory's view is written by retained-message callbacks
        # racing the periodic TTL rescan, and read by placement queries —
        # track it so the sanitizer can order those accesses.
        self._view_cell = tracked_state(node.runtime, f"directory.{node.name}", "view")
        client.subscribe("ifot/registry/module/+", self._on_module)
        client.subscribe("ifot/registry/stream/+/+", self._on_stream)
        # TTL expiry produces no message, so membership changes from
        # silent death are detected by periodic rescans.
        self.every(max(1.0, ttl_s / 3.0), self._scan_membership)

    # ------------------------------------------------------------------
    # Membership watching
    # ------------------------------------------------------------------

    def watch_members(self, callback: Any) -> None:
        """Register ``callback(name, alive)`` for join/leave events.

        Leave fires on a retained tombstone (clean leave or broker-side
        last-will) and on TTL expiry (silent death).
        """
        self._member_watchers.append(callback)

    def watch_heartbeats(self, callback: Any) -> None:
        """Register ``callback(name, incarnation, now)`` per announcement.

        Fires on every non-tombstone registry refresh — the raw liveness
        signal a failure detector accrues suspicion from, finer-grained
        than the boolean join/leave edges of :meth:`watch_members`.
        """
        self._heartbeat_watchers.append(callback)

    def _scan_membership(self) -> None:
        self._view_cell.note_write()
        alive_now = {m.name for m in self.modules()}
        for name in sorted(alive_now - self._known_alive):
            self._notify_members(name, True)
        for name in sorted(self._known_alive - alive_now):
            self._notify_members(name, False)
        self._known_alive = alive_now

    def _notify_members(self, name: str, alive: bool) -> None:
        self._view_cell.note_write()
        self._known_alive = (
            self._known_alive | {name} if alive else self._known_alive - {name}
        )
        for watcher in self._member_watchers:
            watcher(name, alive)

    # ------------------------------------------------------------------
    # Announcement handling
    # ------------------------------------------------------------------

    def _on_module(self, topic: str, payload: Any, _packet: Packet) -> None:
        self._view_cell.note_write()
        name = topic.rsplit("/", 1)[-1]
        if payload is None:  # retained tombstone: clean leave or last-will
            if self._modules.pop(name, None) is not None:
                self._notify_members(name, False)
            return
        previous = self._modules.get(name)
        incarnation = int(payload.get("incarnation", 0))
        if (
            previous is not None
            and incarnation != previous.incarnation
            and name in self._known_alive
        ):
            # Amnesia restart: same identity, fresh boot. Watchers see a
            # leave *then* a join, so orchestration layers reclaim lost
            # state (re-deploy sub-tasks) even when the restart was faster
            # than the keep-alive/TTL detectors.
            self._notify_members(name, False)
        is_new = name not in self._known_alive
        self._modules[name] = ModuleRecord(
            name=name,
            capabilities=set(payload.get("capabilities", [])),
            capacity=float(payload.get("capacity", 1.0)),
            announced_at=self.runtime.now,
            assignable=bool(payload.get("assignable", True)),
            load=float(payload.get("load", 0.0)),
            incarnation=incarnation,
        )
        if is_new:
            self._notify_members(name, True)
        for watcher in self._heartbeat_watchers:
            watcher(name, incarnation, self.runtime.now)

    def _on_stream(self, topic: str, payload: Any, _packet: Packet) -> None:
        self._view_cell.note_write()
        key = topic.split("ifot/registry/stream/", 1)[-1]
        if payload is None:
            self._streams.pop(key, None)
            return
        application, stream = key.split("/", 1)
        self._streams[key] = StreamRecord(
            application=application,
            stream=stream,
            topic=str(payload.get("topic", "")),
            producer_module=str(payload.get("module", "")),
            producer_task=str(payload.get("task", "")),
            announced_at=self.runtime.now,
        )

    def _alive(self, announced_at: float) -> bool:
        return self.runtime.now - announced_at <= self.ttl_s

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def modules(self) -> list[ModuleRecord]:
        """Currently alive modules (heartbeat within TTL)."""
        self._view_cell.note_read()
        return sorted(
            (m for m in self._modules.values() if self._alive(m.announced_at)),
            key=lambda m: m.name,
        )

    def module_infos(self) -> list[ModuleInfo]:
        """Alive, assignable modules as task-assignment inputs."""
        return [
            ModuleInfo(
                name=m.name,
                capacity=m.capacity,
                capabilities=set(m.capabilities),
                base_load=m.load,
            )
            for m in self.modules()
            if m.assignable
        ]

    def find_streams(
        self,
        application: str | None = None,
        pattern: str = "*",
    ) -> list[StreamRecord]:
        """Stream search: glob ``pattern`` against stream names, optionally
        within one application."""
        self._view_cell.note_read()
        return sorted(
            (
                s
                for s in self._streams.values()
                if self._alive(s.announced_at)
                and (application is None or s.application == application)
                and fnmatch.fnmatch(s.stream, pattern)
            ),
            key=lambda s: (s.application, s.stream),
        )

    # ------------------------------------------------------------------
    # Announcing (used by module agents)
    # ------------------------------------------------------------------

    def announce_module(
        self,
        name: str,
        capabilities: set[str],
        capacity: float = 1.0,
        assignable: bool = True,
        load: float = 0.0,
        incarnation: int = 0,
    ) -> None:
        self.client.publish(
            module_topic(name),
            {
                "capabilities": sorted(capabilities),
                "capacity": capacity,
                "assignable": assignable,
                "load": load,
                "incarnation": incarnation,
                "ts": self.runtime.now,
            },
            retain=True,
        )

    def announce_stream(
        self,
        application: str,
        stream: str,
        topic: str,
        module: str,
        task: str,
    ) -> None:
        self.client.publish(
            stream_topic(application, stream),
            {"topic": topic, "module": module, "task": task, "ts": self.runtime.now},
            retain=True,
        )

    def withdraw_module(self, name: str) -> None:
        """Clean leave: overwrite the retained announcement with a tombstone."""
        self.client.publish(module_topic(name), None, retain=True)

    def withdraw_stream(self, application: str, stream: str) -> None:
        self.client.publish(stream_topic(application, stream), None, retain=True)
