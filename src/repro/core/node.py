"""The IFoT neuron module: one device running the middleware.

Paper Fig. 2: an *IFoT neuron module* is "a small computer running IFoT
middleware for processing data streams", with short-range interfaces to
sensors/actuators and a network link to its peers. Here a
:class:`NeuronModule` wraps a runtime :class:`~repro.runtime.node.Node`
with:

* one shared MQTT client session to the cluster broker;
* a registry of locally attached devices (sensor/actuator models), which
  determines the module's capability tags for task assignment;
* the set of operator instances currently deployed on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.splitter import SubTask
from repro.errors import DeploymentError
from repro.mqtt.client import MqttClient
from repro.net.address import Address
from repro.runtime.node import Node
from repro.sensors.base import ActuatorModel, SensorModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.component import Component

__all__ = ["NeuronModule"]


class NeuronModule:
    """A device participating in the IFoT cluster."""

    def __init__(
        self,
        node: Node,
        broker: Address,
        extra_capabilities: set[str] | None = None,
        keepalive_s: float = 30.0,
        auto_reconnect: bool = False,
    ) -> None:
        self.node = node
        self.name = node.name
        self.client = MqttClient(
            node,
            broker,
            client_id=f"ifot.{node.name}",
            keepalive_s=keepalive_s,
            auto_reconnect=auto_reconnect,
        )
        self.client.connect()
        self.sensors: dict[str, SensorModel] = {}
        self.actuators: dict[str, ActuatorModel] = {}
        self.operators: dict[str, "Component"] = {}
        self._extra_capabilities = set(extra_capabilities or ())
        #: Called (no args) whenever the capability set changes; the module
        #: agent hooks this to re-announce immediately instead of waiting
        #: for the next heartbeat.
        self.capability_listeners: list[Any] = []

    # ------------------------------------------------------------------
    # Device registry (the hardware side of sensor/actuator integration)
    # ------------------------------------------------------------------

    def attach_sensor(self, device: str, model: SensorModel) -> None:
        """Wire a sensor device to this module (capability ``sensor:<device>``)."""
        if device in self.sensors:
            raise DeploymentError(f"{self.name}: sensor {device!r} already attached")
        self.sensors[device] = model
        self._notify_capabilities()

    def attach_actuator(self, device: str, model: ActuatorModel) -> None:
        """Wire an actuator device (capability ``actuator:<device>``)."""
        if device in self.actuators:
            raise DeploymentError(
                f"{self.name}: actuator {device!r} already attached"
            )
        self.actuators[device] = model
        self._notify_capabilities()

    def _notify_capabilities(self) -> None:
        for listener in self.capability_listeners:
            listener()

    def sensor(self, device: str) -> SensorModel:
        try:
            return self.sensors[device]
        except KeyError:
            raise DeploymentError(
                f"{self.name}: no sensor {device!r} attached"
            ) from None

    def actuator(self, device: str) -> ActuatorModel:
        try:
            return self.actuators[device]
        except KeyError:
            raise DeploymentError(
                f"{self.name}: no actuator {device!r} attached"
            ) from None

    def current_load(self) -> float:
        """Load points of everything deployed here (assignment units).

        Uses the same per-operator estimates task assignment plans with,
        so a module's announced load and the assigner's projections share
        a currency.
        """
        from repro.core.assignment import estimate_cost  # avoid import cycle

        total = 0.0
        for operator in self.operators.values():
            subtask = getattr(operator, "subtask", None)
            if subtask is not None:
                total += estimate_cost(subtask)
        return total

    @property
    def capabilities(self) -> set[str]:
        """Capability tags used by capability-aware task assignment."""
        tags = set(self._extra_capabilities)
        tags.update(f"sensor:{name}" for name in self.sensors)
        tags.update(f"actuator:{name}" for name in self.actuators)
        return tags

    # ------------------------------------------------------------------
    # Operator hosting
    # ------------------------------------------------------------------

    def deploy(self, application: str, subtask: SubTask) -> "Component":
        """Instantiate and start ``subtask``'s operator on this module."""
        from repro.core.operators import create_operator  # avoid import cycle

        key = f"{application}/{subtask.subtask_id}"
        if key in self.operators:
            raise DeploymentError(f"{self.name}: {key!r} already deployed")
        operator = create_operator(self, application, subtask)
        self.operators[key] = operator
        self._notify_capabilities()  # announced state includes load
        self.node.runtime.trace(
            self.name,
            "module.deploy",
            application=application,
            subtask=subtask.subtask_id,
            operator=subtask.operator,
        )
        return operator

    def undeploy(self, application: str, subtask_id: str) -> bool:
        """Stop and remove one operator instance. Returns True if found."""
        key = f"{application}/{subtask_id}"
        operator = self.operators.pop(key, None)
        if operator is None:
            return False
        operator.stop()
        self._notify_capabilities()
        return True

    def undeploy_application(self, application: str) -> int:
        """Stop every operator of ``application``; returns how many."""
        prefix = f"{application}/"
        keys = [k for k in self.operators if k.startswith(prefix)]
        for key in keys:
            self.operators.pop(key).stop()
        if keys:
            self._notify_capabilities()
        return len(keys)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Snapshot published to the management node."""
        cpu = self.node.cpu
        return {
            "module": self.name,
            # Incarnation stamps every liveness-bearing message (registry
            # announcements already carry it); consumers can tell a fresh
            # boot's report from a stale pre-restart one.
            "incarnation": self.node.incarnation,
            "operators": sorted(self.operators),
            "sensors": sorted(self.sensors),
            "actuators": sorted(self.actuators),
            "capabilities": sorted(self.capabilities),
            "cpu_queue": cpu.queue_length if cpu is not None else 0,
            "jobs_completed": cpu.stats.jobs_completed if cpu is not None else 0,
            "jobs_dropped": cpu.stats.jobs_dropped if cpu is not None else 0,
        }

    def shutdown(self) -> None:
        """Stop all operators and the MQTT session."""
        for operator in list(self.operators.values()):
            operator.stop()
        self.operators.clear()
        self.client.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NeuronModule({self.name!r}, {len(self.operators)} operators)"
