"""Stream operators: the executable vocabulary of recipes.

Every recipe task names an operator from the registry here. An operator is
a :class:`StreamOperator`: it subscribes to its input streams, processes
records on its module's CPU, and publishes results to its output streams.
The analysis and integration mechanisms register their classes
(``train``, ``predict``, ``anomaly``, ``cluster``, ``mix``, ``sensor``,
``actuator``) into the same registry, so the whole Fig. 5 recipe graph is
expressible with one uniform task vocabulary.

Generic operators defined here:

``window``
    Aggregates records into one merged record — the paper's module D
    (``Sub(A,B,C) -> Pub(A,B,C,[data])``, Fig. 9). Modes: ``align`` (one
    record from each expected source), ``count`` (every N records),
    ``time`` (flush every interval).
``map``
    Stateless datum transforms (select / rename / scale / magnitude /
    round) chosen by name — recipes are data, so functions travel by name.
``filter``
    Drops records failing a comparison on a datum value or attribute.
``merge``
    Latest-value fusion across streams: emits a combined record whenever
    any input updates and every input has been seen (sensor fusion for
    state estimation, §III-A-2).
``stat``
    Enriches records with sliding-window statistics of chosen keys.
``command``
    Rule table mapping judgements to actuator commands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.distribution import PublishClass, SubscribeClass
from repro.core.flow import FlowRecord
from repro.core.splitter import SubTask, shard_of
from repro.errors import RecipeError
from repro.ml.features import Datum
from repro.ml.stat import WindowStat
from repro.runtime.component import Component
from repro.runtime.state import StateCell, tracked_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.node import NeuronModule

__all__ = [
    "STATEFUL_OPERATORS",
    "PayloadEffect",
    "StreamOperator",
    "register_operator",
    "create_operator",
    "registered_operators",
]

#: Operators holding cross-record state. Shared currency between the
#: static recipe checker (RCP109: sharding a stateful operator splits its
#: state across shards) and the schedule sanitizer (each instance gets a
#: per-instance state cell so record-processing order is race-checked).
STATEFUL_OPERATORS = {"merge", "stat", "ewma", "delta", "throttle", "dedup", "train"}

#: Operators whose instances carry a sanitizer state cell: the stateful
#: set plus ``window``, which buffers records between emissions (sharding
#: it is fine — each shard windows its own slice — but processing order
#: still mutates state).
_SAN_TRACKED_OPERATORS = STATEFUL_OPERATORS | {"window"}


@dataclass(frozen=True)
class PayloadEffect:
    """Static payload contract of one operator configuration.

    The recipe payload checker (:mod:`repro.lint.dataflow`) abstract-
    interprets the recipe DAG with these: ``reads*`` are keys the
    operator looks up (a read of a key no upstream can produce is a
    recipe bug), the rest describe how the output schema derives from the
    input schema. Schemas are *may-produce* upper bounds — an ``adds``
    key that only appears on some records still counts as producible.
    """

    #: Datum keys looked up on every record.
    reads: tuple[str, ...] = ()
    #: Attribute keys looked up on every record.
    reads_attrs: tuple[str, ...] = ()
    #: Keys looked up in attributes first, falling back to the datum.
    reads_any: tuple[str, ...] = ()
    #: Datum keys added to (or overwritten in) the output.
    adds: tuple[str, ...] = ()
    #: Attribute keys added to the output.
    adds_attrs: tuple[str, ...] = ()
    #: When set, the output datum is restricted to these keys.
    select: tuple[str, ...] | None = None
    #: Datum key renames applied to the output, as ``(old, new)`` pairs.
    renames: tuple[tuple[str, str], ...] = ()
    #: Output is a key-union fusion of all inputs (window/merge): later
    #: contributors win key conflicts, so collisions are order-sensitive.
    merges_inputs: bool = False
    #: Drops records whose sample id was already seen (clears the
    #: at-least-once duplication taint QoS 1 edges introduce).
    dedups: bool = False
    #: The output schema cannot be derived statically (open schema).
    opaque: bool = False


class StreamOperator(Component):
    """Base class wiring a sub-task to flows and the module CPU.

    Subclasses implement :meth:`on_record` (and optionally
    :meth:`configure` for parameter parsing) and call :meth:`emit`.
    ``cost_op`` names the CPU operation charged per processed record in
    simulation (analysis classes override it with ``ml.train`` etc.).
    """

    cost_op = "flow.process"

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        """Static payload contract for this configuration (base:
        pass-through). Overridden per operator; callers must treat a
        raising implementation as opaque (malformed params are RCP1xx's
        job, not this one's)."""
        return PayloadEffect()

    def __init__(
        self, module: "NeuronModule", application: str, subtask: SubTask
    ) -> None:
        super().__init__(
            module.node,
            f"{subtask.operator}.{application}.{subtask.subtask_id}@{module.name}",
        )
        self.module = module
        self.application = application
        self.subtask = subtask
        self.params = dict(subtask.params)
        qos = int(self.params.get("qos", 0))
        self.publishers: dict[str, PublishClass] = {
            stream: PublishClass(
                module.node, module.client, application, stream, qos=qos
            )
            for stream in subtask.outputs
        }
        self.subscriber: SubscribeClass | None = None
        if subtask.inputs:
            self.subscriber = SubscribeClass(
                module.node,
                module.client,
                application,
                list(subtask.inputs),
                self._dispatch,
                qos=qos,
            )
        self.records_in = 0
        self.records_out = 0
        self.records_skipped = 0
        self.processing_errors = 0
        #: Operators that fail this many times in a row are stopped — a
        #: crash-looping task must not monopolize its module's CPU.
        self.max_consecutive_errors = 25
        self._consecutive_errors = 0
        self._obs_span: Any = None
        self._obs_hist: Any = None
        # Stateful operators mutate cross-record state on every processed
        # record, so record order is schedule-sensitive; the sanitizer
        # cell makes that visible as a write per processing event.
        self._state_cell: StateCell | None = None
        if subtask.operator in _SAN_TRACKED_OPERATORS:
            self._state_cell = tracked_state(
                self.runtime, f"operator.{self.name}", "state"
            )
        # Live-migration handoff state: while paused the operator buffers
        # inbound records instead of processing them (the MQTT client has
        # already PUBACKed, so pausing must not lose anything); a freshly
        # deployed successor records every sample it processes so replayed
        # buffers and its own live subscription never double-process. Both
        # structures are schedule-sensitive, hence the tracked cell.
        self.paused = False
        self.records_buffered = 0
        self.handoff_skipped = 0
        self._handoff_buffer: list[tuple[str, FlowRecord]] = []
        self._handoff_seen: set[str] | None = None
        self._handoff_cell: StateCell | None = None
        if subtask.inputs:
            self._handoff_cell = tracked_state(
                self.runtime, f"operator.{self.name}", "handoff"
            )
        self.configure()

    def configure(self) -> None:
        """Parse ``self.params``; raise RecipeError on bad configuration."""

    # ------------------------------------------------------------------
    # Record flow
    # ------------------------------------------------------------------

    def _dispatch(self, stream: str, record: FlowRecord) -> None:
        if self.stopped:
            return
        if self.subtask.shard_count > 1:
            if shard_of(record.sample_id, self.subtask.shard_count) != (
                self.subtask.shard_index
            ):
                self.records_skipped += 1
                return
        if self.paused:
            if self._handoff_cell is not None:
                self._handoff_cell.note_write()
            self.records_buffered += 1
            self._handoff_buffer.append((stream, record))
            return
        if self._handoff_seen is not None:
            if self._handoff_cell is not None:
                self._handoff_cell.note_write()
            self._handoff_seen.add(record.sample_id)
        self.records_in += 1
        if self.runtime.obs is not None:
            self.node.execute(
                self.cost_op, self._process_traced, stream, record, self.runtime.now
            )
        else:
            self.node.execute(self.cost_op, self._process, stream, record)

    def _process_traced(
        self, stream: str, record: FlowRecord, enqueued_at: float
    ) -> None:
        """Traced variant of :meth:`_process`: wraps the record in an
        operator span covering CPU queueing + service + handling, and makes
        that span the causal parent of everything :meth:`emit` publishes."""
        obs = self.runtime.obs
        if obs is None:
            self._process(stream, record)
            return
        span = obs.start_span(
            f"op.{self.subtask.operator}",
            self.node,
            parent=record.ctx,
            start=enqueued_at,
            task=self.subtask.task_id,
            sample=record.sample_id,
        )
        self._obs_span = span
        try:
            self._process(stream, record)
        finally:
            self._obs_span = None
            obs.finish(span)
            if obs.metrics is not None:
                hist = self._obs_hist
                if hist is None:
                    hist = self._obs_hist = obs.metrics.histogram(
                        "operator.latency_s",
                        node=self.node.name,
                        operator=self.subtask.operator,
                    )
                hist.observe(self.runtime.now - enqueued_at)

    def _process(self, stream: str, record: FlowRecord) -> None:
        if self.stopped:
            return
        if self._state_cell is not None:
            self._state_cell.note_write()
        try:
            self.on_record(stream, record)
        except Exception as exc:  # noqa: BLE001 - fault isolation boundary
            # One bad record (or operator bug) must not take the module
            # down: count it, trace it, and keep the pipeline running.
            self.processing_errors += 1
            self._consecutive_errors += 1
            self.trace(
                "operator.error",
                sample_id=record.sample_id,
                error=f"{type(exc).__name__}: {exc}",
            )
            if self._consecutive_errors >= self.max_consecutive_errors:
                self.trace("operator.crash_loop_stopped")
                self.stop()
            return
        self._consecutive_errors = 0

    def on_record(self, stream: str, record: FlowRecord) -> None:
        """Handle one input record (sources with no inputs never get this)."""
        raise NotImplementedError

    def emit(self, record: FlowRecord, stream: str | None = None) -> None:
        """Publish ``record`` to one output stream (or all, when None)."""
        if stream is None:
            targets = list(self.publishers.values())
        else:
            publisher = self.publishers.get(stream)
            if publisher is None:
                raise RecipeError(
                    f"{self.name}: not a declared output stream: {stream!r}"
                )
            targets = [publisher]
        span = self._obs_span
        if span is not None:
            # Re-parent the outgoing record onto this operator's span. A
            # merge-assigned context (window/merge output) is preserved as
            # a link so no causal chain is dropped.
            if record.ctx is not None and record.ctx.span_id not in (
                span.ctx.span_id,
                span.ctx.parent_id,
            ):
                if record.ctx.span_id not in record.ctx_links:
                    record.ctx_links.append(record.ctx.span_id)
            record.ctx = span.ctx
        self.records_out += 1
        for publisher in targets:
            publisher.publish_record(record)

    # ------------------------------------------------------------------
    # Live migration (pause -> drain -> transfer -> resume)
    # ------------------------------------------------------------------

    def pause(self) -> None:
        """Stop processing; buffer every inbound record for handoff.

        Records that were queued on the CPU before the pause still
        complete (they were dispatched pre-pause); records arriving after
        it land in the handoff buffer untouched.
        """
        if self._handoff_cell is not None:
            self._handoff_cell.note_write()
        self.paused = True

    def take_handoff_buffer(self) -> list[tuple[str, FlowRecord]]:
        """Drain and return everything buffered since :meth:`pause`."""
        if self._handoff_cell is not None:
            self._handoff_cell.note_write()
        buffered, self._handoff_buffer = self._handoff_buffer, []
        return buffered

    def begin_handoff_tracking(self) -> None:
        """Start recording processed sample ids (successor side).

        Called immediately after deploy on the migration target, before
        any live record can arrive, so the skip set in
        :meth:`absorb_handoff` covers the whole overlap window.
        """
        if self._handoff_cell is not None:
            self._handoff_cell.note_write()
        self._handoff_seen = set()

    def absorb_handoff(
        self, buffered: list[tuple[str, FlowRecord]], final: bool = False
    ) -> None:
        """Replay records handed off by a migrating predecessor.

        Samples this instance already processed (via its own live
        subscription or an earlier handoff batch) are skipped, which is
        what makes the pause->drain->transfer->resume protocol
        exactly-once despite source and target being briefly subscribed
        at the same time. ``final=True`` ends tracking (the tail batch).
        """
        if self._handoff_cell is not None:
            self._handoff_cell.note_write()
        seen = self._handoff_seen if self._handoff_seen is not None else set()
        for stream, record in buffered:
            if record.sample_id in seen:
                self.handoff_skipped += 1
                continue
            self._dispatch(stream, record)
        if final:
            self._handoff_seen = None

    def export_state(self) -> dict[str, Any]:
        """Serializable cross-record state for migration (base: none).

        Notes the state cell so the schedule sanitizer can order the
        export against same-instant record processing; overrides must
        call ``super().export_state()`` first to keep that visibility.
        """
        if self._state_cell is not None:
            self._state_cell.note_read()
        return {}

    def import_state(self, state: dict[str, Any]) -> None:
        """Restore state exported by a predecessor instance (base: no-op).

        Notes the state cell (see :meth:`export_state`); overrides must
        call ``super().import_state(state)`` first.
        """
        if self._state_cell is not None:
            self._state_cell.note_write()

    def on_stop(self) -> None:
        if self.subscriber is not None:
            self.subscriber.stop()
        for publisher in self.publishers.values():
            publisher.stop()


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

OperatorFactory = Callable[["NeuronModule", str, SubTask], Component]
_REGISTRY: dict[str, OperatorFactory] = {}


def register_operator(name: str, factory: OperatorFactory) -> None:
    """Add an operator to the recipe vocabulary (idempotent re-register of
    the same factory is allowed; conflicting re-register is an error)."""
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise RecipeError(f"operator {name!r} already registered")
    _REGISTRY[name] = factory


def registered_operators() -> list[str]:
    return sorted(_REGISTRY)


def create_operator(
    module: "NeuronModule", application: str, subtask: SubTask
) -> Component:
    """Instantiate the operator a sub-task names."""
    factory = _REGISTRY.get(subtask.operator)
    if factory is None:
        raise RecipeError(
            f"unknown operator {subtask.operator!r} "
            f"(known: {registered_operators()})"
        )
    return factory(module, application, subtask)


# --------------------------------------------------------------------------
# window
# --------------------------------------------------------------------------


class WindowOperator(StreamOperator):
    """Aggregation windows producing merged records.

    Params: ``mode`` = ``align`` (default) | ``count`` | ``time``;
    ``sources`` (align: explicit source list) or ``arity`` (align: number
    of distinct sources to wait for); ``count`` (count mode);
    ``interval_s`` (time mode).
    """

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        return PayloadEffect(merges_inputs=True)

    def configure(self) -> None:
        self.mode = str(self.params.get("mode", "align"))
        if self.mode == "align":
            self.expected_sources: list[str] | None = self.params.get("sources")
            self.arity = int(self.params.get("arity", 0))
            if not self.expected_sources and self.arity <= 0:
                raise RecipeError(
                    f"{self.name}: align window needs 'sources' or 'arity'"
                )
            self._pending: dict[str, FlowRecord] = {}
        elif self.mode == "count":
            self.count = int(self.params.get("count", 0))
            if self.count <= 0:
                raise RecipeError(f"{self.name}: count window needs 'count' > 0")
            self._batch: list[FlowRecord] = []
        elif self.mode == "time":
            interval = float(self.params.get("interval_s", 0.0))
            if interval <= 0:
                raise RecipeError(
                    f"{self.name}: time window needs 'interval_s' > 0"
                )
            self._batch = []
            self.every(interval, self._flush_time)
        else:
            raise RecipeError(f"{self.name}: unknown window mode {self.mode!r}")
        self.windows_emitted = 0

    def on_record(self, stream: str, record: FlowRecord) -> None:
        if self.mode == "align":
            self._pending[record.source] = record
            full = (
                set(self._pending) >= set(self.expected_sources)
                if self.expected_sources
                else len(self._pending) >= self.arity
            )
            if full:
                records = [self._pending[s] for s in sorted(self._pending)]
                self._pending.clear()
                self._emit_window(records)
        else:  # count / time share the batch list
            self._batch.append(record)
            if self.mode == "count" and len(self._batch) >= self.count:
                batch, self._batch = self._batch, []
                self._emit_window(batch)

    def _flush_time(self) -> None:
        if self._state_cell is not None:
            self._state_cell.note_write()
        if self._batch:
            batch, self._batch = self._batch, []
            self._emit_window(batch)

    def export_state(self) -> dict[str, Any]:
        super().export_state()
        state: dict[str, Any] = {"windows_emitted": self.windows_emitted}
        if self.mode == "align":
            state["pending"] = {
                source: record.to_payload()
                for source, record in sorted(self._pending.items())
            }
        else:
            state["batch"] = [record.to_payload() for record in self._batch]
        return state

    def import_state(self, state: dict[str, Any]) -> None:
        super().import_state(state)
        self.windows_emitted = int(state.get("windows_emitted", 0))
        if self.mode == "align":
            self._pending = {
                source: FlowRecord.from_payload(payload)
                for source, payload in state.get("pending", {}).items()
            }
        else:
            self._batch = [
                FlowRecord.from_payload(payload)
                for payload in state.get("batch", [])
            ]

    def _emit_window(self, records: list[FlowRecord]) -> None:
        merged = FlowRecord.merge(self.subtask.task_id, records)
        self.windows_emitted += 1
        self.trace(
            "flow.window",
            size=len(records),
            sample_id=merged.sample_id,
            sensed_at=merged.sensed_at,
        )
        self.emit(merged)


# --------------------------------------------------------------------------
# map
# --------------------------------------------------------------------------


def _map_select(datum: Datum, params: dict[str, Any]) -> Datum:
    keys = set(params["keys"])
    return Datum(
        string_values={k: v for k, v in datum.string_values.items() if k in keys},
        num_values={k: v for k, v in datum.num_values.items() if k in keys},
    )


def _map_rename(datum: Datum, params: dict[str, Any]) -> Datum:
    mapping = dict(params["mapping"])
    return Datum(
        string_values={mapping.get(k, k): v for k, v in datum.string_values.items()},
        num_values={mapping.get(k, k): v for k, v in datum.num_values.items()},
    )


def _map_scale(datum: Datum, params: dict[str, Any]) -> Datum:
    key = params["key"]
    factor = float(params["factor"])
    nums = dict(datum.num_values)
    if key in nums:
        nums[key] *= factor
    return Datum(string_values=dict(datum.string_values), num_values=nums)


def _map_magnitude(datum: Datum, params: dict[str, Any]) -> Datum:
    keys = list(params["keys"])
    out = str(params.get("out", "magnitude"))
    nums = dict(datum.num_values)
    nums[out] = math.sqrt(sum(nums.get(k, 0.0) ** 2 for k in keys))
    return Datum(string_values=dict(datum.string_values), num_values=nums)


def _map_round(datum: Datum, params: dict[str, Any]) -> Datum:
    digits = int(params.get("digits", 3))
    return Datum(
        string_values=dict(datum.string_values),
        num_values={k: round(v, digits) for k, v in datum.num_values.items()},
    )


_MAP_FNS: dict[str, Callable[[Datum, dict[str, Any]], Datum]] = {
    "identity": lambda datum, _params: datum,
    "select": _map_select,
    "rename": _map_rename,
    "scale": _map_scale,
    "magnitude": _map_magnitude,
    "round": _map_round,
}


class MapOperator(StreamOperator):
    """Applies a named datum transform to every record.

    Params: ``fn`` (one of identity/select/rename/scale/magnitude/round)
    plus that function's own parameters.
    """

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        fn = str(params.get("fn", "identity"))
        if fn == "select":
            keys = tuple(str(k) for k in params.get("keys", ()))
            return PayloadEffect(reads=keys, select=keys)
        if fn == "rename":
            mapping = dict(params.get("mapping", {}))
            pairs = tuple(sorted((str(k), str(v)) for k, v in mapping.items()))
            return PayloadEffect(reads=tuple(k for k, _ in pairs), renames=pairs)
        if fn == "scale":
            key = params.get("key")
            return PayloadEffect(reads=(str(key),) if key is not None else ())
        if fn == "magnitude":
            keys = tuple(str(k) for k in params.get("keys", ()))
            out = str(params.get("out", "magnitude"))
            return PayloadEffect(reads=keys, adds=(out,))
        return PayloadEffect()

    def configure(self) -> None:
        fn_name = str(self.params.get("fn", "identity"))
        fn = _MAP_FNS.get(fn_name)
        if fn is None:
            raise RecipeError(
                f"{self.name}: unknown map fn {fn_name!r} (known: {sorted(_MAP_FNS)})"
            )
        self._fn = fn
        self._fn_name = fn_name
        # Fail fast on missing fn params using a probe datum.
        try:
            fn(Datum(num_values={"__probe__": 0.0}), self.params)
        except KeyError as exc:
            raise RecipeError(f"{self.name}: map fn {fn_name!r} missing param {exc}")

    def on_record(self, stream: str, record: FlowRecord) -> None:
        transformed = self._fn(record.datum, self.params)
        self.emit(record.derive(self.subtask.task_id, datum=transformed))


# --------------------------------------------------------------------------
# filter
# --------------------------------------------------------------------------

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


class FilterOperator(StreamOperator):
    """Passes records satisfying ``<field>[key] <op> value``.

    Params: ``key``; ``op`` (gt/ge/lt/le/eq/ne, default ``gt``); ``value``;
    ``field`` = ``datum`` (default) or ``attrs``.
    """

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        key = params.get("key")
        if key is None:
            return PayloadEffect()
        if str(params.get("field", "datum")) == "attrs":
            return PayloadEffect(reads_attrs=(str(key),))
        return PayloadEffect(reads=(str(key),))

    def configure(self) -> None:
        try:
            self.key = str(self.params["key"])
            self.value = self.params["value"]
        except KeyError as exc:
            raise RecipeError(f"{self.name}: filter missing param {exc}")
        op = str(self.params.get("op", "gt"))
        comparator = _COMPARATORS.get(op)
        if comparator is None:
            raise RecipeError(f"{self.name}: unknown filter op {op!r}")
        self._comparator = comparator
        self.field = str(self.params.get("field", "datum"))
        if self.field not in ("datum", "attrs"):
            raise RecipeError(f"{self.name}: filter field must be datum|attrs")
        self.records_dropped = 0

    def _lookup(self, record: FlowRecord) -> Any:
        if self.field == "attrs":
            return record.attributes.get(self.key)
        if self.key in record.datum.num_values:
            return record.datum.num_values[self.key]
        return record.datum.string_values.get(self.key)

    def on_record(self, stream: str, record: FlowRecord) -> None:
        actual = self._lookup(record)
        passed = actual is not None and self._comparator(actual, self.value)
        if passed:
            self.emit(record.derive(self.subtask.task_id))
        else:
            self.records_dropped += 1


# --------------------------------------------------------------------------
# merge (latest-value fusion)
# --------------------------------------------------------------------------


class MergeOperator(StreamOperator):
    """Combines the latest record of every input stream into one datum.

    Emits on each arrival once every input has reported (set
    ``require_all: false`` to emit from the first record). Key conflicts:
    later-arriving stream wins for that emission.
    """

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        return PayloadEffect(merges_inputs=True)

    def configure(self) -> None:
        self.require_all = bool(self.params.get("require_all", True))
        self._latest: dict[str, FlowRecord] = {}

    def export_state(self) -> dict[str, Any]:
        super().export_state()
        return {
            "latest": {
                stream: record.to_payload()
                for stream, record in sorted(self._latest.items())
            }
        }

    def import_state(self, state: dict[str, Any]) -> None:
        super().import_state(state)
        self._latest = {
            stream: FlowRecord.from_payload(payload)
            for stream, payload in state.get("latest", {}).items()
        }

    def on_record(self, stream: str, record: FlowRecord) -> None:
        self._latest[stream] = record
        if self.require_all and set(self._latest) < set(self.subtask.inputs):
            return
        # Order by stream name, but let the newly arrived stream win ties
        # by merging it last.
        ordered = [
            self._latest[s] for s in sorted(self._latest) if s != stream
        ] + [record]
        merged = FlowRecord.merge(self.subtask.task_id, ordered)
        self.emit(merged)


# --------------------------------------------------------------------------
# stat
# --------------------------------------------------------------------------


class StatOperator(StreamOperator):
    """Annotates records with sliding-window statistics.

    Params: ``keys`` (numeric datum keys to track), ``window`` (samples,
    default 64), ``stats`` (subset of mean/std/min/max, default mean+std).
    """

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        keys = tuple(str(k) for k in params.get("keys", ()) or ())
        wanted = tuple(str(s) for s in params.get("stats", ["mean", "std"]))
        return PayloadEffect(
            reads=keys,
            adds_attrs=tuple(f"{key}_{stat}" for key in keys for stat in wanted),
        )

    def configure(self) -> None:
        keys = self.params.get("keys")
        if not keys:
            raise RecipeError(f"{self.name}: stat needs 'keys'")
        self.keys = [str(k) for k in keys]
        self.window = WindowStat(window=int(self.params.get("window", 64)))
        wanted = self.params.get("stats", ["mean", "std"])
        allowed = {"mean", "std", "min", "max"}
        bad = set(wanted) - allowed
        if bad:
            raise RecipeError(f"{self.name}: unknown stats {sorted(bad)}")
        self.wanted = list(wanted)

    def export_state(self) -> dict[str, Any]:
        super().export_state()
        return {"window": self.window.export_state()}

    def import_state(self, state: dict[str, Any]) -> None:
        super().import_state(state)
        self.window.import_state(state.get("window", {}))

    def on_record(self, stream: str, record: FlowRecord) -> None:
        for key in self.keys:
            value = record.datum.num_values.get(key)
            if value is not None:
                self.window.push(key, value)
        enriched = record.derive(self.subtask.task_id)
        getters = {
            "mean": self.window.mean,
            "std": self.window.stddev,
            "min": self.window.min,
            "max": self.window.max,
        }
        for key in self.keys:
            if self.window.count(key) == 0:
                continue
            for stat in self.wanted:
                enriched.attributes[f"{key}_{stat}"] = getters[stat](key)
        self.emit(enriched)


# --------------------------------------------------------------------------
# command (judgement -> actuator command rules)
# --------------------------------------------------------------------------


class CommandOperator(StreamOperator):
    """Maps analysis outputs to actuator commands via a rule table.

    Params: ``rules`` — a list of ``{"when": {"key": K, <test>: V},
    "command": {...}}`` evaluated in order (first match wins), where
    ``<test>`` is one of eq/ne/gt/ge/lt/le; an optional ``default``
    command fires when no rule matches. The looked-up value comes from the
    record attributes first, then the datum.
    """

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        keys: list[str] = []
        rules = params.get("rules")
        for rule in rules if isinstance(rules, list) else []:
            if not isinstance(rule, dict):
                continue
            when = rule.get("when")
            if isinstance(when, dict) and "key" in when:
                key = str(when["key"])
                if key not in keys:
                    keys.append(key)
        return PayloadEffect(reads_any=tuple(keys), adds_attrs=("command",))

    def configure(self) -> None:
        rules = self.params.get("rules")
        if not isinstance(rules, list) or not rules:
            raise RecipeError(f"{self.name}: command needs a non-empty 'rules' list")
        self.rules: list[tuple[str, str, Any, dict[str, Any]]] = []
        for i, rule in enumerate(rules):
            when = rule.get("when", {})
            command = rule.get("command")
            if not isinstance(when, dict) or "key" not in when or command is None:
                raise RecipeError(f"{self.name}: malformed rule #{i}: {rule!r}")
            tests = [op for op in _COMPARATORS if op in when]
            if len(tests) != 1:
                raise RecipeError(
                    f"{self.name}: rule #{i} needs exactly one comparator"
                )
            self.rules.append(
                (str(when["key"]), tests[0], when[tests[0]], dict(command))
            )
        self.default_command = self.params.get("default")
        self.commands_emitted = 0

    def _lookup(self, record: FlowRecord, key: str) -> Any:
        if key in record.attributes:
            return record.attributes[key]
        if key in record.datum.num_values:
            return record.datum.num_values[key]
        return record.datum.string_values.get(key)

    def on_record(self, stream: str, record: FlowRecord) -> None:
        command: dict[str, Any] | None = None
        for key, op, value, rule_command in self.rules:
            actual = self._lookup(record, key)
            if actual is not None and _COMPARATORS[op](actual, value):
                command = rule_command
                break
        if command is None:
            if self.default_command is None:
                return
            command = dict(self.default_command)
        out = record.derive(self.subtask.task_id)
        out.attributes["command"] = dict(command)
        self.commands_emitted += 1
        self.emit(out)


# --------------------------------------------------------------------------
# ewma (exponential smoothing)
# --------------------------------------------------------------------------


class EwmaOperator(StreamOperator):
    """Exponentially weighted moving average of chosen numeric keys.

    Params: ``keys`` (list; default: all numeric keys), ``alpha`` in (0, 1]
    (default 0.2; 1.0 = pass-through). Smoothed values *replace* the raw
    ones so downstream operators are oblivious to the smoothing.
    """

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        return PayloadEffect(
            reads=tuple(str(k) for k in params.get("keys", ()) or ())
        )

    def configure(self) -> None:
        alpha = float(self.params.get("alpha", 0.2))
        if not 0.0 < alpha <= 1.0:
            raise RecipeError(f"{self.name}: alpha must be in (0, 1]")
        self.alpha = alpha
        self.keys = [str(k) for k in self.params.get("keys", [])] or None
        self._state: dict[str, float] = {}

    def export_state(self) -> dict[str, Any]:
        super().export_state()
        return {"state": dict(sorted(self._state.items()))}

    def import_state(self, state: dict[str, Any]) -> None:
        super().import_state(state)
        self._state = {
            str(k): float(v) for k, v in state.get("state", {}).items()
        }

    def on_record(self, stream: str, record: FlowRecord) -> None:
        nums = dict(record.datum.num_values)
        keys = self.keys if self.keys is not None else list(nums)
        for key in keys:
            value = nums.get(key)
            if value is None:
                continue
            previous = self._state.get(key)
            smoothed = (
                value
                if previous is None
                else previous + self.alpha * (value - previous)
            )
            self._state[key] = smoothed
            nums[key] = smoothed
        datum = Datum(
            string_values=dict(record.datum.string_values), num_values=nums
        )
        self.emit(record.derive(self.subtask.task_id, datum=datum))


# --------------------------------------------------------------------------
# delta (report-by-exception)
# --------------------------------------------------------------------------


class DeltaOperator(StreamOperator):
    """Emits only when a watched value moved by at least ``min_change``.

    Params: ``key`` (numeric datum key), ``min_change`` (absolute delta,
    default 0 = any change). String keys compare by inequality. The first
    record always passes (it establishes the baseline downstream).
    """

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        key = params.get("key")
        return PayloadEffect(reads=(str(key),) if key else ())

    def configure(self) -> None:
        key = self.params.get("key")
        if not key:
            raise RecipeError(f"{self.name}: delta needs 'key'")
        self.key = str(key)
        self.min_change = float(self.params.get("min_change", 0.0))
        self._last: Any = None
        self.records_suppressed = 0

    def export_state(self) -> dict[str, Any]:
        super().export_state()
        return {"last": self._last}

    def import_state(self, state: dict[str, Any]) -> None:
        super().import_state(state)
        self._last = state.get("last")

    def on_record(self, stream: str, record: FlowRecord) -> None:
        value = record.datum.num_values.get(self.key)
        if value is None:
            value = record.datum.string_values.get(self.key)
        changed = (
            self._last is None
            or (
                isinstance(value, float) and isinstance(self._last, float)
                and abs(value - self._last) >= max(self.min_change, 1e-304)
            )
            or (not isinstance(value, float) and value != self._last)
        )
        if changed:
            self._last = value
            self.emit(record.derive(self.subtask.task_id))
        else:
            self.records_suppressed += 1


# --------------------------------------------------------------------------
# throttle (rate limiting)
# --------------------------------------------------------------------------


class ThrottleOperator(StreamOperator):
    """Passes at most one record per ``interval_s`` (token-bucket of one).

    Protects downstream actuators and uplinks from bursts; the paper's
    motivation ("not efficient ... to upload massive data streams") in
    operator form. Excess records are dropped, not queued — the newest
    state will come around again on a live stream.
    """

    def configure(self) -> None:
        interval = float(self.params.get("interval_s", 0.0))
        if interval <= 0:
            raise RecipeError(f"{self.name}: throttle needs 'interval_s' > 0")
        self.interval_s = interval
        self._next_allowed = 0.0
        self.records_suppressed = 0

    def export_state(self) -> dict[str, Any]:
        super().export_state()
        return {"next_allowed": self._next_allowed}

    def import_state(self, state: dict[str, Any]) -> None:
        super().import_state(state)
        self._next_allowed = float(state.get("next_allowed", 0.0))

    def on_record(self, stream: str, record: FlowRecord) -> None:
        now = self.runtime.now
        if now < self._next_allowed:
            self.records_suppressed += 1
            return
        self._next_allowed = now + self.interval_s
        self.emit(record.derive(self.subtask.task_id))


# --------------------------------------------------------------------------
# dedup (at-least-once -> effectively-once)
# --------------------------------------------------------------------------


class DedupOperator(StreamOperator):
    """Drops records whose sample id was already seen.

    QoS 1 flows deliver at-least-once; placing a ``dedup`` in front of a
    non-idempotent consumer restores effectively-once processing. Memory
    is bounded: ids are remembered in a window of the last ``window``
    samples (default 1024).
    """

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        return PayloadEffect(dedups=True)

    def configure(self) -> None:
        window = int(self.params.get("window", 1024))
        if window <= 0:
            raise RecipeError(f"{self.name}: dedup window must be positive")
        from repro.util.ringbuffer import RingBuffer

        self._order: RingBuffer[str] = RingBuffer(window)
        self._seen: set[str] = set()
        self.duplicates_dropped = 0

    def export_state(self) -> dict[str, Any]:
        super().export_state()
        return {"order": self._order.to_list()}

    def import_state(self, state: dict[str, Any]) -> None:
        super().import_state(state)
        self._order.clear()
        self._seen.clear()
        for sample_id in state.get("order", []):
            self._order.append(str(sample_id))
            self._seen.add(str(sample_id))

    def on_record(self, stream: str, record: FlowRecord) -> None:
        if record.sample_id in self._seen:
            self.duplicates_dropped += 1
            return
        evicted = self._order.append(record.sample_id)
        if evicted is not None:
            self._seen.discard(evicted)
        self._seen.add(record.sample_id)
        self.emit(record.derive(self.subtask.task_id))


register_operator("window", WindowOperator)
register_operator("map", MapOperator)
register_operator("filter", FilterOperator)
register_operator("merge", MergeOperator)
register_operator("stat", StatOperator)
register_operator("command", CommandOperator)
register_operator("ewma", EwmaOperator)
register_operator("delta", DeltaOperator)
register_operator("throttle", ThrottleOperator)
register_operator("dedup", DedupOperator)
