"""TaskAssignment: distributing sub-tasks over neuron modules.

Paper §IV-C-1: "Task assignment class distributes the divided tasks to
among IFoT modules. ... Each node executes the assigned tasks depending on
the processing capability."

Strategies implement one method, ``choose(subtask, candidates, loads)``.
The :class:`TaskAssignment` driver handles what is common: pinned tasks,
capability filtering, load bookkeeping, and validation. The strategy
ablation of EXP-S2 compares the three built-in policies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.core.splitter import SubTask
from repro.errors import AssignmentError

__all__ = [
    "ModuleInfo",
    "Assignment",
    "AssignmentStrategy",
    "RoundRobinStrategy",
    "LoadAwareStrategy",
    "CapabilityAwareStrategy",
    "TaskAssignment",
    "OPERATOR_COSTS",
]

#: Relative cost estimate per operator type, used by load-aware placement.
#: Units are arbitrary "load points"; ratios matter, not magnitudes.
OPERATOR_COSTS: dict[str, float] = {
    "sensor": 1.0,
    "actuator": 0.5,
    "window": 1.5,
    "merge": 1.5,
    "map": 1.0,
    "filter": 0.5,
    "stat": 1.0,
    "train": 8.0,
    "predict": 4.0,
    "anomaly": 4.0,
    "cluster": 3.0,
    "mix": 2.0,
}
_DEFAULT_OPERATOR_COST = 2.0


@dataclass
class ModuleInfo:
    """What the assigner knows about one neuron module."""

    name: str
    capacity: float = 1.0  # relative processing capability
    capabilities: set[str] = field(default_factory=set)
    base_load: float = 0.0  # load already present from other applications

    def can_host(self, subtask: SubTask) -> bool:
        return set(subtask.capabilities) <= self.capabilities


@dataclass
class Assignment:
    """The result: sub-task id -> module name, plus projected loads."""

    placements: dict[str, str] = field(default_factory=dict)
    projected_load: dict[str, float] = field(default_factory=dict)

    def module_for(self, subtask_id: str) -> str:
        try:
            return self.placements[subtask_id]
        except KeyError:
            raise AssignmentError(f"no placement for {subtask_id!r}") from None

    def subtasks_on(self, module: str) -> list[str]:
        return sorted(
            sid for sid, mod in self.placements.items() if mod == module
        )

    def to_dict(self) -> dict[str, Any]:
        return {"placements": dict(self.placements)}


def estimate_cost(subtask: SubTask) -> float:
    """Load points this sub-task is expected to consume."""
    base = OPERATOR_COSTS.get(subtask.operator, _DEFAULT_OPERATOR_COST)
    # A shard of an n-way task carries ~1/n of the data.
    return base / max(1, subtask.shard_count)


class AssignmentStrategy(ABC):
    """Pluggable placement policy."""

    name = "abstract"

    @abstractmethod
    def choose(
        self,
        subtask: SubTask,
        candidates: list[ModuleInfo],
        loads: dict[str, float],
    ) -> ModuleInfo:
        """Pick one of ``candidates`` (never empty) for ``subtask``.

        ``loads`` maps module name to load points already assigned
        (including ``base_load``).
        """


class RoundRobinStrategy(AssignmentStrategy):
    """Cycle through modules in name order, ignoring load and capacity.

    The paper's prototype assigns classes to modules by hand through the
    management GUI; round-robin is the natural mechanical baseline.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self,
        subtask: SubTask,
        candidates: list[ModuleInfo],
        loads: dict[str, float],
    ) -> ModuleInfo:
        chosen = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return chosen


class LoadAwareStrategy(AssignmentStrategy):
    """Place each sub-task on the candidate with the lowest projected
    load-to-capacity ratio (greedy longest-processing-time flavour)."""

    name = "load_aware"

    def choose(
        self,
        subtask: SubTask,
        candidates: list[ModuleInfo],
        loads: dict[str, float],
    ) -> ModuleInfo:
        return min(
            candidates,
            key=lambda m: (loads.get(m.name, 0.0) / m.capacity, m.name),
        )


class CapabilityAwareStrategy(LoadAwareStrategy):
    """Load-aware, but prefers modules whose capability set is *smallest*
    among feasible candidates — keeping generally-capable modules free for
    tasks that will actually need them (a classic bin-packing heuristic)."""

    name = "capability_aware"

    def choose(
        self,
        subtask: SubTask,
        candidates: list[ModuleInfo],
        loads: dict[str, float],
    ) -> ModuleInfo:
        fewest = min(len(m.capabilities) for m in candidates)
        narrow = [m for m in candidates if len(m.capabilities) == fewest]
        return super().choose(subtask, narrow, loads)


class TaskAssignment:
    """The paper's *Task assignment class*: drives a strategy over a split
    recipe and produces a validated :class:`Assignment`."""

    def __init__(self, strategy: AssignmentStrategy | None = None) -> None:
        self.strategy = strategy if strategy is not None else LoadAwareStrategy()

    def assign(
        self, subtasks: list[SubTask], modules: list[ModuleInfo]
    ) -> Assignment:
        if not modules:
            raise AssignmentError("no modules available")
        by_name = {m.name: m for m in modules}
        if len(by_name) != len(modules):
            raise AssignmentError("duplicate module names")
        loads: dict[str, float] = {m.name: m.base_load for m in modules}
        assignment = Assignment()
        ordered_modules = sorted(modules, key=lambda m: m.name)

        for subtask in subtasks:
            module = self._place(subtask, by_name, ordered_modules, loads)
            assignment.placements[subtask.subtask_id] = module.name
            loads[module.name] += estimate_cost(subtask)

        assignment.projected_load = dict(loads)
        return assignment

    def _place(
        self,
        subtask: SubTask,
        by_name: dict[str, ModuleInfo],
        ordered_modules: list[ModuleInfo],
        loads: dict[str, float],
    ) -> ModuleInfo:
        if subtask.pin_to is not None:
            pinned = by_name.get(subtask.pin_to)
            if pinned is None:
                raise AssignmentError(
                    f"{subtask.subtask_id!r} pinned to unknown module "
                    f"{subtask.pin_to!r}"
                )
            if not pinned.can_host(subtask):
                raise AssignmentError(
                    f"{subtask.subtask_id!r} pinned to {pinned.name!r} which "
                    f"lacks capabilities {sorted(set(subtask.capabilities) - pinned.capabilities)}"
                )
            return pinned
        candidates = [m for m in ordered_modules if m.can_host(subtask)]
        if not candidates:
            raise AssignmentError(
                f"no module provides capabilities {subtask.capabilities!r} "
                f"for {subtask.subtask_id!r}"
            )
        return self.strategy.choose(subtask, candidates, loads)
