"""Flow records: the unit of data travelling through IFoT flows.

A *flow* in the paper is a topic-addressed stream of processed sensor data.
Each message on a flow is a :class:`FlowRecord`: a datum plus provenance —
where it was sensed, when, and through which processing steps it passed.
The ``sensed_at`` timestamp of the *oldest* contributing sample is
preserved across aggregation, because the paper's metric is end-to-end
latency "from the Sensing" (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SerializationError
from repro.ml.features import Datum

__all__ = ["FlowRecord", "topic_for_stream"]

#: Topic namespace layout: ifot/flow/<application>/<stream>.
_FLOW_PREFIX = "ifot/flow"


def topic_for_stream(application: str, stream: str) -> str:
    """MQTT topic carrying ``stream`` of ``application``."""
    return f"{_FLOW_PREFIX}/{application}/{stream}"


@dataclass
class FlowRecord:
    """One message on a flow.

    Attributes
    ----------
    sample_id:
        Unique id of the originating sample (aggregates keep the list of
        all contributing ids in ``merged_ids``).
    source:
        Name of the module/sensor that sensed the original data.
    sensed_at:
        Runtime timestamp of the original sensing instant (oldest
        contributor for merged records).
    datum:
        The observation payload.
    path:
        Names of the processing steps the record has passed through, in
        order — cheap provenance for debugging and tests.
    merged_ids:
        Sample ids folded into this record by window/merge operators.
    attributes:
        Free-form operator outputs (scores, labels, judgements...).
    ctx / ctx_links:
        Transient observability context (:class:`repro.obs.FlowContext`
        of the span that produced this record, plus extra parent span ids
        folded in by merges). Never serialized — on the wire the context
        travels in MQTT user-properties, so payload bytes are identical
        whether tracing is on or off.
    """

    sample_id: str
    source: str
    sensed_at: float
    datum: Datum
    path: list[str] = field(default_factory=list)
    merged_ids: list[str] = field(default_factory=list)
    attributes: dict[str, Any] = field(default_factory=dict)
    ctx: Any = field(default=None, repr=False, compare=False)
    ctx_links: list[str] = field(default_factory=list, repr=False, compare=False)

    def derive(self, step: str, datum: Datum | None = None) -> "FlowRecord":
        """A new record that went through ``step`` (provenance appended)."""
        return FlowRecord(
            sample_id=self.sample_id,
            source=self.source,
            sensed_at=self.sensed_at,
            datum=datum if datum is not None else self.datum,
            path=self.path + [step],
            merged_ids=list(self.merged_ids),
            attributes=dict(self.attributes),
            ctx=self.ctx,
            ctx_links=list(self.ctx_links),
        )

    @classmethod
    def merge(cls, step: str, records: list["FlowRecord"]) -> "FlowRecord":
        """Fold several records into one (window / fusion operators).

        Datums are merged left to right (later records win key conflicts);
        ``sensed_at`` is the oldest contributor, preserving the paper's
        sensing-anchored latency semantics.
        """
        if not records:
            raise SerializationError("cannot merge zero records")
        merged_datum = records[0].datum
        for record in records[1:]:
            merged_datum = merged_datum.merged_with(record.datum)
        oldest = min(records, key=lambda r: r.sensed_at)
        all_ids: list[str] = []
        for record in records:
            all_ids.extend(record.merged_ids or [record.sample_id])
        attributes: dict[str, Any] = {}
        for record in records:
            attributes.update(record.attributes)
        # Causality: the merged record's primary parent is the oldest
        # contributor's span; every other contributor becomes a link so the
        # span tree keeps all inbound chains.
        links: list[str] = []
        for record in records:
            for link in record.ctx_links:
                if link not in links:
                    links.append(link)
            if record.ctx is not None and record is not oldest:
                if record.ctx.span_id not in links:
                    links.append(record.ctx.span_id)
        return cls(
            sample_id=oldest.sample_id,
            source=oldest.source,
            sensed_at=oldest.sensed_at,
            datum=merged_datum,
            path=[step],
            merged_ids=all_ids,
            attributes=attributes,
            ctx=oldest.ctx,
            ctx_links=links,
        )

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready dict for MQTT transport."""
        return {
            "id": self.sample_id,
            "src": self.source,
            "ts": self.sensed_at,
            "datum": self.datum.to_payload(),
            "path": list(self.path),
            "merged": list(self.merged_ids),
            "attrs": dict(self.attributes),
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "FlowRecord":
        if not isinstance(payload, dict) or "id" not in payload:
            raise SerializationError(f"not a flow record payload: {payload!r}")
        try:
            return cls(
                sample_id=str(payload["id"]),
                source=str(payload["src"]),
                sensed_at=float(payload["ts"]),
                datum=Datum.from_payload(payload["datum"]),
                path=[str(p) for p in payload.get("path", [])],
                merged_ids=[str(m) for m in payload.get("merged", [])],
                attributes=dict(payload.get("attrs", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed flow record: {exc}") from exc
