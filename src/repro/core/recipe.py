"""Recipes: declarative task graphs for flow processing (paper Fig. 5).

A *recipe* is "a configuration file describing a processing procedure of
IoT data streams ... described as a task graph" (§IV-C). Here a recipe is a
named set of :class:`TaskSpec` nodes connected by named *streams*: a task
consumes the streams in ``inputs`` and produces those in ``outputs``.
Streams map one-to-one onto MQTT topics at deployment time, which is what
makes every intermediate flow independently subscribable — the paper's
"secondary / tertiary use" of curated streams (§VI).

The paper lists "definition of the language to describe recipes" as future
work; the JSON DSL accepted by :meth:`Recipe.from_dict` /
:meth:`Recipe.from_json` is this repository's concrete proposal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import RecipeError
from repro.util.validate import require_name

__all__ = ["TaskSpec", "Recipe"]


@dataclass
class TaskSpec:
    """One node of the task graph.

    Attributes
    ----------
    task_id:
        Recipe-unique name.
    operator:
        Registry name of the operator to instantiate
        (see :mod:`repro.core.operators`).
    inputs / outputs:
        Stream names consumed / produced.
    params:
        Operator-specific configuration (window sizes, model algorithm...).
    capabilities:
        Capability tags the hosting module must provide (e.g.
        ``sensor:accel`` or ``actuator:light``); used by capability-aware
        assignment.
    parallelism:
        Number of shard instances RecipeSplit should create (data-parallel
        fan-out; 1 = a single instance).
    pin_to:
        Optional module name forcing placement (sensors and actuators are
        usually pinned to the module physically wired to the device).
    deadline_ms:
        Optional end-to-end deadline for records finishing at this task,
        in milliseconds from the sensing instant at the flow's root.
        Declared on sinks; the static latency-bound analyzer
        (:mod:`repro.lint.latency`) rejects recipes whose computed
        worst-case bound exceeds it (RCP240).
    """

    task_id: str
    operator: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)
    capabilities: list[str] = field(default_factory=list)
    parallelism: int = 1
    pin_to: str | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        require_name(self.task_id, "task_id")
        require_name(self.operator, "operator")
        if self.parallelism < 1:
            raise RecipeError(
                f"task {self.task_id!r}: parallelism must be >= 1"
            )
        if self.deadline_ms is not None:
            self.deadline_ms = float(self.deadline_ms)
            if not self.deadline_ms > 0:
                raise RecipeError(
                    f"task {self.task_id!r}: deadline_ms must be positive"
                )

    def to_dict(self) -> dict[str, Any]:
        result: dict[str, Any] = {
            "id": self.task_id,
            "operator": self.operator,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "params": dict(self.params),
        }
        if self.capabilities:
            result["capabilities"] = list(self.capabilities)
        if self.parallelism != 1:
            result["parallelism"] = self.parallelism
        if self.pin_to is not None:
            result["pin_to"] = self.pin_to
        if self.deadline_ms is not None:
            result["deadline_ms"] = self.deadline_ms
        return result

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TaskSpec":
        unknown = set(data) - {
            "id", "operator", "inputs", "outputs", "params",
            "capabilities", "parallelism", "pin_to", "deadline_ms",
        }
        if unknown:
            raise RecipeError(f"unknown task fields: {sorted(unknown)}")
        try:
            return cls(
                task_id=data["id"],
                operator=data["operator"],
                inputs=list(data.get("inputs", [])),
                outputs=list(data.get("outputs", [])),
                params=dict(data.get("params", {})),
                capabilities=list(data.get("capabilities", [])),
                parallelism=int(data.get("parallelism", 1)),
                pin_to=data.get("pin_to"),
                deadline_ms=data.get("deadline_ms"),
            )
        except KeyError as exc:
            raise RecipeError(f"task missing required field {exc}") from None


class Recipe:
    """A validated task graph.

    Validation enforces: unique task ids, every stream has at most one
    producer, every consumed stream has a producer (no dangling inputs),
    and the graph is acyclic. Construction fails loudly — a recipe that
    validates will deploy.
    """

    def __init__(
        self, name: str, tasks: Iterable[TaskSpec], priority: int = 0
    ) -> None:
        self.name = require_name(name, "recipe name")
        #: Degradation rank: when surviving capacity cannot host every
        #: application, lower-priority recipes are shed first (ties break
        #: by name). 0 is the default tier.
        self.priority = int(priority)
        self.tasks: dict[str, TaskSpec] = {}
        for task in tasks:
            if task.task_id in self.tasks:
                raise RecipeError(f"duplicate task id {task.task_id!r}")
            self.tasks[task.task_id] = task
        if not self.tasks:
            raise RecipeError(f"recipe {name!r} has no tasks")
        self._producers = self._index_producers()
        self._check_inputs()
        self._order = self._topological_order()

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------

    def _index_producers(self) -> dict[str, str]:
        producers: dict[str, str] = {}
        for task in self.tasks.values():
            for stream in task.outputs:
                if stream in producers:
                    raise RecipeError(
                        f"stream {stream!r} produced by both "
                        f"{producers[stream]!r} and {task.task_id!r}"
                    )
                producers[stream] = task.task_id
        return producers

    def _check_inputs(self) -> None:
        for task in self.tasks.values():
            for stream in task.inputs:
                if ":" in stream:
                    # External reference "<application>:<stream>" — the
                    # producer lives in another application (secondary /
                    # tertiary use of curated streams, paper §VI) and
                    # cannot be validated here.
                    app, _sep, remote = stream.partition(":")
                    if not app or not remote:
                        raise RecipeError(
                            f"task {task.task_id!r}: malformed external "
                            f"stream reference {stream!r} "
                            "(expected '<application>:<stream>')"
                        )
                    continue
                if stream not in self._producers:
                    raise RecipeError(
                        f"task {task.task_id!r} consumes stream {stream!r} "
                        "which no task produces"
                    )

    def producer_of(self, stream: str) -> str:
        """Task id producing ``stream``."""
        try:
            return self._producers[stream]
        except KeyError:
            raise RecipeError(f"no producer for stream {stream!r}") from None

    def external_inputs(self) -> list[str]:
        """All cross-application stream references consumed by this recipe."""
        return sorted(
            {
                stream
                for task in self.tasks.values()
                for stream in task.inputs
                if ":" in stream
            }
        )

    def consumers_of(self, stream: str) -> list[str]:
        """Task ids consuming ``stream`` (sorted for determinism)."""
        return sorted(
            task.task_id for task in self.tasks.values() if stream in task.inputs
        )

    def upstream_of(self, task_id: str) -> set[str]:
        """Direct predecessor task ids (external inputs have none here)."""
        task = self.tasks[task_id]
        return {
            self._producers[stream]
            for stream in task.inputs
            if ":" not in stream
        }

    def _topological_order(self) -> list[str]:
        in_degree = {tid: len(self.upstream_of(tid)) for tid in self.tasks}
        ready = sorted(tid for tid, deg in in_degree.items() if deg == 0)
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for task in sorted(self.tasks.values(), key=lambda t: t.task_id):
                if current in self.upstream_of(task.task_id):
                    in_degree[task.task_id] -= 1
                    if in_degree[task.task_id] == 0:
                        # Insert keeping 'ready' sorted for determinism.
                        ready.append(task.task_id)
                        ready.sort()
        if len(order) != len(self.tasks):
            remaining = sorted(set(self.tasks) - set(order))
            raise RecipeError(f"recipe has a cycle involving {remaining}")
        return order

    @property
    def topological_order(self) -> list[str]:
        """Task ids in dependency order."""
        return list(self._order)

    def stages(self) -> list[list[str]]:
        """Tasks grouped into parallel stages (same depth = same stage).

        Stage k contains every task whose longest path from a source has
        length k; all tasks within a stage are mutually independent and
        "can be executed in parallel" (§IV-C-1).
        """
        depth: dict[str, int] = {}
        for task_id in self._order:
            upstream = self.upstream_of(task_id)
            depth[task_id] = 1 + max((depth[u] for u in upstream), default=-1)
        stage_count = max(depth.values()) + 1
        stages: list[list[str]] = [[] for _ in range(stage_count)]
        for task_id in self._order:
            stages[depth[task_id]].append(task_id)
        return stages

    @property
    def streams(self) -> list[str]:
        return sorted(self._producers)

    # ------------------------------------------------------------------
    # DSL
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        result: dict[str, Any] = {
            "recipe": self.name,
            "tasks": [self.tasks[tid].to_dict() for tid in self._order],
        }
        if self.priority != 0:
            result["priority"] = self.priority
        return result

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Recipe":
        if not isinstance(data, dict):
            raise RecipeError(f"recipe must be a dict, got {type(data).__name__}")
        if "recipe" not in data or "tasks" not in data:
            raise RecipeError("recipe dict needs 'recipe' (name) and 'tasks'")
        tasks = [TaskSpec.from_dict(entry) for entry in data["tasks"]]
        return cls(data["recipe"], tasks, priority=int(data.get("priority", 0)))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Recipe":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RecipeError(f"recipe is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Recipe({self.name!r}, {len(self.tasks)} tasks)"
