"""Flow distribution: the Publish / Broker / Subscribe classes (Fig. 4).

Paper §IV-C-3: "the publish / subscribe system is adopted for flow
distribution between IFoT nodes, aiming to realize loosely coupled flows
and scalable messaging. Publication class is placed in the sending side,
subscription class is placed in the receiving side ... Broker class manages
the distribution of data in accordance with the topic."

The Broker class is :class:`repro.mqtt.Broker` (re-exported here under the
paper's name); PublishClass and SubscribeClass adapt the MQTT client to
typed :class:`~repro.core.flow.FlowRecord` traffic on application streams.
"""

from __future__ import annotations

from typing import Callable

from repro.core.flow import FlowRecord, topic_for_stream
from repro.mqtt.broker import Broker as BrokerClass
from repro.mqtt.client import MqttClient
from repro.mqtt.packets import Packet
from repro.obs.context import FlowContext
from repro.runtime.component import Component
from repro.runtime.node import Node
from repro.errors import SerializationError

__all__ = ["PublishClass", "SubscribeClass", "BrokerClass"]

#: Callback signature for typed flow delivery: (stream, record).
RecordCallback = Callable[[str, FlowRecord], None]


class PublishClass(Component):
    """Sending side of a flow: typed publish of FlowRecords on one stream."""

    def __init__(
        self,
        node: Node,
        client: MqttClient,
        application: str,
        stream: str,
        qos: int = 0,
    ) -> None:
        super().__init__(node, f"pub.{application}.{stream}@{node.name}")
        self.client = client
        self.application = application
        self.stream = stream
        self.topic = topic_for_stream(application, stream)
        self.qos = qos
        self.records_published = 0

    def publish_record(self, record: FlowRecord) -> None:
        """Serialize and publish one record on this flow's topic."""
        self.records_published += 1  # repro: san-ok[SAN020] commutative counter
        self.trace(
            "flow.publish",
            topic=self.topic,
            sample_id=record.sample_id,
            sensed_at=record.sensed_at,
        )
        headers = {"published_at": self.runtime.now, "stream": self.stream}
        obs = self.runtime.obs
        if obs is not None and record.ctx is not None:
            # The publish hop is a point span; its context travels to the
            # broker in the message user-properties, never in the payload.
            ctx = obs.point(
                "publish",
                self.node,
                parent=record.ctx,
                links=tuple(record.ctx_links),
                stream=self.stream,
                sample=record.sample_id,
            )
            headers["obs"] = ctx.to_wire()
        self.client.publish(
            self.topic,
            record.to_payload(),
            qos=self.qos,
            headers=headers,
        )


class SubscribeClass(Component):
    """Receiving side of a flow: decodes FlowRecords and hands them to a
    callback.

    Stream names resolve within ``application`` by default; a name of the
    form ``"<other-app>:<stream>"`` subscribes to another application's
    flow instead — the paper's "secondary / tertiary use" of curated
    streams (§VI). The callback receives the name exactly as given.
    """

    def __init__(
        self,
        node: Node,
        client: MqttClient,
        application: str,
        streams: list[str],
        callback: RecordCallback,
        qos: int = 0,
    ) -> None:
        super().__init__(node, f"sub.{application}@{node.name}")
        self.client = client
        self.application = application
        self.callback = callback
        self.records_received = 0
        self.decode_errors = 0
        self._by_topic: dict[str, str] = {}
        for stream in streams:
            if ":" in stream:
                other_app, _sep, remote = stream.partition(":")
                topic = topic_for_stream(other_app, remote)
            else:
                topic = topic_for_stream(application, stream)
            self._by_topic[topic] = stream
        self._subscriptions = [
            client.subscribe(topic, self._on_message, qos=qos)
            for topic in sorted(self._by_topic)
        ]

    @property
    def streams(self) -> list[str]:
        return sorted(self._by_topic.values())

    def _on_message(self, topic: str, payload: object, _packet: Packet) -> None:
        if self.stopped:
            return
        stream = self._by_topic.get(topic)
        if stream is None:
            return
        try:
            record = FlowRecord.from_payload(payload)
        except SerializationError:
            self.decode_errors += 1  # repro: san-ok[SAN020] commutative counter
            self.trace("flow.decode_error", topic=topic)
            return
        if self.runtime.obs is not None:
            headers = _packet.get("headers") or {}
            wire = headers.get("obs")
            if wire is not None:
                record.ctx = FlowContext.from_wire(wire)
        self.records_received += 1  # repro: san-ok[SAN020] commutative counter
        self.callback(stream, record)

    def on_stop(self) -> None:
        for subscription in self._subscriptions:
            self.client.unsubscribe(subscription)
        self._subscriptions.clear()  # repro: san-ok[SAN020] idempotent teardown
