"""Flow models: the bridge between flow records and the ML substrate.

LearningClass and JudgingClass are model-agnostic; a :class:`FlowModel`
adapts one of the online learners to the two verbs the analysis mechanism
needs — ``train(record)`` and ``judge(record)`` — and declares whether it
can take part in MIX. Models are built from recipe params via
:func:`build_flow_model`, so recipes stay declarative.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.core.flow import FlowRecord
from repro.errors import ModelError, RecipeError
from repro.ml.anomaly import LofLite, RobustZScore
from repro.ml.classifier import OnlineClassifier
from repro.ml.clustering import OnlineKMeans
from repro.ml.features import Datum
from repro.ml.neighbors import NearestNeighbors
from repro.ml.regression import PARegression
from repro.ml.tree import HoeffdingTreeClassifier

__all__ = ["FlowModel", "build_flow_model"]


class FlowModel(ABC):
    """One online model with record-level train/judge verbs."""

    #: True if the underlying model supports collect_diff/apply_mixed.
    mixable = False

    @abstractmethod
    def train(self, record: FlowRecord) -> dict[str, Any]:
        """Absorb one record; returns training info (for traces)."""

    @abstractmethod
    def judge(self, record: FlowRecord) -> dict[str, Any]:
        """Evaluate one record; returns judgement attributes."""

    @property
    @abstractmethod
    def ready(self) -> bool:
        """Can :meth:`judge` produce meaningful output yet?"""

    def mix_model(self) -> Any:
        """The Mixable model object (only if ``mixable``)."""
        raise ModelError(f"{type(self).__name__} does not support MIX")

    def true_label(self, record: FlowRecord) -> str | None:
        """The supervision label carried by ``record``, if any (used for
        prequential accuracy tracking in LearningClass)."""
        return None

    def export_state(self) -> dict[str, Any]:
        """Serializable model snapshot (for train->judge model shipping)."""
        raise ModelError(f"{type(self).__name__} does not support snapshots")

    def import_state(self, state: dict[str, Any]) -> None:
        """Load a snapshot produced by :meth:`export_state`."""
        raise ModelError(f"{type(self).__name__} does not support snapshots")


def _strip_keys(datum: Datum, keys: set[str]) -> Datum:
    """Datum without the given keys (labels must not leak into features)."""
    return Datum(
        string_values={k: v for k, v in datum.string_values.items() if k not in keys},
        num_values={k: v for k, v in datum.num_values.items() if k not in keys},
    )


class ClassifierFlowModel(FlowModel):
    """Multiclass classification; the label rides in the datum or the
    record attributes under ``label_key``."""

    mixable = True

    def __init__(
        self, label_key: str = "label", algorithm: str = "pa1", **params: Any
    ) -> None:
        self.label_key = label_key
        self.classifier = OnlineClassifier(algorithm=algorithm, **params)

    def _features_datum(self, record: FlowRecord) -> Datum:
        return _strip_keys(record.datum, {self.label_key})

    def _label_of(self, record: FlowRecord) -> str | None:
        label = record.datum.string_values.get(self.label_key)
        if label is None:
            label = record.attributes.get(self.label_key)
        return str(label) if label is not None else None

    def true_label(self, record: FlowRecord) -> str | None:
        return self._label_of(record)

    def train(self, record: FlowRecord) -> dict[str, Any]:
        label = self._label_of(record)
        if label is None:
            return {"trained": False, "reason": "no-label"}
        updated = self.classifier.train(self._features_datum(record), label)
        return {"trained": True, "updated": updated, "label": label}

    def judge(self, record: FlowRecord) -> dict[str, Any]:
        result = self.classifier.classify(self._features_datum(record))
        return {"label": result.label, "margin": result.margin()}

    @property
    def ready(self) -> bool:
        return self.classifier.is_trained

    def mix_model(self) -> Any:
        return self.classifier.learner

    def export_state(self) -> dict[str, Any]:
        return self.classifier.to_state()

    def import_state(self, state: dict[str, Any]) -> None:
        self.classifier.load_state(state)


class RegressionFlowModel(FlowModel):
    """PA regression; the target rides under ``target_key``."""

    mixable = True

    def __init__(
        self, target_key: str = "target", c: float = 1.0, epsilon: float = 0.1
    ) -> None:
        self.target_key = target_key
        self.regressor = PARegression(c=c, epsilon=epsilon)
        self._trained = 0

    def _features_datum(self, record: FlowRecord) -> Datum:
        return _strip_keys(record.datum, {self.target_key})

    def train(self, record: FlowRecord) -> dict[str, Any]:
        target = record.datum.num_values.get(self.target_key)
        if target is None:
            target = record.attributes.get(self.target_key)
        if target is None:
            return {"trained": False, "reason": "no-target"}
        updated = self.regressor.train(self._features_datum(record), float(target))
        self._trained += 1
        return {"trained": True, "updated": updated}

    def judge(self, record: FlowRecord) -> dict[str, Any]:
        return {"prediction": self.regressor.predict(self._features_datum(record))}

    @property
    def ready(self) -> bool:
        return self._trained > 0

    def mix_model(self) -> Any:
        return self.regressor

    def export_state(self) -> dict[str, Any]:
        return self.regressor.to_state()

    def import_state(self, state: dict[str, Any]) -> None:
        self.regressor.load_state(state)
        if self.regressor.examples_seen > 0:
            self._trained = max(self._trained, 1)


class AnomalyFlowModel(FlowModel):
    """Streaming anomaly scoring. Judging both scores *and* learns (the
    detector adapts to the live stream), so a single 'anomaly' task covers
    the Fig. 5 'Anomaly detection' nodes."""

    def __init__(
        self,
        detector: str = "zscore",
        threshold: float = 4.0,
        learn_on_judge: bool = True,
        **params: Any,
    ) -> None:
        if detector == "zscore":
            self.detector: Any = RobustZScore(
                min_samples=int(params.pop("min_samples", 10))
            )
        elif detector == "lof":
            self.detector = LofLite(
                k=int(params.pop("k", 5)), window=int(params.pop("window", 256))
            )
        else:
            raise RecipeError(f"unknown anomaly detector {detector!r}")
        if params:
            raise RecipeError(f"unknown anomaly params {sorted(params)}")
        self.threshold = threshold
        self.learn_on_judge = learn_on_judge
        self._seen = 0

    def train(self, record: FlowRecord) -> dict[str, Any]:
        score = self.detector.add(record.datum)
        self._seen += 1
        return {"trained": True, "score": score}

    def judge(self, record: FlowRecord) -> dict[str, Any]:
        if self.learn_on_judge:
            score = self.detector.add(record.datum)
            self._seen += 1
        else:
            score = self.detector.calc_score(record.datum)
        return {"score": score, "anomalous": bool(score > self.threshold)}

    @property
    def ready(self) -> bool:
        return self._seen > 0


class ClusterFlowModel(FlowModel):
    """Online k-means; judging assigns the nearest cluster."""

    def __init__(self, k: int = 3, decay: float = 1.0) -> None:
        self.kmeans = OnlineKMeans(k=k, decay=decay)

    def train(self, record: FlowRecord) -> dict[str, Any]:
        cluster = self.kmeans.push(record.datum)
        return {"trained": True, "cluster": cluster}

    def judge(self, record: FlowRecord) -> dict[str, Any]:
        index, distance = self.kmeans.nearest(record.datum)
        return {"cluster": index, "distance": distance}

    @property
    def ready(self) -> bool:
        return self.kmeans.cluster_count > 0

    def export_state(self) -> dict[str, Any]:
        return self.kmeans.to_state()

    def import_state(self, state: dict[str, Any]) -> None:
        self.kmeans.load_state(state)


class KnnFlowModel(FlowModel):
    """k-NN over a bounded window of recent labelled records.

    Each trained record becomes a row keyed by its sample id; judging
    takes a majority vote among the ``k`` nearest rows. Useful where a
    linear boundary underfits and the recent past is the best model.
    """

    def __init__(
        self,
        label_key: str = "label",
        k: int = 5,
        window: int = 512,
        metric: str = "euclidean",
    ) -> None:
        self.label_key = label_key
        self.k = k
        self.index = NearestNeighbors(window=window, metric=metric)
        self._labelled = 0

    def _features_datum(self, record: FlowRecord) -> Datum:
        return _strip_keys(record.datum, {self.label_key})

    def true_label(self, record: FlowRecord) -> str | None:
        label = record.datum.string_values.get(self.label_key)
        if label is None:
            label = record.attributes.get(self.label_key)
        return str(label) if label is not None else None

    def train(self, record: FlowRecord) -> dict[str, Any]:
        label = self.true_label(record)
        if label is None:
            return {"trained": False, "reason": "no-label"}
        self.index.set_row(
            record.sample_id, self._features_datum(record), label=label
        )
        self._labelled += 1
        return {"trained": True, "label": label}

    def judge(self, record: FlowRecord) -> dict[str, Any]:
        label, votes = self.index.classify(self._features_datum(record), k=self.k)
        return {"label": label, "votes": votes}

    @property
    def ready(self) -> bool:
        return self._labelled > 0

    def export_state(self) -> dict[str, Any]:
        return self.index.to_state()

    def import_state(self, state: dict[str, Any]) -> None:
        self.index.load_state(state)
        self._labelled = max(self._labelled, len(self.index))


class TreeFlowModel(FlowModel):
    """Hoeffding-tree classification over numeric datum values.

    Handles rule-like, non-linear concepts ("occupied AND dark") that the
    linear classifier family cannot represent. Not mixable (tree structure
    does not average), but snapshots ship fine.
    """

    def __init__(self, label_key: str = "label", **params: Any) -> None:
        self.label_key = label_key
        self.tree = HoeffdingTreeClassifier(**params)

    def true_label(self, record: FlowRecord) -> str | None:
        label = record.datum.string_values.get(self.label_key)
        if label is None:
            label = record.attributes.get(self.label_key)
        return str(label) if label is not None else None

    def _features(self, record: FlowRecord) -> dict[str, float]:
        return {
            k: v
            for k, v in record.datum.num_values.items()
            if k != self.label_key
        }

    def train(self, record: FlowRecord) -> dict[str, Any]:
        label = self.true_label(record)
        if label is None:
            return {"trained": False, "reason": "no-label"}
        grew = self.tree.train(self._features(record), label)
        return {"trained": True, "label": label, "grew": grew}

    def judge(self, record: FlowRecord) -> dict[str, Any]:
        label, probabilities = self.tree.classify(self._features(record))
        return {"label": label, "confidence": probabilities.get(label, 0.0)}

    @property
    def ready(self) -> bool:
        return self.tree.is_trained

    def export_state(self) -> dict[str, Any]:
        return self.tree.to_state()

    def import_state(self, state: dict[str, Any]) -> None:
        self.tree.load_state(state)


_MODEL_KINDS = {
    "classifier": ClassifierFlowModel,
    "regression": RegressionFlowModel,
    "anomaly": AnomalyFlowModel,
    "cluster": ClusterFlowModel,
    "knn": KnnFlowModel,
    "tree": TreeFlowModel,
}


def build_flow_model(params: dict[str, Any]) -> FlowModel:
    """Construct a flow model from recipe params.

    ``params['model']`` selects the kind (classifier / regression /
    anomaly / cluster); the rest are forwarded to that model's constructor.
    """
    config = dict(params)
    kind = config.pop("model", "classifier")
    cls = _MODEL_KINDS.get(kind)
    if cls is None:
        raise RecipeError(
            f"unknown model kind {kind!r}; choose from {sorted(_MODEL_KINDS)}"
        )
    try:
        return cls(**config)
    except TypeError as exc:
        raise RecipeError(f"bad params for model {kind!r}: {exc}") from exc
