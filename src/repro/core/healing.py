"""Self-healing control plane: failure detection and degradation policy.

Three pieces the management node composes into autonomous recovery:

* :class:`FailureDetector` — a deterministic, seeded phi-accrual-style
  liveness detector over the registry heartbeats the directory already
  receives. Suspicion is the ratio of observed silence to the EWMA of
  the peer's inter-announcement interval; crossing ``suspect_phi`` marks
  the peer suspect, crossing ``confirm_phi`` confirms the failure and
  fires the management callback. Announcements are incarnation-stamped,
  so a heartbeat left in flight by a dead boot can never resurrect it.
* :func:`plan_degradation` — when surviving capacity cannot host every
  application (measured in the calibrated CPU-utilization currency of
  :mod:`repro.lint.rates`), decide which applications to shed, lowest
  :attr:`~repro.core.recipe.Recipe.priority` first.
* :func:`recovery_report` — distill a finished trace into the questions
  an operator asks after a fault: how fast was it detected, how long did
  each migration take, how many records were in flight across the
  handoff, and what got shed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.runtime.component import Component
from repro.runtime.node import Node
from repro.runtime.state import tracked_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.discovery import StreamDirectory
    from repro.core.recipe import Recipe
    from repro.core.splitter import SubTask
    from repro.sim.trace import Tracer

__all__ = [
    "PeerRecord",
    "FailureDetector",
    "AppLoad",
    "DegradationPlan",
    "plan_degradation",
    "recipe_utilization",
    "RecoveryReport",
    "recovery_report",
]


# ----------------------------------------------------------------------
# Failure detector
# ----------------------------------------------------------------------

ALIVE = "alive"
SUSPECT = "suspect"
CONFIRMED = "confirmed"


@dataclass
class PeerRecord:
    """Liveness accrual state for one monitored module."""

    name: str
    incarnation: int
    last_at: float
    #: EWMA of observed inter-heartbeat intervals; ``None`` until the
    #: second heartbeat arrives (the prior is the announced cadence).
    interval_ewma: float | None = None
    state: str = ALIVE
    heartbeats: int = 1


class FailureDetector(Component):
    """Phi-accrual-style failure detection over registry heartbeats.

    phi for a peer is ``silence / interval``: how many expected heartbeat
    periods have elapsed without one. Two thresholds split the verdict:
    ``suspect_phi`` (report, do not act) and ``confirm_phi`` (declare the
    peer failed and fire ``on_confirm``). The evaluation timer carries a
    seeded phase offset, mirroring the MQTT client watchdog: a detector
    synchronized to the heartbeat period would make "did the heartbeat
    beat the verdict" an accident of same-instant event ordering.

    Incarnation handling:

    * a heartbeat stamped *below* the recorded incarnation is from a dead
      boot (in flight across a restart, or a replayed retained message)
      — traced as ``detector.stale_heartbeat`` and ignored, so confirmed
      peers stay confirmed;
    * an *equal* incarnation heartbeat from a suspect/confirmed peer
      refutes the verdict (the boot is provably still alive — a blip,
      not a crash);
    * a *higher* incarnation resets the record: the predecessor's death
      is history, the successor starts with a clean accrual.
    """

    def __init__(
        self,
        node: Node,
        directory: "StreamDirectory",
        expected_interval_s: float,
        suspect_phi: float = 2.0,
        confirm_phi: float = 3.0,
        evaluate_interval_s: float | None = None,
        on_suspect: Callable[[str], None] | None = None,
        on_confirm: Callable[[str], None] | None = None,
        exclude: Iterable[str] = (),
        connected: Callable[[], bool] | None = None,
    ) -> None:
        super().__init__(node, f"detector@{node.name}")
        if not 0.0 < suspect_phi <= confirm_phi:
            raise ValueError(
                f"need 0 < suspect_phi <= confirm_phi, got "
                f"{suspect_phi}/{confirm_phi}"
            )
        self.directory = directory
        self.expected_interval_s = float(expected_interval_s)
        self.suspect_phi = float(suspect_phi)
        self.confirm_phi = float(confirm_phi)
        self.on_suspect = on_suspect
        self.on_confirm = on_confirm
        self.exclude = set(exclude)
        #: Observer liveness probe: heartbeats arrive over the observer's
        #: own broker session, so while that session is down, silence is
        #: evidence about *us*, not about the peers.
        self.connected = connected
        self.peers: dict[str, PeerRecord] = {}
        self.suspects_raised = 0
        self.confirms_raised = 0
        self.refutes = 0
        self.stale_heartbeats = 0
        # The peers map is written by heartbeat arrivals and read/written
        # by the evaluation timer — exactly the cross-event state the
        # schedule sanitizer must see.
        self._peers_cell = tracked_state(
            node.runtime, f"detector.{node.name}", "peers"
        )
        interval = (
            float(evaluate_interval_s)
            if evaluate_interval_s is not None
            else self.expected_interval_s / 2.0
        )
        # Seeded phase offset (same idiom as the MQTT client watchdog):
        # keeps the evaluation tick off the exact instants heartbeat
        # timers of the same period fire.
        phase_rng = node.runtime.rng.stream(f"detector.{node.name}")
        phase = phase_rng.uniform(0.05, 0.95) * interval
        self.every(interval, self._evaluate, start_delay=phase)
        directory.watch_heartbeats(self._on_heartbeat)
        directory.watch_members(self._on_member)

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    def _on_heartbeat(self, name: str, incarnation: int, now: float) -> None:
        if self.stopped or name in self.exclude:
            return
        peer = self.peers.get(name)
        if peer is None:
            self._peers_cell.note_write()
            self.peers[name] = PeerRecord(
                name=name, incarnation=incarnation, last_at=now
            )
            return
        if incarnation < peer.incarnation:
            self.stale_heartbeats += 1
            self.trace(
                "detector.stale_heartbeat",
                module=name,
                incarnation=incarnation,
                current=peer.incarnation,
            )
            self._count("detector.stale_heartbeats")
            return
        self._peers_cell.note_write()
        if incarnation > peer.incarnation:
            # Fresh boot: the accrual history belongs to the dead
            # predecessor; start over.
            self.peers[name] = PeerRecord(
                name=name, incarnation=incarnation, last_at=now
            )
            self.trace(
                "detector.reincarnated",
                module=name,
                incarnation=incarnation,
                previous=peer.incarnation,
            )
            return
        interval = now - peer.last_at
        if interval > 0.0:
            peer.interval_ewma = (
                interval
                if peer.interval_ewma is None
                else 0.3 * interval + 0.7 * peer.interval_ewma
            )
        peer.last_at = now
        peer.heartbeats += 1
        if peer.state != ALIVE:
            self.refutes += 1
            self.trace(
                "detector.refute",
                module=name,
                was=peer.state,
                incarnation=incarnation,
            )
            self._count("detector.refutes")
            peer.state = ALIVE

    def _on_member(self, name: str, alive: bool) -> None:
        if self.stopped or name in self.exclude:
            return
        if not alive and name in self.peers:
            # The membership layer (tombstone or TTL expiry) already
            # declared the departure; drop the accrual record so the
            # detector does not re-confirm a death everyone knows about.
            self._peers_cell.note_write()
            self.peers.pop(name, None)
            self.trace("detector.forget", module=name)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def phi(self, peer: PeerRecord, now: float) -> float:
        """Silence measured in expected heartbeat intervals.

        The basis is clamped from below to the announced cadence: modules
        also announce on every deploy, capability change and reconnect,
        so observed intervals can be milliseconds apart — letting those
        shrink the basis would turn one quiet heartbeat period into
        hundreds of apparent missed intervals (a false confirm that
        resurrects a second live instance, exactly what the
        exactly-once-per-incarnation invariant forbids). A cadence
        *slower* than expected still raises the basis.
        """
        basis = self.expected_interval_s
        if peer.interval_ewma is not None:
            basis = max(basis, peer.interval_ewma)
        return (now - peer.last_at) / max(basis, 1e-6)

    def _evaluate(self) -> None:
        now = self.runtime.now
        self._peers_cell.note_read()
        if self.connected is not None and not self.connected():
            # Hold accrual while cut off from the broker (e.g. across a
            # broker restart: every peer goes silent at once because *our*
            # session is gone). Advancing last_at restarts each peer's
            # accrual from the reconnect instant, granting the same grace
            # a fresh heartbeat would.
            self._peers_cell.note_write()
            for peer in self.peers.values():
                peer.last_at = max(peer.last_at, now)
            return
        for name in sorted(self.peers):
            peer = self.peers[name]
            if peer.state == CONFIRMED:
                continue
            phi = self.phi(peer, now)
            if phi >= self.confirm_phi:
                self._peers_cell.note_write()
                if peer.state == ALIVE:
                    # Jumped both thresholds in one tick: keep the state
                    # machine's trace sequence complete.
                    self._mark_suspect(peer, phi)
                peer.state = CONFIRMED
                self.confirms_raised += 1
                elapsed = now - peer.last_at
                self.trace(
                    "detector.confirm",
                    module=name,
                    incarnation=peer.incarnation,
                    phi=round(phi, 3),
                    silence_s=round(elapsed, 6),
                )
                self._count("detector.confirms")
                obs = self.runtime.obs
                if obs is not None and obs.metrics is not None:
                    obs.metrics.histogram(
                        "detector.detection_s", node=self.node.name
                    ).observe(elapsed)
                if self.on_confirm is not None:
                    self.on_confirm(name)
            elif phi >= self.suspect_phi and peer.state == ALIVE:
                self._peers_cell.note_write()
                self._mark_suspect(peer, phi)

    def _mark_suspect(self, peer: PeerRecord, phi: float) -> None:
        peer.state = SUSPECT
        self.suspects_raised += 1
        self.trace(
            "detector.suspect",
            module=peer.name,
            incarnation=peer.incarnation,
            phi=round(phi, 3),
        )
        self._count("detector.suspects")
        if self.on_suspect is not None:
            self.on_suspect(peer.name)

    def _count(self, name: str) -> None:
        obs = self.runtime.obs
        if obs is not None and obs.metrics is not None:
            obs.metrics.counter(name, node=self.node.name).inc()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-peer view for dashboards and tests (no sanitizer access)."""
        now = self.runtime.now
        return {
            name: {
                "state": peer.state,
                "incarnation": peer.incarnation,
                "phi": round(self.phi(peer, now), 3),
                "heartbeats": peer.heartbeats,
            }
            for name, peer in sorted(self.peers.items())
        }


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AppLoad:
    """One application's demand on the surviving capacity."""

    application: str
    priority: int
    #: CPU-seconds per second (calibrated cost model currency) the app
    #: needs from the surviving modules — already-placed subtasks plus
    #: the orphans awaiting re-placement.
    utilization: float


@dataclass(frozen=True)
class DegradationPlan:
    """Outcome of the shed-by-priority feasibility pass."""

    demand: float
    capacity: float
    shed: tuple[AppLoad, ...]
    #: Demand left after shedding; ``<= capacity`` iff :attr:`feasible`.
    residual: float

    @property
    def feasible(self) -> bool:
        return self.residual <= self.capacity + 1e-9


def plan_degradation(loads: list[AppLoad], capacity: float) -> DegradationPlan:
    """Shed applications (lowest priority first) until demand fits.

    Ties break by application name for determinism. The last surviving
    application is never shed: running one application degraded beats
    running nothing, and the caller traces the residual overcommit.
    """
    demand = sum(load.utilization for load in loads)
    residual = demand
    shed: list[AppLoad] = []
    candidates = sorted(loads, key=lambda load: (load.priority, load.application))
    while residual > capacity and len(candidates) > 1:
        victim = candidates.pop(0)
        shed.append(victim)
        residual -= victim.utilization
    return DegradationPlan(
        demand=demand, capacity=capacity, shed=tuple(shed), residual=residual
    )


def recipe_utilization(recipe: "Recipe", subtasks: Iterable["SubTask"]) -> float:
    """Calibrated CPU demand (util/sec) of ``subtasks`` of ``recipe``.

    Uses the statically propagated rates and the Pi-class calibrated cost
    model — the same currency the recipe feasibility checker (RCP2xx)
    plans with, so "does the surviving capacity suffice" and "was this
    recipe schedulable at all" agree with each other.
    """
    from repro.lint.rates import (
        default_cost_model,
        propagate_rates,
        task_utilization,
    )

    rates = propagate_rates(recipe)
    cost_model = default_cost_model()
    total = 0.0
    for subtask in subtasks:
        task = recipe.tasks.get(subtask.task_id)
        task_rates = rates.get(subtask.task_id)
        if task is None or task_rates is None:
            continue
        total += task_utilization(task, task_rates, cost_model)
    return total


# ----------------------------------------------------------------------
# Recovery report
# ----------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What happened between fault injection and recovery, from the trace."""

    faults: list[dict[str, Any]] = field(default_factory=list)
    detections: list[dict[str, Any]] = field(default_factory=list)
    failovers: list[dict[str, Any]] = field(default_factory=list)
    migrations: list[dict[str, Any]] = field(default_factory=list)
    shed: list[dict[str, Any]] = field(default_factory=list)
    degraded: list[dict[str, Any]] = field(default_factory=list)

    def render(self) -> str:
        lines = ["recovery report", "=" * 64]
        lines.append(f"faults injected: {len(self.faults)}")
        for fault in self.faults:
            target = fault.get("target", "")
            lines.append(
                f"  t={fault['time']:8.3f}  {fault['kind']:<16} {target}"
            )
        lines.append("detection:")
        if not self.detections:
            lines.append("  (no detectable faults)")
        for det in self.detections:
            if det.get("latency_s") is None:
                lines.append(
                    f"  {det['kind']} at t={det['time']:.3f}: never detected"
                )
            else:
                lines.append(
                    f"  {det['kind']} at t={det['time']:.3f}: "
                    f"{det['signal']} after {det['latency_s']:.3f} s"
                )
        lines.append(f"failover moves: {len(self.failovers)}")
        for move in self.failovers:
            lines.append(
                f"  t={move['time']:8.3f}  {move['application']}/"
                f"{move['subtask']}: {move['from_module']} -> "
                f"{move['to_module']}"
            )
        lines.append(f"migrations: {len(self.migrations)}")
        for mig in self.migrations:
            duration = mig.get("duration_s")
            status = (
                f"{duration:.3f} s"
                if duration is not None
                else f"incomplete ({mig.get('outcome', 'pending')})"
            )
            lines.append(
                f"  {mig['migration']}  {mig.get('application', '?')}/"
                f"{mig.get('subtask', '?')}: "
                f"{mig.get('from_module', '?')} -> {mig.get('to_module', '?')}"
                f"  {status}, {mig.get('inflight', 0)} records across handoff"
                f" ({mig.get('snapshot', 0)} snapshot + {mig.get('tail', 0)}"
                f" tail, {mig.get('skipped', 0)} deduped)"
            )
        if self.shed or self.degraded:
            lines.append("degraded-mode decisions:")
            for entry in self.shed:
                lines.append(
                    f"  t={entry['time']:8.3f}  shed {entry['application']} "
                    f"(priority {entry['priority']})"
                )
            for entry in self.degraded:
                lines.append(
                    f"  t={entry['time']:8.3f}  residual overcommit "
                    f"{entry['residual']:.4f} util on {entry['capacity']:.2f} "
                    "capacity"
                )
        else:
            lines.append("degraded-mode decisions: none")
        return "\n".join(lines)


#: Fault kinds a detector/failover signal is expected to follow.
_DETECTABLE_KINDS = {"node_crash", "node_restart", "partition", "broker_restart"}
#: Events that count as "the control plane noticed", per fault kind. A
#: crash/partition is noticed when the detector confirms or the broker
#: tombstone triggers a failover; a restart is noticed when management
#: reinstates the rejoined incarnation (or the detector sees it first).
_DETECTION_SIGNALS: dict[str, tuple[str, ...]] = {
    "node_crash": ("detector.confirm", "mgmt.failover_moved"),
    "partition": ("detector.confirm", "mgmt.failover_moved"),
    "broker_restart": ("detector.confirm", "mgmt.failover_moved"),
    # A restart is noticed when management reinstates the rejoined
    # incarnation, or — if failover moved its work away — when the
    # fail-back migration starts.
    "node_restart": ("mgmt.reinstated", "migrate.start", "detector.reincarnated"),
}


def recovery_report(tracer: "Tracer") -> RecoveryReport:
    """Build a :class:`RecoveryReport` from a finished scenario trace."""
    report = RecoveryReport()
    signals = sorted(
        (
            record
            for event in sorted(
                {e for events in _DETECTION_SIGNALS.values() for e in events}
            )
            for record in tracer.select(event=event)
        ),
        key=lambda record: (record.time, record.event),
    )
    for record in tracer.select(event="chaos.fault"):
        kind = str(record.fields.get("kind", "?"))
        target = str(
            record.fields.get("node")
            or record.fields.get("module")
            or record.fields.get("stations")
            or ""
        )
        report.faults.append({"time": record.time, "kind": kind, "target": target})
        if kind not in _DETECTABLE_KINDS:
            continue
        expected = _DETECTION_SIGNALS[kind]
        after = [
            s for s in signals if s.time >= record.time and s.event in expected
        ]
        if after:
            first = after[0]
            report.detections.append(
                {
                    "time": record.time,
                    "kind": kind,
                    "signal": first.event,
                    "latency_s": first.time - record.time,
                }
            )
        else:
            report.detections.append(
                {"time": record.time, "kind": kind, "signal": None, "latency_s": None}
            )
    for record in tracer.select(event="mgmt.failover_moved"):
        report.failovers.append(
            {
                "time": record.time,
                "application": record.fields.get("application"),
                "subtask": record.fields.get("subtask"),
                "from_module": record.fields.get("from_module"),
                "to_module": record.fields.get("to_module"),
            }
        )
    migrations: dict[str, dict[str, Any]] = {}
    for record in tracer:
        mid = record.fields.get("migration")
        if mid is None or not record.event.startswith("migrate."):
            continue
        entry = migrations.setdefault(str(mid), {"migration": str(mid)})
        if record.event == "migrate.start":
            entry.update(
                start=record.time,
                application=record.fields.get("application"),
                subtask=record.fields.get("subtask"),
                from_module=record.fields.get("from_module"),
                to_module=record.fields.get("to_module"),
            )
        elif record.event == "migrate.state_sent":
            entry["snapshot"] = int(record.fields.get("buffered", 0))
        elif record.event == "migrate.released":
            entry["tail"] = int(record.fields.get("tail", 0))
        elif record.event == "migrate.done":
            entry["done"] = record.time
            entry["skipped"] = int(record.fields.get("skipped", 0))
            entry["outcome"] = "done"
        elif record.event == "migrate.aborted":
            entry["outcome"] = f"aborted:{record.fields.get('reason', '?')}"
    for mid in sorted(migrations):
        entry = migrations[mid]
        start = entry.get("start")
        done = entry.get("done")
        if start is not None and done is not None:
            entry["duration_s"] = done - start
        entry["inflight"] = entry.get("snapshot", 0) + entry.get("tail", 0)
        report.migrations.append(entry)
    for record in tracer.select(event="mgmt.load_shed"):
        report.shed.append(
            {
                "time": record.time,
                "application": record.fields.get("application"),
                "priority": record.fields.get("priority", 0),
            }
        )
    for record in tracer.select(event="mgmt.degraded"):
        report.degraded.append(
            {
                "time": record.time,
                "residual": float(record.fields.get("residual", 0.0)),
                "capacity": float(record.fields.get("capacity", 0.0)),
            }
        )
    return report
