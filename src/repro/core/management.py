"""Management: module agents and the management node (Figs. 6–8).

The paper's testbed has a ThinkPad running OpenRTM-based management
software that selects which class runs on which module and wires them
together. Here that role is split faithfully:

* a :class:`ModuleAgent` runs on **every** neuron module. It announces the
  module in the registry, serves deploy/undeploy/status commands, and —
  implementing Fig. 6 — can act as the *recipe leader*: any module that
  receives a submitted recipe splits it, assigns sub-tasks across the
  modules it currently knows from the directory, and sends the deploy
  commands itself. No cloud, no single fixed coordinator.
* a :class:`ManagementNode` is the operator's console: it submits recipes
  (to itself or to any module), collects status snapshots, and stops
  applications. It embeds an agent, so a "management node" is just a
  module with no sensors.

Control-plane topics::

    ifot/ctl/module/<module>/deploy     {application, subtask}
    ifot/ctl/module/<module>/undeploy   {application, subtask_id | "*"}
    ifot/ctl/module/<module>/submit     {recipe, strategy}
    ifot/ctl/status/request             {}
    ifot/ctl/status/report/<module>     status snapshot
    ifot/ctl/app/<application>/deployed {assignment}
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.assignment import (
    Assignment,
    AssignmentStrategy,
    CapabilityAwareStrategy,
    LoadAwareStrategy,
    RoundRobinStrategy,
    TaskAssignment,
)
from repro.core.discovery import StreamDirectory
from repro.core.flow import topic_for_stream
from repro.core.node import NeuronModule
from repro.core.recipe import Recipe
from repro.core.splitter import RecipeSplit, SubTask
from repro.errors import DeploymentError, StaticCheckError
from repro.util.validate import Severity
from repro.mqtt.packets import Packet
from repro.runtime.component import Component

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.healing import FailureDetector

__all__ = ["ModuleAgent", "ManagementNode", "strategy_by_name"]

_STRATEGIES: dict[str, Callable[[], AssignmentStrategy]] = {
    "round_robin": RoundRobinStrategy,
    "load_aware": LoadAwareStrategy,
    "capability_aware": CapabilityAwareStrategy,
}


def strategy_by_name(name: str) -> AssignmentStrategy:
    factory = _STRATEGIES.get(name)
    if factory is None:
        raise DeploymentError(
            f"unknown assignment strategy {name!r} (known: {sorted(_STRATEGIES)})"
        )
    return factory()


class ModuleAgent(Component):
    """Control-plane presence of one module."""

    def __init__(
        self,
        module: NeuronModule,
        heartbeat_s: float = 10.0,
        directory_ttl_s: float = 30.0,
        capacity: float = 1.0,
        assignable: bool = True,
        static_check: str = "warn",
    ) -> None:
        super().__init__(module.node, f"agent@{module.name}")
        self.module = module
        self.capacity = capacity
        if static_check not in ("off", "warn", "strict"):
            raise DeploymentError(
                f"static_check must be off/warn/strict, got {static_check!r}"
            )
        #: Pre-deployment static checking (repro.lint.recipe_check):
        #: ``"warn"`` (default) rejects structurally broken recipes and
        #: traces everything else; ``"strict"`` additionally rejects
        #: rate-infeasible ones; ``"off"`` skips the pass entirely. The
        #: default deliberately lets rate-infeasible recipes through —
        #: the paper *measures* saturation (§V-B), it does not forbid it.
        self.static_check = static_check
        #: Whether this module accepts recipe sub-tasks. The management
        #: node's agent sets this False: it manages, it does not process
        #: flows (matching the paper's testbed, Fig. 7).
        self.assignable = assignable
        self.directory = StreamDirectory(
            module.node, module.client, ttl_s=directory_ttl_s
        )
        self.deploys_handled = 0
        self.recipes_led = 0
        client = module.client
        # Crash-leave: if this agent's MQTT session expires (node died), the
        # broker tombstones the module's retained registry announcement, so
        # peers learn of the departure at keep-alive granularity instead of
        # waiting out the directory TTL.
        from repro.core.discovery import module_topic

        client.will = {
            "topic": module_topic(module.name),
            "payload": None,
            "retain": True,
        }
        client.refresh_session()  # the session predates the will
        base = f"ifot/ctl/module/{module.name}"
        client.subscribe_many(
            [
                (f"{base}/deploy", self._on_deploy),
                (f"{base}/undeploy", self._on_undeploy),
                (f"{base}/submit", self._on_submit),
                (f"{base}/pause", self._on_pause),
                (f"{base}/release", self._on_release),
                ("ifot/ctl/status/request", self._on_status_request),
            ]
        )
        self.migrations_adopted = 0
        #: Migrations this module is the target of, awaiting the source's
        #: tail buffer: migration id -> (application, subtask_id, tail
        #: subscription handle).
        self._migration_tails: dict[str, tuple[str, str, Any]] = {}
        self._announce()
        module.capability_listeners.append(self._announce)
        # Re-announce the moment the session is re-established (broker
        # restart, node restart, partition heal) instead of waiting out a
        # heartbeat period: peers' directories converge immediately.
        client.reconnect_listeners.append(self._announce)
        self.every(heartbeat_s, self._announce)

    def _announce(self) -> None:
        self.directory.announce_module(
            self.module.name,
            self.module.capabilities,
            capacity=self.capacity,
            assignable=self.assignable,
            load=self.module.current_load(),
            incarnation=self.module.node.incarnation,
        )

    # ------------------------------------------------------------------
    # Deploy / undeploy
    # ------------------------------------------------------------------

    def _on_deploy(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped:
            return
        application = str(payload["application"])
        subtask = SubTask.from_dict(payload["subtask"])
        try:
            operator = self.module.deploy(application, subtask)
        except DeploymentError as exc:
            self.trace("agent.deploy_failed", subtask=subtask.subtask_id, error=str(exc))
            return
        self.deploys_handled += 1  # repro: san-ok[SAN020] commutative counter
        handoff = payload.get("handoff")
        if isinstance(handoff, dict):
            self._adopt_handoff(application, subtask, operator, handoff)
        for stream in subtask.outputs:
            self.directory.announce_stream(
                application,
                stream,
                topic_for_stream(application, stream),
                module=self.module.name,
                task=subtask.subtask_id,
            )

    def _on_undeploy(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped:
            return
        application = str(payload["application"])
        subtask_id = str(payload.get("subtask_id", "*"))
        if subtask_id == "*":
            self.module.undeploy_application(application)
        else:
            self.module.undeploy(application, subtask_id)

    # ------------------------------------------------------------------
    # Live migration (pause -> drain -> transfer -> resume)
    # ------------------------------------------------------------------

    def _on_pause(self, _topic: str, payload: Any, _packet: Packet) -> None:
        """Source side, step 1: stop processing, keep buffering.

        The operator's MQTT client has already PUBACKed everything the
        broker forwarded, so from here on every inbound record lands in
        the operator's handoff buffer instead of being processed. The
        drain delay lets records already queued on the CPU finish
        mutating operator state before the snapshot is taken.
        """
        if self.stopped:
            return
        application = str(payload["application"])
        subtask_id = str(payload["subtask_id"])
        migration = str(payload["migration"])
        drain_s = float(payload.get("drain_s", 0.25))
        operator = self.module.operators.get(f"{application}/{subtask_id}")
        if operator is None or not hasattr(operator, "pause"):
            self._send_missing_state(migration, application, subtask_id)
            return
        operator.pause()
        self.trace(
            "migrate.paused",
            migration=migration,
            application=application,
            subtask=subtask_id,
        )
        self.after(drain_s, self._send_migration_state, migration, application, subtask_id)

    def _send_missing_state(
        self, migration: str, application: str, subtask_id: str
    ) -> None:
        # The operator vanished before the snapshot (a restart or undeploy
        # won the race): report that so the coordinator falls back to a
        # plain redeploy instead of waiting out its timeout.
        self.module.client.publish(
            f"ifot/ctl/migrate/{migration}/state",
            {
                "application": application,
                "subtask_id": subtask_id,
                "from_module": self.module.name,
                "missing": True,
            },
            qos=1,
        )

    def _send_migration_state(
        self, migration: str, application: str, subtask_id: str
    ) -> None:
        """Source side, step 2: snapshot state + buffered records."""
        if self.stopped:
            return
        operator = self.module.operators.get(f"{application}/{subtask_id}")
        if operator is None or not hasattr(operator, "take_handoff_buffer"):
            self._send_missing_state(migration, application, subtask_id)
            return
        buffered = [
            [stream, record.to_payload()]
            for stream, record in operator.take_handoff_buffer()
        ]
        self.module.client.publish(
            f"ifot/ctl/migrate/{migration}/state",
            {
                "application": application,
                "subtask_id": subtask_id,
                "subtask": operator.subtask.to_dict(),
                "state": operator.export_state(),
                "buffered": buffered,
                "from_module": self.module.name,
            },
            qos=1,
        )
        self.trace(
            "migrate.state_sent",
            migration=migration,
            subtask=subtask_id,
            buffered=len(buffered),
        )

    def _adopt_handoff(
        self, application: str, subtask: SubTask, operator: Any, handoff: dict[str, Any]
    ) -> None:
        """Target side: import state, replay the snapshot buffer, go live.

        ``begin_handoff_tracking`` runs before any live record can reach
        the new instance (deploy and adoption happen in one event), so
        every sample this instance processes live is recorded — the tail
        replay later dedups against that set. That is the exactly-once
        hinge: a record forwarded to both ends during the overlap window
        is processed here live and skipped in the tail.
        """
        from repro.core.flow import FlowRecord

        migration = str(handoff["migration"])
        if not hasattr(operator, "absorb_handoff"):
            return
        state = handoff.get("state")
        if state:
            operator.import_state(state)
        operator.begin_handoff_tracking()
        buffered = [
            (str(stream), FlowRecord.from_payload(payload))
            for stream, payload in handoff.get("buffered", [])
        ]
        operator.absorb_handoff(buffered)
        tail_sub = self.module.client.subscribe(
            f"ifot/ctl/migrate/{migration}/tail", self._on_migrate_tail
        )
        # The tails map is keyed by globally-unique migration id; adopt and
        # tail are causally ordered by the handoff protocol.
        self._migration_tails[migration] = (  # repro: san-ok[SAN020] protocol-ordered
            application,
            subtask.subtask_id,
            tail_sub,
        )
        self.migrations_adopted += 1  # repro: san-ok[SAN020] commutative counter
        self.trace(
            "migrate.adopted",
            migration=migration,
            application=application,
            subtask=subtask.subtask_id,
            replayed=len(buffered),
        )
        self.module.client.publish(
            f"ifot/ctl/migrate/{migration}/ready",
            {
                "module": self.module.name,
                "application": application,
                "subtask_id": subtask.subtask_id,
            },
            qos=1,
        )

    def _on_release(self, _topic: str, payload: Any, _packet: Packet) -> None:
        """Source side, step 3: hand over the tail, then disappear.

        Snapshotting the tail and unsubscribing (via undeploy) happen
        inside one event: any record the broker forwarded here before
        this instant is either in the tail or was processed pre-pause —
        nothing can slip between.
        """
        if self.stopped:
            return
        application = str(payload["application"])
        subtask_id = str(payload["subtask_id"])
        migration = str(payload["migration"])
        operator = self.module.operators.get(f"{application}/{subtask_id}")
        tail: list[list[Any]] = []
        if operator is not None and hasattr(operator, "take_handoff_buffer"):
            tail = [
                [stream, record.to_payload()]
                for stream, record in operator.take_handoff_buffer()
            ]
        self.module.undeploy(application, subtask_id)
        self.module.client.publish(
            f"ifot/ctl/migrate/{migration}/tail",
            {
                "application": application,
                "subtask_id": subtask_id,
                "buffered": tail,
            },
            qos=1,
        )
        self.trace(
            "migrate.released",
            migration=migration,
            subtask=subtask_id,
            tail=len(tail),
        )

    def _on_migrate_tail(self, topic: str, payload: Any, _packet: Packet) -> None:
        """Target side, final step: replay the tail (deduped), finish."""
        if self.stopped:
            return
        migration = topic.split("/")[3]
        entry = self._migration_tails.pop(migration, None)  # repro: san-ok[SAN020] protocol-ordered
        if entry is None:
            return
        application, subtask_id, tail_sub = entry
        self.module.client.unsubscribe(tail_sub)
        operator = self.module.operators.get(f"{application}/{subtask_id}")
        if operator is None or not hasattr(operator, "absorb_handoff"):
            return
        from repro.core.flow import FlowRecord

        tail = [
            (str(stream), FlowRecord.from_payload(entry_payload))
            for stream, entry_payload in payload.get("buffered", [])
        ]
        operator.absorb_handoff(tail, final=True)
        self.trace(
            "migrate.done",
            migration=migration,
            application=application,
            subtask=subtask_id,
            replayed=len(tail),
            skipped=operator.handoff_skipped,
        )

    # ------------------------------------------------------------------
    # Recipe leadership (Fig. 6 steps 2-3)
    # ------------------------------------------------------------------

    def _on_submit(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped:
            return
        try:
            data = payload["recipe"]
            if self.static_check != "off" and isinstance(data, dict):
                from repro.lint.recipe_check import check_recipe_dict

                errors = [
                    d
                    for d in check_recipe_dict(data)
                    if d.severity >= Severity.ERROR
                ]
                if errors:
                    raise StaticCheckError(
                        f"recipe {data.get('recipe', '?')!r} rejected by "
                        "static check",
                        errors,
                    )
            recipe = Recipe.from_dict(data)
            strategy = strategy_by_name(str(payload.get("strategy", "load_aware")))
            self.lead_deployment(recipe, strategy)
        except StaticCheckError as exc:
            # A remotely submitted broken recipe must not crash the
            # leader's event handler: reject, leave a trace, stay up.
            self.trace(
                "agent.recipe_rejected",
                rules=sorted({d.rule for d in exc.diagnostics}),
                findings=len(exc.diagnostics),
            )

    def _static_check(self, recipe: Recipe) -> None:
        """Structural gate: reject statically broken recipes pre-split."""
        from repro.lint.recipe_check import check_recipe

        diagnostics = check_recipe(recipe)
        for diag in diagnostics:
            self.trace("agent.static_check", finding=diag.format())
        errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
        if errors:
            raise StaticCheckError(
                f"recipe {recipe.name!r} rejected by static check", errors
            )

    def _rate_check(self, recipe: Recipe) -> None:
        """Feasibility gate: rejects only in strict mode (see static_check)."""
        from repro.lint.recipe_check import check_rate_feasibility

        diagnostics = check_rate_feasibility(recipe)
        for diag in diagnostics:
            self.trace("agent.static_check", finding=diag.format())
        if self.static_check != "strict":
            return
        errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
        if errors:
            raise StaticCheckError(
                f"recipe {recipe.name!r} is statically unschedulable", errors
            )

    def lead_deployment(
        self, recipe: Recipe, strategy: AssignmentStrategy | None = None
    ) -> Assignment:
        """Split ``recipe``, assign over known-alive modules, send deploys.

        Unless ``static_check="off"``, the recipe passes through the
        static checker first — structurally invalid recipes raise
        :class:`StaticCheckError` before any deploy command is sent.
        """
        if self.static_check != "off":
            self._static_check(recipe)
            self._rate_check(recipe)
        subtasks = RecipeSplit().split(recipe)
        modules = self.directory.module_infos()
        assignment = TaskAssignment(strategy).assign(subtasks, modules)
        self.recipes_led += 1  # repro: san-ok[SAN020] commutative counter
        self.trace(
            "agent.recipe_led",
            recipe=recipe.name,
            subtasks=len(subtasks),
            modules=len(modules),
        )
        by_id = {s.subtask_id: s for s in subtasks}
        for subtask_id, module_name in sorted(assignment.placements.items()):
            self.module.client.publish(
                f"ifot/ctl/module/{module_name}/deploy",
                {
                    "application": recipe.name,
                    "subtask": by_id[subtask_id].to_dict(),
                },
                qos=1,
            )
        self.module.client.publish(
            f"ifot/ctl/app/{recipe.name}/deployed",
            {"assignment": assignment.to_dict(), "leader": self.module.name},
            retain=True,
        )
        return assignment

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------

    def _on_status_request(self, _topic: str, _payload: Any, _packet: Packet) -> None:
        if self.stopped:
            return
        self.module.client.publish(
            f"ifot/ctl/status/report/{self.module.name}", self.module.status()
        )

    def on_stop(self) -> None:
        if self._announce in self.module.capability_listeners:
            self.module.capability_listeners.remove(self._announce)  # repro: san-ok[SAN020] idempotent teardown
        if self._announce in self.module.client.reconnect_listeners:
            self.module.client.reconnect_listeners.remove(self._announce)  # repro: san-ok[SAN020] idempotent teardown
        self.directory.withdraw_module(self.module.name)
        self.directory.stop()


class ManagementNode:
    """The operator's console (paper Fig. 7-8's ThinkPad).

    Wraps a :class:`NeuronModule` (typically one with no devices) plus its
    agent, and offers the operations the paper's management GUI exposes:
    submit an application, watch module status, tear an application down.
    """

    def __init__(
        self,
        module: NeuronModule,
        heartbeat_s: float = 10.0,
        auto_failover: bool = False,
        static_check: str = "warn",
        detector_params: dict[str, Any] | None = None,
        migration_drain_s: float = 0.25,
        migration_timeout_s: float = 6.0,
        failback_delay_s: float | None = None,
    ) -> None:
        self.module = module
        self.agent = ModuleAgent(
            module,
            heartbeat_s=heartbeat_s,
            assignable=False,
            static_check=static_check,
        )
        self.status_reports: dict[str, dict[str, Any]] = {}
        self.auto_failover = auto_failover
        self.failovers_performed = 0
        self.reinstatements_performed = 0
        self.migrations_started = 0
        self.migrations_completed = 0
        self.migrations_aborted = 0
        self.load_sheds_performed = 0
        #: Applications shed to fit surviving capacity (degraded mode).
        self.degraded_applications: list[str] = []
        #: Pause->snapshot drain at the migration source.
        self.migration_drain_s = migration_drain_s
        #: Give up on a handoff after this long and redeploy plainly.
        self.migration_timeout_s = migration_timeout_s
        #: Wait this long after a displaced sub-task's home module rejoins
        #: before migrating it back (lets its announcements settle).
        self.failback_delay_s = (
            heartbeat_s if failback_delay_s is None else failback_delay_s
        )
        #: Applications this node led: name -> (recipe, live assignment).
        self._led: dict[str, tuple[Recipe, Assignment]] = {}
        #: In-flight migrations: id -> coordinator state.
        self._migrations: dict[str, dict[str, Any]] = {}
        #: Sub-tasks failover moved off their assigned module, awaiting
        #: fail-back when the original host rejoins: (app, sid) -> module.
        self._displaced: dict[tuple[str, str], str] = {}
        # Both maps are mutated from MQTT dispatch events and timers —
        # cross-event shared state the schedule sanitizer should see.
        from repro.runtime.state import tracked_state

        self._migrations_cell = tracked_state(
            module.node.runtime, f"mgmt.{module.name}", "migrations"
        )
        self._displaced_cell = tracked_state(
            module.node.runtime, f"mgmt.{module.name}", "displaced"
        )
        # The led-applications ledger and collected status reports are
        # written from console calls / MQTT status answers and read by the
        # healing sweeps — track them for the same reason.
        self._led_cell = tracked_state(module.node.runtime, f"mgmt.{module.name}", "led")
        self._status_cell = tracked_state(
            module.node.runtime, f"mgmt.{module.name}", "status"
        )
        self.detector: "FailureDetector | None" = None
        if auto_failover:
            from repro.core.healing import FailureDetector

            self.detector = FailureDetector(
                module.node,
                self.agent.directory,
                expected_interval_s=heartbeat_s,
                on_confirm=self._on_detector_confirm,
                exclude={module.name},
                connected=lambda: module.client.connected,
                **(detector_params or {}),
            )
        module.client.subscribe_many(
            [
                ("ifot/ctl/status/report/+", self._on_status),
                ("ifot/ctl/migrate/+/state", self._on_migration_state),
                ("ifot/ctl/migrate/+/ready", self._on_migration_ready),
            ]
        )
        self.directory.watch_members(self._on_membership_change)

    # ------------------------------------------------------------------
    # Application lifecycle
    # ------------------------------------------------------------------

    def submit_recipe(
        self,
        recipe: "Recipe | dict[str, Any]",
        strategy: AssignmentStrategy | str | None = None,
        via_module: str | None = None,
    ) -> Assignment | None:
        """Deploy ``recipe``.

        With ``via_module`` the recipe is shipped to that module's agent,
        which leads the deployment (Fig. 6 Step 1: "Application builder
        makes the recipe, and sends the recipe to an IFoT module") — the
        returned assignment is then None because it happens remotely.
        Otherwise this node's own agent leads, and the assignment is
        returned directly.

        A raw recipe dict is accepted too, and is statically checked
        *before* :class:`Recipe` construction: a cyclic or dangling graph
        is rejected with a :class:`StaticCheckError` carrying diagnostics
        instead of a bare constructor exception.
        """
        if isinstance(recipe, dict):
            if self.agent.static_check != "off":
                from repro.lint.recipe_check import check_recipe_dict

                errors = [
                    d
                    for d in check_recipe_dict(recipe)
                    if d.severity >= Severity.ERROR
                ]
                if errors:
                    raise StaticCheckError(
                        f"recipe {recipe.get('recipe', '?')!r} rejected by "
                        "static check",
                        errors,
                    )
            recipe = Recipe.from_dict(recipe)
        if isinstance(strategy, str):
            strategy = strategy_by_name(strategy)
        if via_module is not None:
            name = (
                strategy.name if isinstance(strategy, AssignmentStrategy) else "load_aware"
            )
            self.module.client.publish(
                f"ifot/ctl/module/{via_module}/submit",
                {"recipe": recipe.to_dict(), "strategy": name},
                qos=1,
            )
            return None
        assignment = self.agent.lead_deployment(recipe, strategy)
        self._led_cell.note_write()
        self._led[recipe.name] = (recipe, assignment)
        return assignment

    def stop_application(self, application: str) -> None:
        """Broadcast undeploy of ``application`` to every known module."""
        self._led_cell.note_write()
        self._led.pop(application, None)
        stale = [key for key in self._displaced if key[0] == application]
        if stale:
            self._displaced_cell.note_write()
            for key in stale:
                del self._displaced[key]
        for record in self.agent.directory.modules():
            self.module.client.publish(
                f"ifot/ctl/module/{record.name}/undeploy",
                {"application": application, "subtask_id": "*"},
                qos=1,
            )

    # ------------------------------------------------------------------
    # Failover (extension: the paper's dynamic join/leave future work)
    # ------------------------------------------------------------------

    def _on_membership_change(self, name: str, alive: bool) -> None:
        if not self.auto_failover:
            return
        if alive:
            self._reinstate_module(name)
        else:
            self._fail_over_module(name)

    def _on_detector_confirm(self, name: str) -> None:
        # The membership layer usually beats phi accrual to a clean crash
        # (the broker's last-will tombstone fires at keep-alive expiry);
        # the detector covers the cases that leave no tombstone. Failover
        # is idempotent — a second pass finds no orphaned placements.
        self._fail_over_module(name)

    def _reinstate_module(self, joined_module: str) -> None:
        """Re-send every sub-task still placed on a (re)joined module.

        Closes the dynamic-join/leave loop: a module that crashed and came
        back with amnesia (or returned from the wrong side of a partition)
        gets its assigned sub-tasks re-deployed. Deploy is idempotent on
        the agent side — a module that kept its operators (blip) rejects
        the duplicate and keeps running.
        """
        self._led_cell.note_read()
        for app_name, (recipe, assignment) in self._led.items():
            owned = sorted(
                sid
                for sid, module_name in assignment.placements.items()
                if module_name == joined_module
            )
            if not owned:
                continue
            subtasks = {s.subtask_id: s for s in RecipeSplit().split(recipe)}
            for sid in owned:
                self.module.client.publish(
                    f"ifot/ctl/module/{joined_module}/deploy",
                    {"application": app_name, "subtask": subtasks[sid].to_dict()},
                    qos=1,
                )
                self.module.node.runtime.trace(
                    "mgmt",
                    "mgmt.reinstated",
                    application=app_name,
                    subtask=sid,
                    module=joined_module,
                )
            self.reinstatements_performed += 1
        self._schedule_failback(joined_module)

    def _schedule_failback(self, joined_module: str) -> None:
        """Migrate sub-tasks failover displaced off ``joined_module`` home.

        The rejoined module may still be running stale pre-failover
        instances (a blip recovery keeps operators across the outage), so
        those are undeployed first — for an amnesia restart that is a
        no-op. The migration itself starts after ``failback_delay_s`` so
        the rejoined module's announcements settle in every directory.
        """
        displaced = sorted(
            key for key, origin in self._displaced.items() if origin == joined_module
        )
        if not displaced:
            return
        self._displaced_cell.note_write()
        for app_name, sid in displaced:
            self._displaced.pop((app_name, sid), None)
            if app_name not in self._led:
                continue
            self.module.client.publish(
                f"ifot/ctl/module/{joined_module}/undeploy",
                {"application": app_name, "subtask_id": sid},
                qos=1,
            )
            self.agent.after(
                self.failback_delay_s, self._fail_back, app_name, sid, joined_module
            )

    def _fail_back(
        self, application: str, subtask_id: str, home_module: str
    ) -> None:
        led = self._led.get(application)
        if led is None:
            return
        _recipe, assignment = led
        current = assignment.placements.get(subtask_id)
        if current is None or current == home_module:
            return
        if all(r.name != home_module for r in self.directory.module_infos()):
            # Home vanished again while the delay ran; stay put.
            return
        try:
            self.migrate_subtask(application, subtask_id, home_module)
        except DeploymentError:
            return

    def _fail_over_module(self, dead_module: str) -> None:
        """Re-place every non-pinned sub-task that was on ``dead_module``.

        Model state held by the dead module's operators is lost (online
        models re-learn from the live stream — the middleware stores no
        data to replay). Sub-tasks pinned to the dead module are device
        bound and cannot move; they are reported and skipped.
        """
        self._shed_if_overcommitted(dead_module)
        self._led_cell.note_read()
        for app_name, (recipe, assignment) in self._led.items():
            orphans = [
                sid
                for sid, module_name in assignment.placements.items()
                if module_name == dead_module
            ]
            if not orphans:
                continue
            subtasks = {s.subtask_id: s for s in RecipeSplit().split(recipe)}
            # The dead module may still linger in the directory when the
            # detector beat the broker's tombstone to the verdict; never
            # re-place orphans onto the module being failed over.
            candidates = [
                info
                for info in self.directory.module_infos()
                if info.name != dead_module
            ]
            movable = []
            for sid in orphans:
                subtask = subtasks[sid]
                if subtask.pin_to == dead_module:
                    self.module.node.runtime.trace(
                        "mgmt",
                        "mgmt.failover_pinned",
                        application=app_name,
                        subtask=sid,
                        module=dead_module,
                    )
                    continue
                movable.append(subtask)
            if not movable:
                continue
            # Candidates' ``base_load`` already reflects what each module
            # hosts: agents announce their live load on every deploy and
            # heartbeat, and the directory carries it into ModuleInfo.
            replacement = TaskAssignment(LoadAwareStrategy()).assign(
                movable, candidates
            )
            self._displaced_cell.note_write()
            for subtask in movable:
                target = replacement.module_for(subtask.subtask_id)
                assignment.placements[subtask.subtask_id] = target
                self._displaced[(app_name, subtask.subtask_id)] = dead_module
                # Defensive teardown: on a true crash this queues into a
                # dying session and is dropped at expiry; on a false
                # accusation it removes the stale instance so the
                # replacement is the *only* live one (exactly-once per
                # incarnation holds either way).
                self.module.client.publish(
                    f"ifot/ctl/module/{dead_module}/undeploy",
                    {"application": app_name, "subtask_id": subtask.subtask_id},
                    qos=1,
                )
                self.module.client.publish(
                    f"ifot/ctl/module/{target}/deploy",
                    {"application": app_name, "subtask": subtask.to_dict()},
                    qos=1,
                )
                self.module.node.runtime.trace(
                    "mgmt",
                    "mgmt.failover_moved",
                    application=app_name,
                    subtask=subtask.subtask_id,
                    from_module=dead_module,
                    to_module=target,
                )
            self.failovers_performed += 1
            self.module.client.publish(
                f"ifot/ctl/app/{app_name}/deployed",
                {"assignment": assignment.to_dict(), "leader": self.module.name},
                retain=True,
            )

    def _shed_if_overcommitted(self, dead_module: str) -> None:
        """Graceful degradation: shed whole applications, lowest priority
        first, when the surviving capacity cannot host everything.

        Demand is measured in the calibrated CPU-utilization currency of
        :mod:`repro.lint.rates` (the same one recipe feasibility checks
        plan with), summed over every sub-task that will need surviving
        capacity — already-placed survivors plus the movable orphans.
        Sub-tasks pinned to the dead module die with their device and
        demand nothing.
        """
        if not self._led:
            return
        from repro.core.healing import AppLoad, plan_degradation, recipe_utilization

        capacity = sum(info.capacity for info in self.directory.module_infos())
        loads: list[AppLoad] = []
        for app_name, (recipe, assignment) in sorted(self._led.items()):
            demand_subtasks = [
                subtask
                for subtask in RecipeSplit().split(recipe)
                if not (
                    assignment.placements.get(subtask.subtask_id) == dead_module
                    and subtask.pin_to == dead_module
                )
            ]
            loads.append(
                AppLoad(
                    application=app_name,
                    priority=recipe.priority,
                    utilization=recipe_utilization(recipe, demand_subtasks),
                )
            )
        plan = plan_degradation(loads, capacity)
        if not plan.shed and plan.feasible:
            return
        runtime = self.module.node.runtime
        for victim in plan.shed:
            self.load_sheds_performed += 1
            self.degraded_applications.append(victim.application)
            runtime.trace(
                "mgmt",
                "mgmt.load_shed",
                application=victim.application,
                priority=victim.priority,
                utilization=round(victim.utilization, 4),
            )
            self.stop_application(victim.application)
        if not plan.feasible:
            runtime.trace(
                "mgmt",
                "mgmt.degraded",
                residual=round(plan.residual, 4),
                capacity=round(plan.capacity, 4),
            )
        self.module.client.publish(
            "ifot/ctl/status/degraded",
            {
                "applications": sorted(set(self.degraded_applications)),
                "residual": round(plan.residual, 4),
                "capacity": round(plan.capacity, 4),
            },
            retain=True,
        )

    # ------------------------------------------------------------------
    # Live migration coordinator (QoS1-safe operator handoff)
    # ------------------------------------------------------------------

    def migrate_subtask(
        self,
        application: str,
        subtask_id: str,
        to_module: str,
        drain_s: float | None = None,
        timeout_s: float | None = None,
    ) -> str | None:
        """Move one sub-task to ``to_module`` without losing QoS1 records.

        Protocol (each leg a QoS1 control message)::

            mgmt -> source : pause      operator buffers instead of processing
            source -> mgmt : state      after drain: snapshot + buffered records
            mgmt -> target : deploy     with handoff {state, buffered}
            target -> mgmt : ready      imported, replayed, live + tracking
            mgmt -> source : release    undeploy; publish tail buffer
            source -> target: tail      replay (deduped against live set)

        Exactly-once: the overlap window (both ends subscribed) is covered
        by the target's live-sample tracking — anything the broker
        forwarded to both sides is processed live at the target and
        skipped during tail replay. Returns the migration id, or ``None``
        if the sub-task already lives on ``to_module``. A timeout aborts
        the handoff and falls back to a plain redeploy (state lost, like
        crash failover — but never two live instances).
        """
        led = self._led.get(application)
        if led is None:
            raise DeploymentError(f"application {application!r} is not led here")
        recipe, assignment = led
        source = assignment.module_for(subtask_id)
        if source == to_module:
            return None
        subtasks = {s.subtask_id: s for s in RecipeSplit().split(recipe)}
        subtask = subtasks.get(subtask_id)
        if subtask is None:
            raise DeploymentError(
                f"{application!r} has no sub-task {subtask_id!r}"
            )
        if subtask.pin_to is not None and subtask.pin_to != to_module:
            raise DeploymentError(
                f"sub-task {subtask_id!r} is pinned to {subtask.pin_to!r}"
            )
        runtime = self.module.node.runtime
        migration = runtime.ids.next("migration")
        drain = self.migration_drain_s if drain_s is None else float(drain_s)
        timeout = self.migration_timeout_s if timeout_s is None else float(timeout_s)
        span = None
        if runtime.obs is not None:
            span = runtime.obs.start_span(
                "migrate",
                self.module.node,
                migration=migration,
                application=application,
                subtask=subtask_id,
                from_module=source,
                to_module=to_module,
            )
        self._migrations_cell.note_write()
        self._migrations[migration] = {
            "application": application,
            "subtask": subtask,
            "from": source,
            "to": to_module,
            "phase": "pause",
            "span": span,
        }
        self.migrations_started += 1
        runtime.trace(
            "mgmt",
            "migrate.start",
            migration=migration,
            application=application,
            subtask=subtask_id,
            from_module=source,
            to_module=to_module,
        )
        self.module.client.publish(
            f"ifot/ctl/module/{source}/pause",
            {
                "application": application,
                "subtask_id": subtask_id,
                "migration": migration,
                "drain_s": drain,
            },
            qos=1,
        )
        self.agent.after(timeout, self._migration_timeout, migration)
        return migration

    def _on_migration_state(self, topic: str, payload: Any, _packet: Packet) -> None:
        migration = topic.split("/")[3]
        self._migrations_cell.note_read()
        entry = self._migrations.get(migration)
        if entry is None:
            return
        if not isinstance(payload, dict) or payload.get("missing"):
            self._migrations_cell.note_write()
            self._migrations.pop(migration, None)
            self._abort_migration(migration, entry, "source_missing")
            return
        entry["phase"] = "transfer"
        self.module.node.runtime.trace(
            "mgmt",
            "migrate.transfer",
            migration=migration,
            subtask=entry["subtask"].subtask_id,
            buffered=len(payload.get("buffered", [])),
        )
        self.module.client.publish(
            f"ifot/ctl/module/{entry['to']}/deploy",
            {
                "application": entry["application"],
                "subtask": payload.get("subtask") or entry["subtask"].to_dict(),
                "handoff": {
                    "migration": migration,
                    "state": payload.get("state"),
                    "buffered": payload.get("buffered", []),
                    "from_module": payload.get("from_module"),
                },
            },
            qos=1,
        )

    def _on_migration_ready(self, topic: str, payload: Any, _packet: Packet) -> None:
        migration = topic.split("/")[3]
        self._migrations_cell.note_write()
        entry = self._migrations.pop(migration, None)
        if entry is None:
            return
        application = entry["application"]
        subtask_id = entry["subtask"].subtask_id
        led = self._led.get(application)
        if led is not None:
            _recipe, assignment = led
            assignment.placements[subtask_id] = entry["to"]
            self.module.client.publish(
                f"ifot/ctl/app/{application}/deployed",
                {"assignment": assignment.to_dict(), "leader": self.module.name},
                retain=True,
            )
        self.module.client.publish(
            f"ifot/ctl/module/{entry['from']}/release",
            {
                "application": application,
                "subtask_id": subtask_id,
                "migration": migration,
            },
            qos=1,
        )
        self.migrations_completed += 1
        runtime = self.module.node.runtime
        runtime.trace(
            "mgmt",
            "migrate.switched",
            migration=migration,
            application=application,
            subtask=subtask_id,
            from_module=entry["from"],
            to_module=entry["to"],
        )
        if entry["span"] is not None and runtime.obs is not None:
            runtime.obs.finish(entry["span"], outcome="switched")

    def _migration_timeout(self, migration: str) -> None:
        self._migrations_cell.note_write()
        entry = self._migrations.pop(migration, None)
        if entry is None:
            return
        self._abort_migration(migration, entry, "timeout")

    def _abort_migration(
        self, migration: str, entry: dict[str, Any], reason: str
    ) -> None:
        """Fall back from a wedged handoff to a plain redeploy.

        Operator state is lost, exactly like crash failover — the one
        guarantee kept at all costs is that the paused source instance
        never resumes, so no sample is ever processed by two live
        instances of the same sub-task.
        """
        self.migrations_aborted += 1
        runtime = self.module.node.runtime
        application = entry["application"]
        subtask = entry["subtask"]
        runtime.trace(
            "mgmt",
            "migrate.aborted",
            migration=migration,
            reason=reason,
            phase=entry["phase"],
            application=application,
            subtask=subtask.subtask_id,
        )
        if entry["span"] is not None and runtime.obs is not None:
            runtime.obs.finish(entry["span"], outcome=f"aborted:{reason}")
        led = self._led.get(application)
        if led is None:
            return
        _recipe, assignment = led
        if assignment.placements.get(subtask.subtask_id) != entry["from"]:
            # Crash failover already re-placed it while the handoff was in
            # flight; a second deploy would double-instantiate.
            return
        candidates = self.directory.module_infos()
        target = entry["to"]
        if all(info.name != target for info in candidates):
            # The chosen target died too (double failure): pick a live one.
            from repro.errors import AssignmentError

            try:
                replacement = TaskAssignment(LoadAwareStrategy()).assign(
                    [subtask], candidates
                )
                target = replacement.module_for(subtask.subtask_id)
            except (AssignmentError, DeploymentError):
                runtime.trace(
                    "mgmt",
                    "migrate.stranded",
                    migration=migration,
                    application=application,
                    subtask=subtask.subtask_id,
                )
                return
        self.module.client.publish(
            f"ifot/ctl/module/{entry['from']}/undeploy",
            {"application": application, "subtask_id": subtask.subtask_id},
            qos=1,
        )
        if target != entry["to"]:
            self.module.client.publish(
                f"ifot/ctl/module/{entry['to']}/undeploy",
                {"application": application, "subtask_id": subtask.subtask_id},
                qos=1,
            )
        self.module.client.publish(
            f"ifot/ctl/module/{target}/deploy",
            {"application": application, "subtask": subtask.to_dict()},
            qos=1,
        )
        assignment.placements[subtask.subtask_id] = target
        self.module.client.publish(
            f"ifot/ctl/app/{application}/deployed",
            {"assignment": assignment.to_dict(), "leader": self.module.name},
            retain=True,
        )
        runtime.trace(
            "mgmt",
            "migrate.redeployed",
            migration=migration,
            application=application,
            subtask=subtask.subtask_id,
            to_module=target,
        )

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    def request_status(self) -> None:
        """Ask every module to report; answers land in ``status_reports``."""
        self.module.client.publish("ifot/ctl/status/request", {})

    def _on_status(self, topic: str, payload: Any, _packet: Packet) -> None:
        module = topic.rsplit("/", 1)[-1]
        if isinstance(payload, dict):
            self._status_cell.note_write()
            self.status_reports[module] = payload

    @property
    def directory(self) -> StreamDirectory:
        return self.agent.directory

    def render_dashboard(self) -> str:
        """Textual stand-in for the paper's management GUI (Fig. 8).

        Renders the live view this node has: known modules with their
        capabilities and load, collected status reports, announced streams
        and led applications. Call :meth:`request_status` (plus a settle)
        first if fresh per-module operator lists are wanted.
        """
        lines = ["IFoT management console", "=" * 64]
        lines.append("modules:")
        for record in self.directory.modules():
            role = "" if record.assignable else "  [management]"
            caps = ", ".join(sorted(record.capabilities)) or "-"
            lines.append(
                f"  {record.name:<16} load={record.load:6.2f} "
                f"capacity={record.capacity:4.1f}  caps: {caps}{role}"
            )
            self._status_cell.note_read()
            report = self.status_reports.get(record.name)
            if report and report.get("operators"):
                for operator in report["operators"]:
                    lines.append(f"      - {operator}")
        streams = self.directory.find_streams()
        if streams:
            lines.append("streams:")
            for stream in streams:
                lines.append(
                    f"  {stream.application}:{stream.stream:<20} "
                    f"({stream.producer_task} @ {stream.producer_module})"
                )
        if self._led:
            lines.append("applications led here:")
            for name, (_recipe, assignment) in sorted(self._led.items()):
                placements = ", ".join(
                    f"{sid}->{mod}" for sid, mod in sorted(assignment.placements.items())
                )
                lines.append(f"  {name}: {placements}")
        return "\n".join(lines)

    def shutdown(self) -> None:
        if self.detector is not None:
            self.detector.stop()
        self.agent.stop()
        self.module.shutdown()
