"""Management: module agents and the management node (Figs. 6–8).

The paper's testbed has a ThinkPad running OpenRTM-based management
software that selects which class runs on which module and wires them
together. Here that role is split faithfully:

* a :class:`ModuleAgent` runs on **every** neuron module. It announces the
  module in the registry, serves deploy/undeploy/status commands, and —
  implementing Fig. 6 — can act as the *recipe leader*: any module that
  receives a submitted recipe splits it, assigns sub-tasks across the
  modules it currently knows from the directory, and sends the deploy
  commands itself. No cloud, no single fixed coordinator.
* a :class:`ManagementNode` is the operator's console: it submits recipes
  (to itself or to any module), collects status snapshots, and stops
  applications. It embeds an agent, so a "management node" is just a
  module with no sensors.

Control-plane topics::

    ifot/ctl/module/<module>/deploy     {application, subtask}
    ifot/ctl/module/<module>/undeploy   {application, subtask_id | "*"}
    ifot/ctl/module/<module>/submit     {recipe, strategy}
    ifot/ctl/status/request             {}
    ifot/ctl/status/report/<module>     status snapshot
    ifot/ctl/app/<application>/deployed {assignment}
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.assignment import (
    Assignment,
    AssignmentStrategy,
    CapabilityAwareStrategy,
    LoadAwareStrategy,
    RoundRobinStrategy,
    TaskAssignment,
)
from repro.core.discovery import StreamDirectory
from repro.core.flow import topic_for_stream
from repro.core.node import NeuronModule
from repro.core.recipe import Recipe
from repro.core.splitter import RecipeSplit, SubTask
from repro.errors import DeploymentError, StaticCheckError
from repro.util.validate import Severity
from repro.mqtt.packets import Packet
from repro.runtime.component import Component

__all__ = ["ModuleAgent", "ManagementNode", "strategy_by_name"]

_STRATEGIES: dict[str, Callable[[], AssignmentStrategy]] = {
    "round_robin": RoundRobinStrategy,
    "load_aware": LoadAwareStrategy,
    "capability_aware": CapabilityAwareStrategy,
}


def strategy_by_name(name: str) -> AssignmentStrategy:
    factory = _STRATEGIES.get(name)
    if factory is None:
        raise DeploymentError(
            f"unknown assignment strategy {name!r} (known: {sorted(_STRATEGIES)})"
        )
    return factory()


class ModuleAgent(Component):
    """Control-plane presence of one module."""

    def __init__(
        self,
        module: NeuronModule,
        heartbeat_s: float = 10.0,
        directory_ttl_s: float = 30.0,
        capacity: float = 1.0,
        assignable: bool = True,
        static_check: str = "warn",
    ) -> None:
        super().__init__(module.node, f"agent@{module.name}")
        self.module = module
        self.capacity = capacity
        if static_check not in ("off", "warn", "strict"):
            raise DeploymentError(
                f"static_check must be off/warn/strict, got {static_check!r}"
            )
        #: Pre-deployment static checking (repro.lint.recipe_check):
        #: ``"warn"`` (default) rejects structurally broken recipes and
        #: traces everything else; ``"strict"`` additionally rejects
        #: rate-infeasible ones; ``"off"`` skips the pass entirely. The
        #: default deliberately lets rate-infeasible recipes through —
        #: the paper *measures* saturation (§V-B), it does not forbid it.
        self.static_check = static_check
        #: Whether this module accepts recipe sub-tasks. The management
        #: node's agent sets this False: it manages, it does not process
        #: flows (matching the paper's testbed, Fig. 7).
        self.assignable = assignable
        self.directory = StreamDirectory(
            module.node, module.client, ttl_s=directory_ttl_s
        )
        self.deploys_handled = 0
        self.recipes_led = 0
        client = module.client
        # Crash-leave: if this agent's MQTT session expires (node died), the
        # broker tombstones the module's retained registry announcement, so
        # peers learn of the departure at keep-alive granularity instead of
        # waiting out the directory TTL.
        from repro.core.discovery import module_topic

        client.will = {
            "topic": module_topic(module.name),
            "payload": None,
            "retain": True,
        }
        client.refresh_session()  # the session predates the will
        base = f"ifot/ctl/module/{module.name}"
        client.subscribe(f"{base}/deploy", self._on_deploy)
        client.subscribe(f"{base}/undeploy", self._on_undeploy)
        client.subscribe(f"{base}/submit", self._on_submit)
        client.subscribe("ifot/ctl/status/request", self._on_status_request)
        self._announce()
        module.capability_listeners.append(self._announce)
        # Re-announce the moment the session is re-established (broker
        # restart, node restart, partition heal) instead of waiting out a
        # heartbeat period: peers' directories converge immediately.
        client.reconnect_listeners.append(self._announce)
        self.every(heartbeat_s, self._announce)

    def _announce(self) -> None:
        self.directory.announce_module(
            self.module.name,
            self.module.capabilities,
            capacity=self.capacity,
            assignable=self.assignable,
            load=self.module.current_load(),
            incarnation=self.module.node.incarnation,
        )

    # ------------------------------------------------------------------
    # Deploy / undeploy
    # ------------------------------------------------------------------

    def _on_deploy(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped:
            return
        application = str(payload["application"])
        subtask = SubTask.from_dict(payload["subtask"])
        try:
            self.module.deploy(application, subtask)
        except DeploymentError as exc:
            self.trace("agent.deploy_failed", subtask=subtask.subtask_id, error=str(exc))
            return
        self.deploys_handled += 1
        for stream in subtask.outputs:
            self.directory.announce_stream(
                application,
                stream,
                topic_for_stream(application, stream),
                module=self.module.name,
                task=subtask.subtask_id,
            )

    def _on_undeploy(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped:
            return
        application = str(payload["application"])
        subtask_id = str(payload.get("subtask_id", "*"))
        if subtask_id == "*":
            self.module.undeploy_application(application)
        else:
            self.module.undeploy(application, subtask_id)

    # ------------------------------------------------------------------
    # Recipe leadership (Fig. 6 steps 2-3)
    # ------------------------------------------------------------------

    def _on_submit(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped:
            return
        try:
            data = payload["recipe"]
            if self.static_check != "off" and isinstance(data, dict):
                from repro.lint.recipe_check import check_recipe_dict

                errors = [
                    d
                    for d in check_recipe_dict(data)
                    if d.severity >= Severity.ERROR
                ]
                if errors:
                    raise StaticCheckError(
                        f"recipe {data.get('recipe', '?')!r} rejected by "
                        "static check",
                        errors,
                    )
            recipe = Recipe.from_dict(data)
            strategy = strategy_by_name(str(payload.get("strategy", "load_aware")))
            self.lead_deployment(recipe, strategy)
        except StaticCheckError as exc:
            # A remotely submitted broken recipe must not crash the
            # leader's event handler: reject, leave a trace, stay up.
            self.trace(
                "agent.recipe_rejected",
                rules=sorted({d.rule for d in exc.diagnostics}),
                findings=len(exc.diagnostics),
            )

    def _static_check(self, recipe: Recipe) -> None:
        """Structural gate: reject statically broken recipes pre-split."""
        from repro.lint.recipe_check import check_recipe

        diagnostics = check_recipe(recipe)
        for diag in diagnostics:
            self.trace("agent.static_check", finding=diag.format())
        errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
        if errors:
            raise StaticCheckError(
                f"recipe {recipe.name!r} rejected by static check", errors
            )

    def _rate_check(self, recipe: Recipe) -> None:
        """Feasibility gate: rejects only in strict mode (see static_check)."""
        from repro.lint.recipe_check import check_rate_feasibility

        diagnostics = check_rate_feasibility(recipe)
        for diag in diagnostics:
            self.trace("agent.static_check", finding=diag.format())
        if self.static_check != "strict":
            return
        errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
        if errors:
            raise StaticCheckError(
                f"recipe {recipe.name!r} is statically unschedulable", errors
            )

    def lead_deployment(
        self, recipe: Recipe, strategy: AssignmentStrategy | None = None
    ) -> Assignment:
        """Split ``recipe``, assign over known-alive modules, send deploys.

        Unless ``static_check="off"``, the recipe passes through the
        static checker first — structurally invalid recipes raise
        :class:`StaticCheckError` before any deploy command is sent.
        """
        if self.static_check != "off":
            self._static_check(recipe)
            self._rate_check(recipe)
        subtasks = RecipeSplit().split(recipe)
        modules = self.directory.module_infos()
        assignment = TaskAssignment(strategy).assign(subtasks, modules)
        self.recipes_led += 1
        self.trace(
            "agent.recipe_led",
            recipe=recipe.name,
            subtasks=len(subtasks),
            modules=len(modules),
        )
        by_id = {s.subtask_id: s for s in subtasks}
        for subtask_id, module_name in sorted(assignment.placements.items()):
            self.module.client.publish(
                f"ifot/ctl/module/{module_name}/deploy",
                {
                    "application": recipe.name,
                    "subtask": by_id[subtask_id].to_dict(),
                },
                qos=1,
            )
        self.module.client.publish(
            f"ifot/ctl/app/{recipe.name}/deployed",
            {"assignment": assignment.to_dict(), "leader": self.module.name},
            retain=True,
        )
        return assignment

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------

    def _on_status_request(self, _topic: str, _payload: Any, _packet: Packet) -> None:
        if self.stopped:
            return
        self.module.client.publish(
            f"ifot/ctl/status/report/{self.module.name}", self.module.status()
        )

    def on_stop(self) -> None:
        if self._announce in self.module.capability_listeners:
            self.module.capability_listeners.remove(self._announce)
        if self._announce in self.module.client.reconnect_listeners:
            self.module.client.reconnect_listeners.remove(self._announce)
        self.directory.withdraw_module(self.module.name)
        self.directory.stop()


class ManagementNode:
    """The operator's console (paper Fig. 7-8's ThinkPad).

    Wraps a :class:`NeuronModule` (typically one with no devices) plus its
    agent, and offers the operations the paper's management GUI exposes:
    submit an application, watch module status, tear an application down.
    """

    def __init__(
        self,
        module: NeuronModule,
        heartbeat_s: float = 10.0,
        auto_failover: bool = False,
        static_check: str = "warn",
    ) -> None:
        self.module = module
        self.agent = ModuleAgent(
            module,
            heartbeat_s=heartbeat_s,
            assignable=False,
            static_check=static_check,
        )
        self.status_reports: dict[str, dict[str, Any]] = {}
        self.auto_failover = auto_failover
        self.failovers_performed = 0
        self.reinstatements_performed = 0
        #: Applications this node led: name -> (recipe, live assignment).
        self._led: dict[str, tuple[Recipe, Assignment]] = {}
        module.client.subscribe("ifot/ctl/status/report/+", self._on_status)
        self.directory.watch_members(self._on_membership_change)

    # ------------------------------------------------------------------
    # Application lifecycle
    # ------------------------------------------------------------------

    def submit_recipe(
        self,
        recipe: "Recipe | dict[str, Any]",
        strategy: AssignmentStrategy | str | None = None,
        via_module: str | None = None,
    ) -> Assignment | None:
        """Deploy ``recipe``.

        With ``via_module`` the recipe is shipped to that module's agent,
        which leads the deployment (Fig. 6 Step 1: "Application builder
        makes the recipe, and sends the recipe to an IFoT module") — the
        returned assignment is then None because it happens remotely.
        Otherwise this node's own agent leads, and the assignment is
        returned directly.

        A raw recipe dict is accepted too, and is statically checked
        *before* :class:`Recipe` construction: a cyclic or dangling graph
        is rejected with a :class:`StaticCheckError` carrying diagnostics
        instead of a bare constructor exception.
        """
        if isinstance(recipe, dict):
            if self.agent.static_check != "off":
                from repro.lint.recipe_check import check_recipe_dict

                errors = [
                    d
                    for d in check_recipe_dict(recipe)
                    if d.severity >= Severity.ERROR
                ]
                if errors:
                    raise StaticCheckError(
                        f"recipe {recipe.get('recipe', '?')!r} rejected by "
                        "static check",
                        errors,
                    )
            recipe = Recipe.from_dict(recipe)
        if isinstance(strategy, str):
            strategy = strategy_by_name(strategy)
        if via_module is not None:
            name = (
                strategy.name if isinstance(strategy, AssignmentStrategy) else "load_aware"
            )
            self.module.client.publish(
                f"ifot/ctl/module/{via_module}/submit",
                {"recipe": recipe.to_dict(), "strategy": name},
                qos=1,
            )
            return None
        assignment = self.agent.lead_deployment(recipe, strategy)
        self._led[recipe.name] = (recipe, assignment)
        return assignment

    def stop_application(self, application: str) -> None:
        """Broadcast undeploy of ``application`` to every known module."""
        self._led.pop(application, None)
        for record in self.agent.directory.modules():
            self.module.client.publish(
                f"ifot/ctl/module/{record.name}/undeploy",
                {"application": application, "subtask_id": "*"},
                qos=1,
            )

    # ------------------------------------------------------------------
    # Failover (extension: the paper's dynamic join/leave future work)
    # ------------------------------------------------------------------

    def _on_membership_change(self, name: str, alive: bool) -> None:
        if not self.auto_failover:
            return
        if alive:
            self._reinstate_module(name)
        else:
            self._fail_over_module(name)

    def _reinstate_module(self, joined_module: str) -> None:
        """Re-send every sub-task still placed on a (re)joined module.

        Closes the dynamic-join/leave loop: a module that crashed and came
        back with amnesia (or returned from the wrong side of a partition)
        gets its assigned sub-tasks re-deployed. Deploy is idempotent on
        the agent side — a module that kept its operators (blip) rejects
        the duplicate and keeps running.
        """
        for app_name, (recipe, assignment) in self._led.items():
            owned = sorted(
                sid
                for sid, module_name in assignment.placements.items()
                if module_name == joined_module
            )
            if not owned:
                continue
            subtasks = {s.subtask_id: s for s in RecipeSplit().split(recipe)}
            for sid in owned:
                self.module.client.publish(
                    f"ifot/ctl/module/{joined_module}/deploy",
                    {"application": app_name, "subtask": subtasks[sid].to_dict()},
                    qos=1,
                )
                self.module.node.runtime.trace(
                    "mgmt",
                    "mgmt.reinstated",
                    application=app_name,
                    subtask=sid,
                    module=joined_module,
                )
            self.reinstatements_performed += 1

    def _fail_over_module(self, dead_module: str) -> None:
        """Re-place every non-pinned sub-task that was on ``dead_module``.

        Model state held by the dead module's operators is lost (online
        models re-learn from the live stream — the middleware stores no
        data to replay). Sub-tasks pinned to the dead module are device
        bound and cannot move; they are reported and skipped.
        """
        for app_name, (recipe, assignment) in self._led.items():
            orphans = [
                sid
                for sid, module_name in assignment.placements.items()
                if module_name == dead_module
            ]
            if not orphans:
                continue
            subtasks = {s.subtask_id: s for s in RecipeSplit().split(recipe)}
            candidates = self.directory.module_infos()
            movable = []
            for sid in orphans:
                subtask = subtasks[sid]
                if subtask.pin_to == dead_module:
                    self.module.node.runtime.trace(
                        "mgmt",
                        "mgmt.failover_pinned",
                        application=app_name,
                        subtask=sid,
                        module=dead_module,
                    )
                    continue
                movable.append(subtask)
            if not movable:
                continue
            # Candidates' ``base_load`` already reflects what each module
            # hosts: agents announce their live load on every deploy and
            # heartbeat, and the directory carries it into ModuleInfo.
            replacement = TaskAssignment(LoadAwareStrategy()).assign(
                movable, candidates
            )
            for subtask in movable:
                target = replacement.module_for(subtask.subtask_id)
                assignment.placements[subtask.subtask_id] = target
                self.module.client.publish(
                    f"ifot/ctl/module/{target}/deploy",
                    {"application": app_name, "subtask": subtask.to_dict()},
                    qos=1,
                )
                self.module.node.runtime.trace(
                    "mgmt",
                    "mgmt.failover_moved",
                    application=app_name,
                    subtask=subtask.subtask_id,
                    from_module=dead_module,
                    to_module=target,
                )
            self.failovers_performed += 1
            self.module.client.publish(
                f"ifot/ctl/app/{app_name}/deployed",
                {"assignment": assignment.to_dict(), "leader": self.module.name},
                retain=True,
            )

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    def request_status(self) -> None:
        """Ask every module to report; answers land in ``status_reports``."""
        self.module.client.publish("ifot/ctl/status/request", {})

    def _on_status(self, topic: str, payload: Any, _packet: Packet) -> None:
        module = topic.rsplit("/", 1)[-1]
        if isinstance(payload, dict):
            self.status_reports[module] = payload

    @property
    def directory(self) -> StreamDirectory:
        return self.agent.directory

    def render_dashboard(self) -> str:
        """Textual stand-in for the paper's management GUI (Fig. 8).

        Renders the live view this node has: known modules with their
        capabilities and load, collected status reports, announced streams
        and led applications. Call :meth:`request_status` (plus a settle)
        first if fresh per-module operator lists are wanted.
        """
        lines = ["IFoT management console", "=" * 64]
        lines.append("modules:")
        for record in self.directory.modules():
            role = "" if record.assignable else "  [management]"
            caps = ", ".join(sorted(record.capabilities)) or "-"
            lines.append(
                f"  {record.name:<16} load={record.load:6.2f} "
                f"capacity={record.capacity:4.1f}  caps: {caps}{role}"
            )
            report = self.status_reports.get(record.name)
            if report and report.get("operators"):
                for operator in report["operators"]:
                    lines.append(f"      - {operator}")
        streams = self.directory.find_streams()
        if streams:
            lines.append("streams:")
            for stream in streams:
                lines.append(
                    f"  {stream.application}:{stream.stream:<20} "
                    f"({stream.producer_task} @ {stream.producer_module})"
                )
        if self._led:
            lines.append("applications led here:")
            for name, (_recipe, assignment) in sorted(self._led.items()):
                placements = ", ".join(
                    f"{sid}->{mod}" for sid, mod in sorted(assignment.placements.items())
                )
                lines.append(f"  {name}: {placements}")
        return "\n".join(lines)

    def shutdown(self) -> None:
        self.agent.stop()
        self.module.shutdown()
