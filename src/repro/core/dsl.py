"""A textual recipe description language (the paper's future work, §VI).

"Definition of the language to describe recipes ... [is] part of future
work." This module defines that language: a small, indentation-tolerant,
line-oriented format that compiles to :class:`~repro.core.recipe.Recipe`
(and back), designed to be written by hand next to the JSON DSL the
middleware already accepts.

Example::

    # Fall detection pipeline
    recipe elderly-monitoring

    task wearable : sensor
        out accel-raw
        needs sensor:accel
        on pi-wearable
        device = accel
        rate_hz = 20

    task magnitude : map
        in accel-raw
        out accel-mag
        fn = magnitude
        keys = [ax, ay, az]

    task detector : predict x2        # two data-parallel shards
        in accel-mag
        out scored
        model = anomaly
        threshold = 6.0

Grammar (one construct per line; ``#`` starts a comment anywhere):

* ``recipe <name>`` — exactly once, first non-comment line;
* ``task <id> : <operator> [xN]`` — opens a task; ``xN`` sets parallelism;
* inside a task:
  ``in <stream>[, <stream>...]`` — input streams,
  ``out <stream>[, ...]`` — output streams,
  ``needs <cap>[, ...]`` — required capabilities,
  ``on <module>`` — pin placement,
  ``[param] <key> = <value>`` — operator parameter. The ``param`` prefix
  is only needed when the key collides with a keyword (``in``, ``out``,
  ``needs``, ``on``, ``task``, ``recipe``, ``param``). The key
  ``deadline_ms`` is special: it sets the task's end-to-end deadline
  (a :class:`TaskSpec` field checked by ``repro lint --deadline``)
  rather than an operator parameter.

Values parse as JSON when possible (numbers, booleans, ``null``, quoted
strings, ``[...]`` lists, ``{...}`` objects); otherwise a bare word is a
string, and ``[a, b, c]`` with bare words is a list of strings.
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.core.recipe import Recipe, TaskSpec
from repro.errors import RecipeError

__all__ = ["parse_recipe", "format_recipe"]

_KEYWORDS = {"recipe", "task", "in", "out", "needs", "on", "param"}
_TASK_RE = re.compile(
    r"^task\s+(?P<id>\S+)\s*:\s*(?P<op>\S+)(?:\s+x(?P<par>\d+))?$"
)
_PARAM_RE = re.compile(r"^(?:param\s+)?(?P<key>[^\s=]+)\s*=\s*(?P<value>.+)$")


def _strip_comment(line: str) -> str:
    """Remove a ``#`` comment, respecting quoted strings."""
    in_string = False
    for i, ch in enumerate(line):
        if ch == '"':
            in_string = not in_string
        elif ch == "#" and not in_string:
            return line[:i]
    return line


def _parse_value(text: str, line_no: int) -> Any:
    text = text.strip()
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        pass
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        items = [item.strip() for item in inner.split(",")]
        return [_parse_value(item, line_no) for item in items]
    if text.startswith(("[", "{")):
        raise RecipeError(f"line {line_no}: malformed structured value: {text!r}")
    return text  # bare word -> string


def _split_names(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def parse_recipe(text: str) -> Recipe:
    """Compile DSL ``text`` into a validated :class:`Recipe`."""
    recipe_name: str | None = None
    tasks: list[dict[str, Any]] = []
    current: dict[str, Any] | None = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        word = line.split(None, 1)[0]

        if word == "recipe":
            if recipe_name is not None:
                raise RecipeError(f"line {line_no}: duplicate recipe declaration")
            parts = line.split()
            if len(parts) != 2:
                raise RecipeError(f"line {line_no}: expected 'recipe <name>'")
            recipe_name = parts[1]
            continue

        if word == "task":
            match = _TASK_RE.match(line)
            if match is None:
                raise RecipeError(
                    f"line {line_no}: expected 'task <id> : <operator> [xN]'"
                )
            current = {
                "id": match.group("id"),
                "operator": match.group("op"),
                "inputs": [],
                "outputs": [],
                "params": {},
                "capabilities": [],
                "parallelism": int(match.group("par") or 1),
                "pin_to": None,
                "deadline_ms": None,
            }
            tasks.append(current)
            continue

        if current is None:
            raise RecipeError(
                f"line {line_no}: {word!r} outside of a task "
                "(expected 'recipe' or 'task' first)"
            )

        rest = line[len(word):].strip()
        if word in ("in", "out", "needs", "on") and rest.startswith("="):
            raise RecipeError(
                f"line {line_no}: param {word!r} collides with a keyword; "
                f"write 'param {word} = ...'"
            )
        if word == "in":
            current["inputs"].extend(_split_names(rest))
        elif word == "out":
            current["outputs"].extend(_split_names(rest))
        elif word == "needs":
            current["capabilities"].extend(_split_names(rest))
        elif word == "on":
            if not rest or len(rest.split()) != 1:
                raise RecipeError(f"line {line_no}: expected 'on <module>'")
            current["pin_to"] = rest
        else:
            match = _PARAM_RE.match(line)
            if match is None:
                raise RecipeError(
                    f"line {line_no}: expected a clause or '<key> = <value>', "
                    f"got {line!r}"
                )
            key = match.group("key")
            if key in _KEYWORDS and not line.startswith("param "):
                raise RecipeError(
                    f"line {line_no}: param {key!r} collides with a keyword; "
                    f"write 'param {key} = ...'"
                )
            value = _parse_value(match.group("value"), line_no)
            if key == "deadline_ms" and not line.startswith("param "):
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise RecipeError(
                        f"line {line_no}: deadline_ms must be a number, "
                        f"got {value!r}"
                    )
                current["deadline_ms"] = value
            else:
                current["params"][key] = value

    if recipe_name is None:
        raise RecipeError("missing 'recipe <name>' declaration")
    if not tasks:
        raise RecipeError(f"recipe {recipe_name!r} declares no tasks")

    specs = [
        TaskSpec(
            task_id=entry["id"],
            operator=entry["operator"],
            inputs=entry["inputs"],
            outputs=entry["outputs"],
            params=entry["params"],
            capabilities=entry["capabilities"],
            parallelism=entry["parallelism"],
            pin_to=entry["pin_to"],
            deadline_ms=entry["deadline_ms"],
        )
        for entry in tasks
    ]
    return Recipe(recipe_name, specs)


def _format_value(value: Any) -> str:
    if isinstance(value, str):
        # Bare if unambiguous, quoted JSON otherwise.
        if (
            value
            and not value[0] in "[{\""
            and "," not in value
            and "=" not in value
            and "#" not in value
            and value not in ("true", "false", "null")
            and not _looks_numeric(value)
        ):
            return value
        return json.dumps(value)
    return json.dumps(value, sort_keys=True)


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def format_recipe(recipe: Recipe) -> str:
    """Render ``recipe`` in the DSL (inverse of :func:`parse_recipe`)."""
    lines = [f"recipe {recipe.name}", ""]
    for task_id in recipe.topological_order:
        task = recipe.tasks[task_id]
        suffix = f" x{task.parallelism}" if task.parallelism > 1 else ""
        lines.append(f"task {task.task_id} : {task.operator}{suffix}")
        if task.inputs:
            lines.append(f"    in {', '.join(task.inputs)}")
        if task.outputs:
            lines.append(f"    out {', '.join(task.outputs)}")
        if task.capabilities:
            lines.append(f"    needs {', '.join(task.capabilities)}")
        if task.pin_to:
            lines.append(f"    on {task.pin_to}")
        if task.deadline_ms is not None:
            lines.append(f"    deadline_ms = {json.dumps(task.deadline_ms)}")
        for key in sorted(task.params):
            prefix = "param " if key in _KEYWORDS else ""
            lines.append(f"    {prefix}{key} = {_format_value(task.params[key])}")
        lines.append("")
    return "\n".join(lines)
