"""Top-level facade: build a cluster, submit recipes, run applications.

:class:`IFoTCluster` assembles the pieces of the paper's Fig. 7 in a few
lines — a broker module, worker neuron modules with attached devices, and
a management node — on either runtime. Examples and benchmarks start here:

    runtime = SimRuntime(seed=1, cost_model=pi_cost_model())
    cluster = IFoTCluster(runtime)
    module_a = cluster.add_module("module-a")
    module_a.attach_sensor("accel", AccelerometerModel(events))
    ...
    app = cluster.submit(recipe)
    runtime.run(until=30.0)
    app.stop()
"""

from __future__ import annotations

from typing import Any

from repro.core.assignment import Assignment, AssignmentStrategy
from repro.core.management import ManagementNode
from repro.core.node import NeuronModule
from repro.core.recipe import Recipe
from repro.errors import ConfigurationError, DeploymentError
from repro.mqtt.broker import Broker
from repro.runtime.base import Runtime
from repro.runtime.node import Node
from repro.runtime.real import AsyncioRuntime
from repro.runtime.sim import SimRuntime

__all__ = ["IFoTCluster", "Application"]


class Application:
    """A deployed recipe: handle for inspection and teardown."""

    def __init__(
        self,
        cluster: "IFoTCluster",
        recipe: Recipe,
        assignment: Assignment | None,
    ) -> None:
        self.cluster = cluster
        self.recipe = recipe
        self.assignment = assignment
        self.stopped = False

    @property
    def name(self) -> str:
        return self.recipe.name

    def operator(self, subtask_id: str) -> Any:
        """The live operator instance for ``subtask_id`` (local lookup)."""
        if self.assignment is None:
            raise DeploymentError(
                "assignment unknown (recipe was led remotely); "
                "look the operator up on its module directly"
            )
        if subtask_id not in self.assignment.placements:
            raise DeploymentError(f"no such subtask {subtask_id!r} in {self.name!r}")
        module_name = self.assignment.module_for(subtask_id)
        module = self.cluster.module(module_name)
        key = f"{self.recipe.name}/{subtask_id}"
        operator = module.operators.get(key)
        if operator is None:
            raise DeploymentError(f"{key!r} not (yet) deployed on {module_name!r}")
        return operator

    def stop(self) -> None:
        if self.stopped:
            return
        self.cluster.management.stop_application(self.recipe.name)
        self.stopped = True


class IFoTCluster:
    """One broker + N neuron modules + a management node."""

    def __init__(
        self,
        runtime: Runtime,
        broker_node_name: str = "broker-node",
        management_node_name: str = "mgmt",
        broker_kwargs: dict[str, Any] | None = None,
        node_kwargs: dict[str, Any] | None = None,
        heartbeat_s: float = 5.0,
        auto_failover: bool = False,
        client_keepalive_s: float = 30.0,
        auto_reconnect: bool = False,
        broker_params: dict[str, Any] | None = None,
    ) -> None:
        self.runtime = runtime
        self.heartbeat_s = heartbeat_s
        #: Keep-alive applied to every module's MQTT session. Chaos
        #: scenarios shrink this so failure detection (and therefore
        #: recovery) happens within a short simulated window.
        self.client_keepalive_s = client_keepalive_s
        self.auto_reconnect = auto_reconnect
        self._broker_params = dict(broker_params or {})
        self.modules: dict[str, NeuronModule] = {}
        broker_node = self._make_node(broker_node_name, **(broker_kwargs or {}))
        self.broker = Broker(broker_node, **self._broker_params)
        management_node = self._make_node(management_node_name, **(node_kwargs or {}))
        self.management = ManagementNode(
            NeuronModule(
                management_node,
                self.broker.address,
                keepalive_s=client_keepalive_s,
                auto_reconnect=auto_reconnect,
            ),
            heartbeat_s=heartbeat_s,
            auto_failover=auto_failover,
        )

    # ------------------------------------------------------------------
    # Topology building
    # ------------------------------------------------------------------

    def _make_node(self, name: str, **kwargs: Any) -> Node:
        runtime = self.runtime
        if isinstance(runtime, SimRuntime):
            return runtime.add_node(name, **kwargs)
        if isinstance(runtime, AsyncioRuntime):
            if kwargs:
                raise ConfigurationError(
                    f"node kwargs {sorted(kwargs)} are simulation-only"
                )
            return runtime.add_node(name)
        raise ConfigurationError(
            f"unsupported runtime type {type(runtime).__name__}"
        )

    def add_module(
        self,
        name: str,
        extra_capabilities: set[str] | None = None,
        agent: bool = True,
        **node_kwargs: Any,
    ) -> NeuronModule:
        """Create a neuron module (node + MQTT session + agent)."""
        from repro.core.management import ModuleAgent  # late: avoid cycle at import

        if name in self.modules:
            raise ConfigurationError(f"module {name!r} already exists")
        node = self._make_node(name, **node_kwargs)
        module = NeuronModule(
            node,
            self.broker.address,
            extra_capabilities=extra_capabilities,
            keepalive_s=self.client_keepalive_s,
            auto_reconnect=self.auto_reconnect,
        )
        if agent:
            module.agent = ModuleAgent(module, heartbeat_s=self.heartbeat_s)  # type: ignore[attr-defined]
        self.modules[name] = module
        return module

    def module(self, name: str) -> NeuronModule:
        try:
            return self.modules[name]
        except KeyError:
            raise ConfigurationError(f"unknown module {name!r}") from None

    # ------------------------------------------------------------------
    # Restart orchestration (chaos / dynamic join-leave)
    # ------------------------------------------------------------------

    def restart_module(self, name: str) -> NeuronModule:
        """Power-cycle module ``name``: amnesia restart + software re-boot.

        The node loses all component state (operators, MQTT session,
        directory view); its physical devices (sensor/actuator models) and
        identity survive, as on a real reboot. A fresh
        :class:`NeuronModule` + agent come up and announce a new
        incarnation, which triggers management-side re-deployment when
        auto-failover is on.
        """
        from repro.core.management import ModuleAgent  # late: avoid cycle at import

        old = self.module(name)
        sensors = dict(old.sensors)
        actuators = dict(old.actuators)
        extra = set(old._extra_capabilities)
        had_agent = getattr(old, "agent", None) is not None
        node = old.node
        node.restart()
        module = NeuronModule(
            node,
            self.broker.address,
            extra_capabilities=extra,
            keepalive_s=self.client_keepalive_s,
            auto_reconnect=self.auto_reconnect,
        )
        for device, model in sensors.items():
            module.attach_sensor(device, model)
        for device, model in actuators.items():
            module.attach_actuator(device, model)
        if had_agent:
            module.agent = ModuleAgent(module, heartbeat_s=self.heartbeat_s)  # type: ignore[attr-defined]
        self.modules[name] = module
        return module

    def restart_broker(self) -> Broker:
        """Power-cycle the broker node and boot a fresh broker.

        All sessions, subscriptions, retained messages and queued QoS 1
        messages are lost (this broker has no persistence). Clients with
        auto-reconnect re-establish sessions via their keep-alive
        watchdogs, observe ``session_present=False`` and replay their
        subscriptions; agents then re-announce, rebuilding the retained
        registry from live state.
        """
        node = self.broker.node
        node.restart()
        self.broker = Broker(node, **self._broker_params)
        return self.broker

    # ------------------------------------------------------------------
    # Applications
    # ------------------------------------------------------------------

    def settle(self, duration_s: float = 1.0) -> None:
        """Advance a simulated runtime so sessions, announcements and
        subscriptions settle. No-op under the real runtime (callers use
        wall-clock sleeps there)."""
        if isinstance(self.runtime, SimRuntime):
            self.runtime.run(until=self.runtime.now + duration_s)

    def submit(
        self,
        recipe: Recipe,
        strategy: AssignmentStrategy | str | None = None,
        via_module: str | None = None,
    ) -> Application:
        """Deploy ``recipe`` through the management node."""
        assignment = self.management.submit_recipe(
            recipe, strategy=strategy, via_module=via_module
        )
        return Application(self, recipe, assignment)

    def shutdown(self) -> None:
        """Tear the whole cluster down (modules, management, broker)."""
        for module in self.modules.values():
            agent = getattr(module, "agent", None)
            if agent is not None:
                agent.stop()
            module.shutdown()
        self.management.shutdown()
        self.broker.stop()
