"""Flow analysis: the Learning / Judging / Managing classes (Fig. 4).

Paper §IV-C-2: "Learning class analyzes a time series of sensor data in a
sequential order, and builds / updates models. Judging class analyzes data
streams using the built model. Managing class manages the cooperative
operation for distributed processing."

The model itself comes from :mod:`repro.core.models` (the Jubatus
substitute). Two paths move models between classes:

* **snapshots** — a LearningClass with ``publish_model_every: N`` publishes
  its full model state as a retained message every N training records;
  a JudgingClass with ``model_from: <train task id>`` subscribes and swaps
  the snapshot in. This is the module E -> module F model flow of Fig. 9.
* **MIX** — LearningClass instances sharing a ``mix_group`` take part in
  rounds run by a :class:`ManagingClass`, converging to a common model
  without centralizing the stream (Jubatus's distributed learning).
"""

from __future__ import annotations

from typing import Any

from repro.core.flow import FlowRecord
from repro.core.models import build_flow_model
from repro.core.operators import PayloadEffect, StreamOperator, register_operator
from repro.errors import RecipeError
from repro.ml.evaluation import PrequentialAccuracy
from repro.ml.mix import MixCoordinator, MixParticipantState
from repro.mqtt.packets import Packet

__all__ = ["LearningClass", "JudgingClass", "ManagingClass"]


def _model_topic(application: str, task_id: str) -> str:
    return f"ifot/model/{application}/{task_id}"


def _mix_topic(application: str, group: str, leaf: str) -> str:
    return f"ifot/mix/{application}/{group}/{leaf}"


class LearningClass(StreamOperator):
    """Online model building (operator name ``train``).

    Params: model configuration (see
    :func:`repro.core.models.build_flow_model`) plus:

    ``publish_model_every``
        Publish a retained model snapshot every N trained records (0 =
        never). Snapshots live on ``ifot/model/<app>/<task id>``.
    ``mix_group``
        Join this MIX group as a participant (model must be mixable).
    ``emit_info``
        When the task declares output streams, forward each trained record
        annotated with training info (default True when outputs exist).
    ``track_accuracy``
        Prequential (test-then-train) accuracy tracking: before each
        training step the current model predicts the record and the
        outcome feeds a sliding-window accuracy, exposed as
        ``self.accuracy`` and in the ``ml.trained`` trace (default False —
        it costs one extra inference per record).
    """

    cost_op = "ml.train"

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        kind = str(params.get("model", "classifier"))
        reads_any: tuple[str, ...] = ()
        if kind in ("classifier", "knn", "tree"):
            reads_any = (str(params.get("label_key", "label")),)
        elif kind == "regression":
            reads_any = (str(params.get("target_key", "target")),)
        # Training-info attributes forwarded when emit_info is on; a
        # may-produce union over the model kinds' train() outcomes.
        return PayloadEffect(
            reads_any=reads_any,
            adds_attrs=(
                "trained", "updated", "label", "reason", "score", "cluster",
                "grew",
            ),
        )

    def configure(self) -> None:
        reserved = {
            "publish_model_every", "mix_group", "emit_info", "qos",
            "track_accuracy", "accuracy_window",
        }
        model_params = {k: v for k, v in self.params.items() if k not in reserved}
        self.model = build_flow_model(model_params)
        self.records_trained = 0
        self.publish_model_every = int(self.params.get("publish_model_every", 0))
        self.mix_group = self.params.get("mix_group")
        self.emit_info = bool(self.params.get("emit_info", True))
        self.track_accuracy = bool(self.params.get("track_accuracy", False))
        self.accuracy = PrequentialAccuracy(
            window=int(self.params.get("accuracy_window", 200))
        )
        self._mix_state: MixParticipantState | None = None
        if self.mix_group is not None:
            if not self.model.mixable:
                raise RecipeError(f"{self.name}: model cannot join a MIX group")
            self._mix_state = MixParticipantState(
                self.subtask.subtask_id, self.model.mix_model()
            )
            group = str(self.mix_group)
            self.module.client.subscribe(
                _mix_topic(self.application, group, "req"), self._on_mix_request
            )
            self.module.client.subscribe(
                _mix_topic(self.application, group, "mixed"), self._on_mix_broadcast
            )

    def on_record(self, stream: str, record: FlowRecord) -> None:
        accuracy_field = {}
        if self.track_accuracy and self.model.ready:
            label = self.model.true_label(record)
            if label is not None:
                predicted = self.model.judge(record).get("label")
                self.accuracy.record(predicted == label)
                accuracy_field = {"win_acc": self.accuracy.windowed}
        info = self.model.train(record)
        now = self.runtime.now
        self.records_trained += 1
        self.trace(
            "ml.trained",
            sample_id=record.sample_id,
            sensed_at=record.sensed_at,
            latency_s=now - record.sensed_at,
            merged=len(record.merged_ids) or 1,
            **({"trace_id": record.ctx.trace_id} if record.ctx is not None else {}),
            **accuracy_field,
            **{k: v for k, v in info.items() if k in ("trained", "label")},
        )
        if (
            self.publish_model_every > 0
            and self.records_trained % self.publish_model_every == 0
        ):
            self._publish_snapshot()
        if self.emit_info and self.publishers:
            out = record.derive(self.subtask.task_id)
            out.attributes.update(info)
            self.emit(out)

    def export_state(self) -> dict[str, Any]:
        super().export_state()
        return {
            "model": self.model.export_state(),
            "records_trained": self.records_trained,
        }

    def import_state(self, state: dict[str, Any]) -> None:
        super().import_state(state)
        model_state = state.get("model")
        if model_state is not None:
            self.model.import_state(model_state)
        self.records_trained = int(state.get("records_trained", 0))

    def _publish_snapshot(self) -> None:
        snapshot = self.model.export_state()
        self.module.client.publish(
            _model_topic(self.application, self.subtask.task_id),
            {"from": self.subtask.subtask_id, "state": snapshot},
            retain=True,
            headers={"published_at": self.runtime.now},
        )
        self.trace("ml.model_published", records_trained=self.records_trained)

    # ------------------------------------------------------------------
    # MIX participation
    # ------------------------------------------------------------------

    def _on_mix_request(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped or self._mix_state is None:
            return
        round_id = int(payload["round"])
        reply = self._mix_state.make_reply(
            round_id, weight=float(max(1, self.records_trained))
        )
        self.node.execute(
            "ml.mix",
            self.module.client.publish,
            _mix_topic(self.application, str(self.mix_group), "diff"),
            reply,
        )

    def _on_mix_broadcast(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped or self._mix_state is None:
            return
        applied = self._mix_state.apply_broadcast(
            int(payload["round"]), payload["diff"]
        )
        if applied:
            self.trace("ml.mix_applied", round=int(payload["round"]))


class JudgingClass(StreamOperator):
    """Online inference (operator name ``predict``).

    Params: model configuration plus:

    ``model_from``
        Task id of a LearningClass publishing snapshots; this judge loads
        each snapshot (the Fig. 9 predict path).
    ``train_on_stream``
        Self-contained mode: the judge also feeds every record to the
        model (anomaly and cluster models typically run this way).

    Records judged before any model is available pass through with
    ``judged: False`` so downstream operators can tell silence from
    normality.
    """

    cost_op = "ml.predict"

    #: judge() output keys per model kind (see repro.core.models).
    _JUDGE_ATTRS = {
        "classifier": ("label", "margin"),
        "regression": ("prediction",),
        "anomaly": ("score", "anomalous"),
        "cluster": ("cluster", "distance"),
        "knn": ("label", "votes"),
        "tree": ("label", "confidence"),
    }

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        kind = str(params.get("model", "classifier"))
        return PayloadEffect(
            adds_attrs=cls._JUDGE_ATTRS.get(kind, ()) + ("judged",)
        )

    def configure(self) -> None:
        reserved = {"model_from", "train_on_stream", "qos"}
        model_params = {k: v for k, v in self.params.items() if k not in reserved}
        self.model = build_flow_model(model_params)
        self.train_on_stream = bool(self.params.get("train_on_stream", False))
        self.records_judged = 0
        self.records_unjudged = 0
        self.model_loads = 0
        model_from = self.params.get("model_from")
        if model_from is not None:
            self.module.client.subscribe(
                _model_topic(self.application, str(model_from)),
                self._on_model_snapshot,
            )

    def export_state(self) -> dict[str, Any]:
        super().export_state()
        return {
            "model": self.model.export_state() if self.model.ready else None,
            "model_loads": self.model_loads,
        }

    def import_state(self, state: dict[str, Any]) -> None:
        super().import_state(state)
        model_state = state.get("model")
        if model_state is not None:
            self.model.import_state(model_state)
        self.model_loads = int(state.get("model_loads", 0))

    def _on_model_snapshot(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped:
            return
        self.node.execute("ml.load_model", self._load_snapshot, payload)

    def _load_snapshot(self, payload: Any) -> None:
        try:
            self.model.import_state(payload["state"])
        except (KeyError, TypeError) as exc:
            self.trace("ml.model_load_error", error=str(exc))
            return
        self.model_loads += 1
        self.trace("ml.model_loaded", loads=self.model_loads)

    def on_record(self, stream: str, record: FlowRecord) -> None:
        out = record.derive(self.subtask.task_id)
        if self.train_on_stream and not self.model.ready:
            # Bootstrap: feed the model until it can judge.
            self.model.train(record)
        if self.model.ready:
            judgement = self.model.judge(record)
            out.attributes.update(judgement)
            out.attributes["judged"] = True
            self.records_judged += 1
        else:
            out.attributes["judged"] = False
            self.records_unjudged += 1
        now = self.runtime.now
        self.trace(
            "ml.judged",
            sample_id=record.sample_id,
            sensed_at=record.sensed_at,
            latency_s=now - record.sensed_at,
            judged=out.attributes["judged"],
            **({"trace_id": record.ctx.trace_id} if record.ctx is not None else {}),
        )
        if self.publishers:
            self.emit(out)


class ManagingClass(StreamOperator):
    """MIX round coordination (operator name ``mix``).

    Params:

    ``group``
        MIX group name (participants name the same group).
    ``participants``
        Sub-task ids expected to reply each round.
    ``interval_s``
        Round period (default 10).
    ``timeout_s``
        How long to wait before closing a round with whatever arrived
        (default ``interval_s / 2``); rounds below quorum are aborted.
    ``min_quorum``
        Fewest diffs worth averaging (default 1).
    """

    cost_op = "ml.mix"

    @classmethod
    def payload_effect(cls, params: dict[str, Any]) -> PayloadEffect:
        # Coordination happens over control topics, not record streams.
        return PayloadEffect(opaque=True)

    def configure(self) -> None:
        group = self.params.get("group")
        participants = self.params.get("participants")
        if not group or not participants:
            raise RecipeError(f"{self.name}: mix needs 'group' and 'participants'")
        self.group = str(group)
        self.participants = [str(p) for p in participants]
        self.interval_s = float(self.params.get("interval_s", 10.0))
        self.timeout_s = float(self.params.get("timeout_s", self.interval_s / 2.0))
        self.coordinator = MixCoordinator(
            min_quorum=int(self.params.get("min_quorum", 1))
        )
        self.rounds_started = 0
        self.rounds_completed = 0
        self.rounds_aborted = 0
        self.module.client.subscribe(
            _mix_topic(self.application, self.group, "diff"), self._on_diff
        )
        self.every(self.interval_s, self._start_round)
        self._deadline_handle = None

    def _start_round(self) -> None:
        if self.coordinator.current is not None:
            # Previous round still open past its deadline: close it now.
            self._close_round(allow_partial=True)
        round_ = self.coordinator.start_round(self.participants)
        self.rounds_started += 1
        self.trace("mix.round_start", round=round_.round_id)
        self.module.client.publish(
            _mix_topic(self.application, self.group, "req"),
            {"round": round_.round_id},
        )
        self._deadline_handle = self.after(
            self.timeout_s, self._close_round, True
        )

    def _on_diff(self, _topic: str, payload: Any, _packet: Packet) -> None:
        if self.stopped or self.coordinator.current is None:
            return
        complete = self.coordinator.receive_diff(
            str(payload["participant"]),
            int(payload["round"]),
            payload["diff"],
            weight=float(payload.get("weight", 1.0)),
        )
        if complete:
            if self._deadline_handle is not None:
                self._deadline_handle.cancel()
                self._deadline_handle = None
            self._close_round(allow_partial=False)

    def _close_round(self, allow_partial: bool) -> None:
        current = self.coordinator.current
        if current is None:
            return
        round_id = current.round_id
        received = len(current.diffs)
        if received < self.coordinator.min_quorum:
            self.coordinator.abort_round()
            self.rounds_aborted += 1
            self.trace("mix.round_aborted", round=round_id, received=received)
            return
        mixed = self.coordinator.finish_round(allow_partial=allow_partial)
        self.rounds_completed += 1
        self.trace("mix.round_done", round=round_id, received=received)
        self.module.client.publish(
            _mix_topic(self.application, self.group, "mixed"),
            {"round": round_id, "diff": mixed},
        )


register_operator("train", LearningClass)
register_operator("predict", JudgingClass)
register_operator("mix", ManagingClass)
