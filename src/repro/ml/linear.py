"""Online multiclass linear learners.

These are the classifier algorithms Jubatus ships for its ``classifier``
service, reimplemented in their diagonal/multiclass forms:

* :class:`Perceptron` — Rosenblatt update on mistakes;
* :class:`PassiveAggressive` — PA, PA-I, PA-II (Crammer et al. 2006);
* :class:`ConfidenceWeighted` — diagonal CW (Dredze et al. 2008), simplified
  to the variance-scaled aggressive update;
* :class:`AROW` — adaptive regularization of weight vectors (Crammer et
  al. 2009), diagonal version.

All learners share the multiclass reduction: one weight vector per label,
prediction is the argmax margin, and an update touches the true label's
vector and the highest-scoring wrong label's vector. Every learner supports
the MIX protocol through ``collect_diff`` / ``apply_mixed`` (weight deltas
since the last mix; see :mod:`repro.ml.mix`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.errors import ModelError
from repro.ml.features import FeatureVector
from repro.ml.storage import SparseVector
from repro.util.validate import require_positive

__all__ = [
    "LinearLearner",
    "Perceptron",
    "PassiveAggressive",
    "ConfidenceWeighted",
    "AROW",
    "make_learner",
]


class LinearLearner(ABC):
    """Shared multiclass machinery: scores, prediction, MIX bookkeeping."""

    def __init__(self) -> None:
        self.weights: dict[str, SparseVector] = {}
        self._mix_base: dict[str, SparseVector] = {}
        self.updates = 0
        self.examples_seen = 0

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def scores(self, features: FeatureVector) -> dict[str, float]:
        """Margin per known label (empty if the model is untrained)."""
        return {label: w.dot(features) for label, w in self.weights.items()}

    def classify(self, features: FeatureVector) -> tuple[str, dict[str, float]]:
        """Return ``(best_label, scores)``.

        Raises :class:`~repro.errors.ModelError` when no label has ever
        been trained — callers on the judging path check ``is_trained``.
        """
        scores = self.scores(features)
        if not scores:
            raise ModelError("classify() on an untrained model")
        # Deterministic tie-break on label name.
        best = max(scores, key=lambda label: (scores[label], label))
        return best, scores

    @property
    def is_trained(self) -> bool:
        return bool(self.weights)

    @property
    def labels(self) -> list[str]:
        return sorted(self.weights)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(self, features: FeatureVector, label: str) -> bool:
        """Fold one labelled example in; returns True if weights changed."""
        if not label:
            raise ModelError("empty label")
        self.examples_seen += 1
        self._ensure_label(label)
        wrong_label, margin = self._worst_margin(features, label)
        updated = self._update(features, label, wrong_label, margin)
        if updated:
            self.updates += 1
        return updated

    def _ensure_label(self, label: str) -> None:
        if label not in self.weights:
            self.weights[label] = SparseVector()

    def _worst_margin(
        self, features: FeatureVector, label: str
    ) -> tuple[str | None, float]:
        """Highest-scoring wrong label and the margin against it.

        Margin = score(correct) - score(best wrong); with no other label
        the margin is the correct score itself (against implicit zero).
        """
        correct = self.weights[label].dot(features)
        wrong_label: str | None = None
        wrong_score = 0.0  # implicit all-zero competitor
        for other, vector in self.weights.items():
            if other == label:
                continue
            score = vector.dot(features)
            if wrong_label is None or score > wrong_score:
                wrong_label = other
                wrong_score = score
        return wrong_label, correct - wrong_score

    @abstractmethod
    def _update(
        self,
        features: FeatureVector,
        label: str,
        wrong_label: str | None,
        margin: float,
    ) -> bool:
        """Algorithm-specific update; returns True if weights changed."""

    def _apply(
        self,
        features: FeatureVector,
        label: str,
        wrong_label: str | None,
        step: float,
    ) -> None:
        """Symmetric two-vector update with step size ``step``."""
        self.weights[label].add(features, scale=step)
        if wrong_label is not None:
            self.weights[wrong_label].add(features, scale=-step)

    # ------------------------------------------------------------------
    # MIX support (see repro.ml.mix)
    # ------------------------------------------------------------------

    def collect_diff(self) -> dict[str, dict[str, float]]:
        """Weight deltas per label since the last ``apply_mixed``."""
        diff: dict[str, dict[str, float]] = {}
        for label, vector in self.weights.items():
            base = self._mix_base.get(label, SparseVector())
            delta = vector.copy()
            delta.add(base.to_dict(), scale=-1.0)
            diff[label] = delta.to_dict()
        return diff

    def apply_mixed(self, mixed_diff: dict[str, dict[str, float]]) -> None:
        """Set weights to ``base + mixed_diff`` and advance the base."""
        for label, delta in mixed_diff.items():
            base = self._mix_base.get(label, SparseVector())
            merged = base.copy()
            merged.add(delta)
            self.weights[label] = merged
        self._mix_base = {l: v.copy() for l, v in self.weights.items()}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_state(self) -> dict[str, Any]:
        return {
            "algorithm": type(self).__name__,
            "weights": {label: v.to_dict() for label, v in self.weights.items()},
            "updates": self.updates,
            "examples_seen": self.examples_seen,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        self.weights = {
            label: SparseVector.from_dict(w) for label, w in state["weights"].items()
        }
        self._mix_base = {l: v.copy() for l, v in self.weights.items()}
        self.updates = int(state.get("updates", 0))
        self.examples_seen = int(state.get("examples_seen", 0))


def _squared_norm(features: FeatureVector) -> float:
    return sum(v * v for v in features.values())


class Perceptron(LinearLearner):
    """Update by ±x on misclassification."""

    def _update(
        self,
        features: FeatureVector,
        label: str,
        wrong_label: str | None,
        margin: float,
    ) -> bool:
        if margin > 0:
            return False
        self._apply(features, label, wrong_label, step=1.0)
        return True


class PassiveAggressive(LinearLearner):
    """PA family. ``variant`` 0 = PA, 1 = PA-I, 2 = PA-II; ``c`` is the
    aggressiveness cap / regularizer of the bounded variants."""

    def __init__(self, c: float = 1.0, variant: int = 1) -> None:
        super().__init__()
        if variant not in (0, 1, 2):
            raise ModelError(f"unknown PA variant {variant}")
        self.c = require_positive(c, "c")
        self.variant = variant

    def _update(
        self,
        features: FeatureVector,
        label: str,
        wrong_label: str | None,
        margin: float,
    ) -> bool:
        loss = 1.0 - margin
        if loss <= 0:
            return False
        # The update moves two vectors in opposite directions, so the
        # effective instance norm doubles.
        norm2 = 2.0 * _squared_norm(features)
        if norm2 <= 0:
            return False
        if self.variant == 0:
            tau = loss / norm2
        elif self.variant == 1:
            tau = min(self.c, loss / norm2)
        else:
            tau = loss / (norm2 + 1.0 / (2.0 * self.c))
        self._apply(features, label, wrong_label, step=tau)
        return True


class _ConfidenceMixin(LinearLearner):
    """Per-(label, feature) diagonal confidence storage."""

    def __init__(self, initial_variance: float = 1.0) -> None:
        super().__init__()
        self.initial_variance = require_positive(initial_variance, "initial_variance")
        self._variance: dict[str, dict[str, float]] = {}

    def variance_of(self, label: str, feature: str) -> float:
        return self._variance.get(label, {}).get(feature, self.initial_variance)

    def _set_variance(self, label: str, feature: str, value: float) -> None:
        self._variance.setdefault(label, {})[feature] = value

    def _confidence(self, features: FeatureVector, label: str) -> float:
        """x' Sigma_label x for the diagonal covariance."""
        return sum(
            self.variance_of(label, f) * v * v for f, v in features.items()
        )


class AROW(_ConfidenceMixin):
    """Adaptive Regularization of Weight vectors, diagonal multiclass form.

    ``r`` is the regularization constant; smaller r = more aggressive.
    """

    def __init__(self, r: float = 1.0, initial_variance: float = 1.0) -> None:
        super().__init__(initial_variance=initial_variance)
        self.r = require_positive(r, "r")

    def _update(
        self,
        features: FeatureVector,
        label: str,
        wrong_label: str | None,
        margin: float,
    ) -> bool:
        loss = 1.0 - margin
        if loss <= 0:
            return False
        variance = self._confidence(features, label)
        if wrong_label is not None:
            variance += self._confidence(features, wrong_label)
        beta = 1.0 / (variance + self.r)
        alpha = loss * beta
        # Confidence-scaled weight update per coordinate.
        for feature, value in features.items():
            v_correct = self.variance_of(label, feature)
            self.weights[label][feature] = (
                self.weights[label][feature] + alpha * v_correct * value
            )
            self._set_variance(
                label,
                feature,
                v_correct - beta * v_correct * v_correct * value * value,
            )
            if wrong_label is not None:
                v_wrong = self.variance_of(wrong_label, feature)
                self.weights[wrong_label][feature] = (
                    self.weights[wrong_label][feature] - alpha * v_wrong * value
                )
                self._set_variance(
                    wrong_label,
                    feature,
                    v_wrong - beta * v_wrong * v_wrong * value * value,
                )
        return True


class ConfidenceWeighted(_ConfidenceMixin):
    """Diagonal CW with a fixed confidence parameter ``phi``.

    Uses the simplified closed-form step of single-constraint diagonal CW;
    unlike AROW it updates even on small positive margins until the desired
    confidence is reached, which makes it fast to adapt and sensitive to
    label noise (the classic CW/AROW trade-off).
    """

    def __init__(self, phi: float = 1.0, initial_variance: float = 1.0) -> None:
        super().__init__(initial_variance=initial_variance)
        self.phi = require_positive(phi, "phi")

    def _update(
        self,
        features: FeatureVector,
        label: str,
        wrong_label: str | None,
        margin: float,
    ) -> bool:
        variance = self._confidence(features, label)
        if wrong_label is not None:
            variance += self._confidence(features, wrong_label)
        if variance <= 0:
            return False
        # Single-constraint CW: require margin >= phi * variance.
        loss = self.phi * variance - margin
        if loss <= 0:
            return False
        alpha = loss / (variance + 1.0 / (2.0 * self.phi))
        for feature, value in features.items():
            v_correct = self.variance_of(label, feature)
            self.weights[label][feature] = (
                self.weights[label][feature] + alpha * v_correct * value
            )
            shrink = 1.0 / (1.0 + 2.0 * alpha * self.phi * value * value * v_correct)
            self._set_variance(label, feature, v_correct * shrink)
            if wrong_label is not None:
                v_wrong = self.variance_of(wrong_label, feature)
                self.weights[wrong_label][feature] = (
                    self.weights[wrong_label][feature] - alpha * v_wrong * value
                )
                shrink_w = 1.0 / (
                    1.0 + 2.0 * alpha * self.phi * value * value * v_wrong
                )
                self._set_variance(wrong_label, feature, v_wrong * shrink_w)
        return True


_ALGORITHMS: dict[str, type[LinearLearner]] = {
    "perceptron": Perceptron,
    "pa": PassiveAggressive,
    "pa1": PassiveAggressive,
    "pa2": PassiveAggressive,
    "cw": ConfidenceWeighted,
    "arow": AROW,
}


def make_learner(algorithm: str = "pa1", **params: Any) -> LinearLearner:
    """Build a learner by name (Jubatus config style).

    Names: ``perceptron``, ``pa``, ``pa1``, ``pa2``, ``cw``, ``arow``.
    The ``paN`` aliases preset the PA ``variant``.
    """
    key = algorithm.lower()
    cls = _ALGORITHMS.get(key)
    if cls is None:
        raise ModelError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_ALGORITHMS)}"
        )
    if key == "pa":
        params.setdefault("variant", 0)
    elif key == "pa1":
        params.setdefault("variant", 1)
    elif key == "pa2":
        params.setdefault("variant", 2)
    return cls(**params)
