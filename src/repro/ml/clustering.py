"""Sequential online k-means.

Jubatus's ``clustering`` service groups stream points without storing them;
the mobility-support example clusters PoI observations by crowd level. The
implementation is classic sequential k-means with per-centroid counts and
an optional exponential forgetting factor for non-stationary streams.
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import ModelError
from repro.ml.features import Datum
from repro.util.validate import require_in_range, require_positive

__all__ = ["OnlineKMeans"]


class OnlineKMeans:
    """Sequential k-means over the numeric part of datums.

    The first ``k`` distinct points seed the centroids. Each subsequent
    point moves its nearest centroid by ``1 / weight`` (or a fixed
    ``learning_rate`` when ``decay`` < 1, making the clusterer track drift).
    """

    def __init__(self, k: int = 3, decay: float = 1.0) -> None:
        self.k = require_positive(k, "k")
        self.decay = require_in_range(decay, 0.01, 1.0, "decay")
        self.centroids: list[dict[str, float]] = []
        self.weights: list[float] = []
        self.points_seen = 0

    def _distance2(self, a: dict[str, float], b: dict[str, float]) -> float:
        keys = sorted(set(a) | set(b))
        return sum((a.get(key, 0.0) - b.get(key, 0.0)) ** 2 for key in keys)

    def nearest(self, datum: Datum) -> tuple[int, float]:
        """Index of the nearest centroid and the Euclidean distance to it."""
        if not self.centroids:
            raise ModelError("no centroids yet — push() some points first")
        point = datum.num_values
        best_index = 0
        best_d2 = math.inf
        for i, centroid in enumerate(self.centroids):
            d2 = self._distance2(point, centroid)
            if d2 < best_d2:
                best_d2 = d2
                best_index = i
        return best_index, math.sqrt(best_d2)

    def push(self, datum: Datum) -> int:
        """Absorb one point; returns the index of the cluster it joined."""
        point = dict(datum.num_values)
        self.points_seen += 1
        if len(self.centroids) < self.k:
            # Seed from distinct points only, else update the match below.
            if all(self._distance2(point, c) > 1e-18 for c in self.centroids):
                self.centroids.append(point)
                self.weights.append(1.0)
                return len(self.centroids) - 1
        index, _distance = self.nearest(datum)
        if self.decay < 1.0:
            for i in range(len(self.weights)):
                self.weights[i] *= self.decay
        self.weights[index] += 1.0
        rate = 1.0 / self.weights[index]
        centroid = self.centroids[index]
        # Sorted so new keys enter the centroid dict in a stable order
        # regardless of hash salt — serialized state must not vary.
        for key in sorted(set(centroid) | set(point)):
            old = centroid.get(key, 0.0)
            centroid[key] = old + rate * (point.get(key, 0.0) - old)
        return index

    @property
    def cluster_count(self) -> int:
        return len(self.centroids)

    def to_state(self) -> dict[str, Any]:
        return {
            "k": self.k,
            "decay": self.decay,
            "centroids": [dict(c) for c in self.centroids],
            "weights": list(self.weights),
            "points_seen": self.points_seen,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        self.centroids = [dict(c) for c in state["centroids"]]
        self.weights = [float(w) for w in state["weights"]]
        self.points_seen = int(state.get("points_seen", 0))
