"""Jubatus-style data representation and feature extraction.

A :class:`Datum` carries raw observations as two key/value maps — string
values and numeric values — exactly like Jubatus's ``datum`` type, so the
middleware can move heterogeneous sensor readings through one container.
A :class:`FeatureExtractor` converts datums into sparse feature vectors:

* numeric values become features named ``num$<key>`` (optionally
  standardized online using running mean/std so no scaling pass over a
  stored dataset is ever needed);
* string values become one-hot features named ``str$<key>$<value>``;
* an optional bias feature anchors linear models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import FeatureError
from repro.util.stats import RunningStats

__all__ = ["Datum", "FeatureVector", "FeatureExtractor"]

#: Feature vectors are plain dicts: feature name -> value.
FeatureVector = dict[str, float]


@dataclass
class Datum:
    """One observation: named string and numeric values.

    >>> d = Datum.from_mapping({"room": "kitchen", "temp": 21.5})
    >>> sorted(d.string_values), sorted(d.num_values)
    (['room'], ['temp'])
    """

    string_values: dict[str, str] = field(default_factory=dict)
    num_values: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_mapping(cls, mapping: dict[str, Any]) -> "Datum":
        """Build a datum from a flat dict, sorting values by type.

        Booleans become the strings ``'true'``/``'false'`` (they are
        categorical, not numeric 0/1 — keeping them categorical lets
        one-hot weights differ per state).
        """
        datum = cls()
        for key, value in mapping.items():
            if isinstance(value, bool):
                datum.string_values[key] = "true" if value else "false"
            elif isinstance(value, (int, float)):
                datum.num_values[key] = float(value)
            elif isinstance(value, str):
                datum.string_values[key] = value
            else:
                raise FeatureError(
                    f"unsupported value type for key {key!r}: {type(value).__name__}"
                )
        return datum

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready representation for flow transport."""
        return {"s": dict(self.string_values), "n": dict(self.num_values)}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Datum":
        if not isinstance(payload, dict) or "s" not in payload or "n" not in payload:
            raise FeatureError(f"not a datum payload: {payload!r}")
        return cls(
            string_values={str(k): str(v) for k, v in payload["s"].items()},
            num_values={str(k): float(v) for k, v in payload["n"].items()},
        )

    def merged_with(self, other: "Datum") -> "Datum":
        """A new datum with ``other``'s values folded in (other wins ties)."""
        return Datum(
            string_values={**self.string_values, **other.string_values},
            num_values={**self.num_values, **other.num_values},
        )


class FeatureExtractor:
    """Converts datums to sparse feature vectors, optionally standardizing.

    With ``standardize=True`` the extractor keeps running mean/std per
    numeric key (updated on every call to :meth:`extract` with
    ``update=True``) and emits ``(x - mean) / std``. The first few samples
    pass through nearly raw while statistics stabilize — the usual price of
    fully online scaling.
    """

    BIAS_FEATURE = "bias"

    def __init__(self, standardize: bool = False, with_bias: bool = True) -> None:
        self.standardize = standardize
        self.with_bias = with_bias
        self._num_stats: dict[str, RunningStats] = {}

    def extract(self, datum: Datum, update: bool = True) -> FeatureVector:
        """Map ``datum`` to a feature vector.

        ``update=False`` extracts without folding the datum into the
        standardization statistics (used on the predict path so that
        inference does not drift the scaler).
        """
        features: FeatureVector = {}
        for key, value in datum.num_values.items():
            name = f"num${key}"
            if self.standardize:
                stats = self._num_stats.get(key)
                if stats is None:
                    stats = self._num_stats[key] = RunningStats()
                if update:
                    stats.add(value)
                if stats.count >= 2 and stats.stddev > 1e-12:
                    features[name] = (value - stats.mean) / stats.stddev
                else:
                    features[name] = value
            else:
                features[name] = value
        for key, value in datum.string_values.items():
            features[f"str${key}${value}"] = 1.0
        if self.with_bias:
            features[self.BIAS_FEATURE] = 1.0
        return features

    def reset(self) -> None:
        """Forget standardization statistics."""
        self._num_stats.clear()
